# Convenience targets; scripts/ci.sh is the canonical offline CI gate.

.PHONY: ci ci-quick test bench bench-check experiments fmt clippy lint

ci:
	scripts/ci.sh

ci-quick:
	scripts/ci.sh --quick

test:
	cargo test --workspace

bench:
	cargo bench -p sprite-bench

bench-check:
	scripts/bench_check.sh

experiments:
	cargo run -p sprite-bench --release --bin experiments

fmt:
	cargo fmt

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

lint:
	cargo run -q -p sprite_lint -- crates src tests examples
