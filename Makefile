# Convenience targets; scripts/ci.sh is the canonical offline CI gate.

.PHONY: ci ci-quick test bench experiments fmt clippy

ci:
	scripts/ci.sh

ci-quick:
	scripts/ci.sh --quick

test:
	cargo test --workspace

bench:
	cargo bench -p sprite-bench

experiments:
	cargo run -p sprite-bench --release --bin experiments

fmt:
	cargo fmt

clippy:
	cargo clippy --workspace --all-targets -- -D warnings
