//! Property-based tests over the core invariants.
//!
//! * The distributed file system, driven by arbitrary interleaved
//!   operations from several hosts, behaves exactly like one flat in-memory
//!   file system — the cache-consistency protocol may never lose or
//!   resurrect bytes.
//! * A process's memory and stream positions match a reference model after
//!   any sequence of writes and migrations.
//! * The central host-selection server never double-assigns and never hands
//!   out a console-active host.
//!
//! Cases are generated from [`DetRng`] with fixed seeds so every run (and
//! every failure) is reproducible; `heavy-tests` multiplies the case counts.

use sprite::fs::{FsConfig, OpenMode, SpriteFs, SpritePath, StreamId};
use sprite::hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId, Transport};
use sprite::sim::{DetRng, SimDuration, SimTime};
use sprite::vm::{SegmentKind, VirtAddr};

const HOSTS: usize = 4;
const PATHS: usize = 4;

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn path(i: usize) -> SpritePath {
    SpritePath::new(format!("/prop/file{i}"))
}

#[derive(Debug, Clone)]
enum FsOp {
    Open { host: u8, file: u8 },
    Write { stream: u8, byte: u8, len: u16 },
    Read { stream: u8, len: u16 },
    Seek { stream: u8, pos: u16 },
    Close { stream: u8 },
    MigrateStream { stream: u8, to: u8 },
}

fn fs_op(rng: &mut DetRng) -> FsOp {
    match rng.pick_index(6) {
        0 => FsOp::Open {
            host: 1 + rng.uniform_u64(HOSTS as u64 - 1) as u8,
            file: rng.uniform_u64(PATHS as u64) as u8,
        },
        1 => FsOp::Write {
            stream: rng.uniform_u64(256) as u8,
            byte: rng.uniform_u64(256) as u8,
            len: 1 + rng.uniform_u64(5999) as u16,
        },
        2 => FsOp::Read {
            stream: rng.uniform_u64(256) as u8,
            len: 1 + rng.uniform_u64(5999) as u16,
        },
        3 => FsOp::Seek {
            stream: rng.uniform_u64(256) as u8,
            pos: rng.uniform_u64(10000) as u16,
        },
        4 => FsOp::Close {
            stream: rng.uniform_u64(256) as u8,
        },
        _ => FsOp::MigrateStream {
            stream: rng.uniform_u64(256) as u8,
            to: 1 + rng.uniform_u64(HOSTS as u64 - 1) as u8,
        },
    }
}

/// Reference model: flat files and independent stream offsets.
#[derive(Debug, Default)]
struct Model {
    files: Vec<Vec<u8>>,
    // (file index, offset, host)
    streams: Vec<(usize, u64, u32)>,
}

/// The distributed FS with caching + consistency is observationally a
/// single flat file system under serialized multi-host access.
#[test]
fn fs_matches_flat_model() {
    let mut rng = DetRng::seed_from(0xF5);
    for case in 0..cases(64) {
        let nops = 1 + rng.pick_index(59);
        let ops: Vec<FsOp> = (0..nops).map(|_| fs_op(&mut rng)).collect();

        let mut net = Transport::new(CostModel::sun3(), HOSTS);
        let mut fs = SpriteFs::new(FsConfig::default(), HOSTS);
        fs.add_server(h(0), SpritePath::new("/"));
        let mut t = SimTime::ZERO;
        for i in 0..PATHS {
            let (_, t2) = fs.create(&mut net, t, h(1), path(i)).unwrap();
            t = t2;
        }
        let mut model = Model {
            files: vec![Vec::new(); PATHS],
            streams: Vec::new(),
        };
        // live streams: (StreamId, model index)
        let mut live: Vec<(StreamId, usize)> = Vec::new();

        for op in ops.clone() {
            match op {
                FsOp::Open { host, file } => {
                    let (sid, t2) = fs
                        .open(
                            &mut net,
                            t,
                            h(host as u32),
                            path(file as usize),
                            OpenMode::ReadWrite,
                        )
                        .unwrap();
                    t = t2;
                    model.streams.push((file as usize, 0, host as u32));
                    live.push((sid, model.streams.len() - 1));
                }
                FsOp::Write { stream, byte, len } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (sid, mi) = live[stream as usize % live.len()];
                    let (file, offset, host) = model.streams[mi];
                    let data = vec![byte; len as usize];
                    t = fs.write(&mut net, t, h(host), sid, &data).unwrap();
                    let f = &mut model.files[file];
                    let end = offset as usize + data.len();
                    if f.len() < end {
                        f.resize(end, 0);
                    }
                    f[offset as usize..end].copy_from_slice(&data);
                    model.streams[mi].1 = end as u64;
                }
                FsOp::Read { stream, len } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (sid, mi) = live[stream as usize % live.len()];
                    let (file, offset, host) = model.streams[mi];
                    let (got, t2) = fs.read(&mut net, t, h(host), sid, len as u64).unwrap();
                    t = t2;
                    let f = &model.files[file];
                    let start = (offset as usize).min(f.len());
                    let end = (offset as usize + len as usize).min(f.len());
                    assert_eq!(&got, &f[start..end], "case {case}: stale or lost bytes");
                    model.streams[mi].1 = offset + got.len() as u64;
                }
                FsOp::Seek { stream, pos } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (sid, mi) = live[stream as usize % live.len()];
                    fs.seek(sid, pos as u64).unwrap();
                    model.streams[mi].1 = pos as u64;
                }
                FsOp::Close { stream } => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = stream as usize % live.len();
                    let (sid, mi) = live.remove(idx);
                    let host = model.streams[mi].2;
                    t = fs.close(&mut net, t, h(host), sid).unwrap();
                }
                FsOp::MigrateStream { stream, to } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (sid, mi) = live[stream as usize % live.len()];
                    let from = model.streams[mi].2;
                    if from == to as u32 {
                        continue;
                    }
                    let (_, t2) = fs
                        .migrate_stream(&mut net, t, sid, h(from), h(to as u32), 1)
                        .unwrap();
                    t = t2;
                    model.streams[mi].2 = to as u32;
                }
            }
        }
        // Drain: close everything, then verify full contents byte-exactly
        // from a fresh reader on each host.
        while let Some((sid, mi)) = live.pop() {
            let host = model.streams[mi].2;
            t = fs.close(&mut net, t, h(host), sid).unwrap();
        }
        for (i, expect) in model.files.iter().enumerate() {
            for reader in 1..HOSTS as u32 {
                let (sid, t2) = fs
                    .open(&mut net, t, h(reader), path(i), OpenMode::Read)
                    .unwrap();
                let (data, t3) = fs
                    .read(&mut net, t2, h(reader), sid, expect.len() as u64 + 64)
                    .unwrap();
                t = fs.close(&mut net, t3, h(reader), sid).unwrap();
                assert_eq!(
                    &data, expect,
                    "case {case}: file {i} wrong when read from host {reader}"
                );
            }
        }
    }
}

#[derive(Debug, Clone)]
enum ProcOp {
    WriteMem { page: u8, byte: u8 },
    Migrate { to: u8 },
    WriteFile { byte: u8, len: u16 },
}

fn proc_op(rng: &mut DetRng) -> ProcOp {
    match rng.pick_index(3) {
        0 => ProcOp::WriteMem {
            page: rng.uniform_u64(16) as u8,
            byte: rng.uniform_u64(256) as u8,
        },
        1 => ProcOp::Migrate {
            to: 1 + rng.uniform_u64(HOSTS as u64 - 1) as u8,
        },
        _ => ProcOp::WriteFile {
            byte: rng.uniform_u64(256) as u8,
            len: 1 + rng.uniform_u64(2999) as u16,
        },
    }
}

/// A process's memory image and file stream survive any interleaving of
/// writes and migrations, and the kernel's location bookkeeping stays
/// coherent.
#[test]
fn process_state_survives_arbitrary_migrations() {
    let mut rng = DetRng::seed_from(0x9C0C);
    for case in 0..cases(48) {
        let nops = 1 + rng.pick_index(39);
        let ops: Vec<ProcOp> = (0..nops).map(|_| proc_op(&mut rng)).collect();

        let mut cluster = Cluster::new(CostModel::sun3(), HOSTS);
        cluster.add_file_server(h(0), SpritePath::new("/"));
        let mut t = cluster
            .install_program(SimTime::ZERO, SpritePath::new("/bin/p"), 16 * 1024)
            .unwrap();
        let (pid, t1) = cluster
            .spawn(t, h(1), &SpritePath::new("/bin/p"), 16, 4)
            .unwrap();
        t = t1;
        cluster
            .fs
            .create(&mut cluster.net, t, h(1), SpritePath::new("/prop/out"))
            .unwrap();
        let (fd, t2) = cluster
            .open_fd(t, pid, SpritePath::new("/prop/out"), OpenMode::ReadWrite)
            .unwrap();
        t = t2;
        let mut migrator = Migrator::new(MigrationConfig::default(), HOSTS);

        let mut mem_model = vec![0u8; 16 * 4096];
        let mut mem_written = vec![false; 16 * 4096];
        let mut file_model: Vec<u8> = Vec::new();

        for op in ops {
            let here = cluster.pcb(pid).unwrap().current;
            match op {
                ProcOp::WriteMem { page, byte } => {
                    let offset = page as u64 * 4096 + (byte as u64 % 4000);
                    let data = [byte; 16];
                    let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
                    t = space
                        .write(
                            &mut cluster.fs,
                            &mut cluster.net,
                            t,
                            here,
                            VirtAddr::new(SegmentKind::Heap, offset),
                            &data,
                        )
                        .unwrap();
                    cluster.pcb_mut(pid).unwrap().space = Some(space);
                    for k in 0..16usize {
                        mem_model[offset as usize + k] = byte;
                        mem_written[offset as usize + k] = true;
                    }
                }
                ProcOp::Migrate { to } => {
                    if h(to as u32) == here {
                        continue;
                    }
                    let r = migrator
                        .migrate(&mut cluster, t, pid, h(to as u32))
                        .unwrap();
                    t = r.resumed_at;
                    // Kernel bookkeeping is coherent after every move.
                    let pcb = cluster.pcb(pid).unwrap();
                    assert_eq!(pcb.current, h(to as u32));
                    assert!(cluster.host(h(to as u32)).resident().contains(&pid));
                    assert!(!cluster.host(here).resident().contains(&pid));
                    assert_eq!(cluster.locate(pid), Some(h(to as u32)));
                }
                ProcOp::WriteFile { byte, len } => {
                    let data = vec![byte; len as usize];
                    t = cluster.write_fd(t, pid, fd, &data).unwrap();
                    file_model.extend_from_slice(&data);
                }
            }
        }
        // Memory model check, from wherever the process ended up.
        let here = cluster.pcb(pid).unwrap().current;
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let (mem, t2) = space
            .read(
                &mut cluster.fs,
                &mut cluster.net,
                t,
                here,
                VirtAddr::new(SegmentKind::Heap, 0),
                16 * 4096,
            )
            .unwrap();
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        t = t2;
        for (i, (&expect, &written)) in mem_model.iter().zip(&mem_written).enumerate() {
            if written {
                assert_eq!(mem[i], expect, "case {case}: heap byte {i} corrupted");
            }
        }
        // File model check.
        let stream = cluster.pcb(pid).unwrap().fd(fd).unwrap();
        assert_eq!(
            cluster.fs.streams().get(stream).unwrap().offset(),
            file_model.len() as u64
        );
        cluster.fs.seek(stream, 0).unwrap();
        let (data, _) = cluster
            .read_fd(t, pid, fd, file_model.len() as u64 + 16)
            .unwrap();
        assert_eq!(data, file_model, "case {case}");
    }
}

/// The central server never double-assigns a host, never assigns a
/// console-active host, and release makes hosts grantable again.
#[test]
fn central_server_assignment_invariants() {
    let mut rng = DetRng::seed_from(0xCE27);
    for case in 0..cases(64) {
        let hosts = 8;
        let console: Vec<bool> = (0..hosts).map(|_| rng.chance(0.5)).collect();
        let nreq = 1 + rng.pick_index(39);
        let requests: Vec<(u8, bool)> = (0..nreq)
            .map(|_| (rng.uniform_u64(8) as u8, rng.chance(0.5)))
            .collect();

        let mut net = Transport::new(CostModel::sun3(), hosts);
        let mut sel = CentralServer::new(h(0), AvailabilityPolicy::default());
        let truth: Vec<HostInfo> = (0..hosts as u32)
            .map(|i| HostInfo {
                host: h(i),
                load: 0.0,
                idle: if console[i as usize] {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_secs(600)
                },
                console_active: console[i as usize],
            })
            .collect();
        let mut t = SimTime::ZERO;
        for info in &truth {
            t = sel.report(&mut net, t, *info);
        }
        let mut granted: Vec<(HostId, HostId)> = Vec::new(); // (host, requester)
        for (req, give_back) in requests {
            let requester = h(req as u32);
            let (pick, t2) = sel.select(&mut net, t, requester, &truth);
            t = t2;
            if let Some(host) = pick {
                assert!(
                    !console[host.index()],
                    "case {case}: granted a console-active host"
                );
                assert_ne!(host, requester, "case {case}: granted the requester itself");
                assert!(
                    !granted.iter().any(|(g, _)| *g == host),
                    "case {case}: double-assigned {host}"
                );
                granted.push((host, requester));
            }
            if give_back {
                if let Some((host, owner)) = granted.pop() {
                    t = sel.release(&mut net, t, owner, host);
                }
            }
        }
        // Everything released becomes grantable again.
        while let Some((host, owner)) = granted.pop() {
            t = sel.release(&mut net, t, owner, host);
        }
        let idle_count = console.iter().filter(|c| !**c).count();
        if idle_count > 1 {
            // Request from an active host (so it is not excluded as self).
            let requester = (0..8u32)
                .find(|i| console[*i as usize])
                .map(h)
                .unwrap_or(h(0));
            let (pick, _) = sel.select(&mut net, t, requester, &truth);
            assert!(
                pick.is_some(),
                "case {case}: released hosts must be selectable"
            );
        }
    }
}
