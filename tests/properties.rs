//! Property-based tests over the core invariants.
//!
//! * The distributed file system, driven by arbitrary interleaved
//!   operations from several hosts, behaves exactly like one flat in-memory
//!   file system — the cache-consistency protocol may never lose or
//!   resurrect bytes.
//! * A process's memory and stream positions match a reference model after
//!   any sequence of writes and migrations.
//! * The central host-selection server never double-assigns and never hands
//!   out a console-active host.

use proptest::prelude::*;

use sprite::fs::{FsConfig, OpenMode, SpriteFs, SpritePath, StreamId};
use sprite::hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId, Network};
use sprite::sim::{SimDuration, SimTime};
use sprite::vm::{SegmentKind, VirtAddr};

const HOSTS: usize = 4;
const PATHS: usize = 4;

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn path(i: usize) -> SpritePath {
    SpritePath::new(format!("/prop/file{i}"))
}

#[derive(Debug, Clone)]
enum FsOp {
    Open { host: u8, file: u8 },
    Write { stream: u8, byte: u8, len: u16 },
    Read { stream: u8, len: u16 },
    Seek { stream: u8, pos: u16 },
    Close { stream: u8 },
    MigrateStream { stream: u8, to: u8 },
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (1u8..HOSTS as u8, 0u8..PATHS as u8).prop_map(|(host, file)| FsOp::Open { host, file }),
        (any::<u8>(), any::<u8>(), 1u16..6000).prop_map(|(stream, byte, len)| FsOp::Write {
            stream,
            byte,
            len
        }),
        (any::<u8>(), 1u16..6000).prop_map(|(stream, len)| FsOp::Read { stream, len }),
        (any::<u8>(), 0u16..10000).prop_map(|(stream, pos)| FsOp::Seek { stream, pos }),
        any::<u8>().prop_map(|stream| FsOp::Close { stream }),
        (any::<u8>(), 1u8..HOSTS as u8)
            .prop_map(|(stream, to)| FsOp::MigrateStream { stream, to }),
    ]
}

/// Reference model: flat files and independent stream offsets.
#[derive(Debug, Default)]
struct Model {
    files: Vec<Vec<u8>>,
    // (file index, offset, host)
    streams: Vec<(usize, u64, u32)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The distributed FS with caching + consistency is observationally a
    /// single flat file system under serialized multi-host access.
    #[test]
    fn fs_matches_flat_model(ops in prop::collection::vec(fs_op(), 1..60)) {
        let mut net = Network::new(CostModel::sun3(), HOSTS);
        let mut fs = SpriteFs::new(FsConfig::default(), HOSTS);
        fs.add_server(h(0), SpritePath::new("/"));
        let mut t = SimTime::ZERO;
        for i in 0..PATHS {
            let (_, t2) = fs.create(&mut net, t, h(1), path(i)).unwrap();
            t = t2;
        }
        let mut model = Model {
            files: vec![Vec::new(); PATHS],
            streams: Vec::new(),
        };
        // live streams: (StreamId, model index)
        let mut live: Vec<(StreamId, usize)> = Vec::new();

        for op in ops {
            match op {
                FsOp::Open { host, file } => {
                    let (sid, t2) = fs
                        .open(&mut net, t, h(host as u32), path(file as usize), OpenMode::ReadWrite)
                        .unwrap();
                    t = t2;
                    model.streams.push((file as usize, 0, host as u32));
                    live.push((sid, model.streams.len() - 1));
                }
                FsOp::Write { stream, byte, len } => {
                    if live.is_empty() { continue; }
                    let (sid, mi) = live[stream as usize % live.len()];
                    let (file, offset, host) = model.streams[mi];
                    let data = vec![byte; len as usize];
                    t = fs.write(&mut net, t, h(host), sid, &data).unwrap();
                    let f = &mut model.files[file];
                    let end = offset as usize + data.len();
                    if f.len() < end { f.resize(end, 0); }
                    f[offset as usize..end].copy_from_slice(&data);
                    model.streams[mi].1 = end as u64;
                }
                FsOp::Read { stream, len } => {
                    if live.is_empty() { continue; }
                    let (sid, mi) = live[stream as usize % live.len()];
                    let (file, offset, host) = model.streams[mi];
                    let (got, t2) = fs.read(&mut net, t, h(host), sid, len as u64).unwrap();
                    t = t2;
                    let f = &model.files[file];
                    let start = (offset as usize).min(f.len());
                    let end = (offset as usize + len as usize).min(f.len());
                    prop_assert_eq!(&got, &f[start..end], "stale or lost bytes");
                    model.streams[mi].1 = offset + got.len() as u64;
                }
                FsOp::Seek { stream, pos } => {
                    if live.is_empty() { continue; }
                    let (sid, mi) = live[stream as usize % live.len()];
                    fs.seek(sid, pos as u64).unwrap();
                    model.streams[mi].1 = pos as u64;
                }
                FsOp::Close { stream } => {
                    if live.is_empty() { continue; }
                    let idx = stream as usize % live.len();
                    let (sid, mi) = live.remove(idx);
                    let host = model.streams[mi].2;
                    t = fs.close(&mut net, t, h(host), sid).unwrap();
                }
                FsOp::MigrateStream { stream, to } => {
                    if live.is_empty() { continue; }
                    let (sid, mi) = live[stream as usize % live.len()];
                    let from = model.streams[mi].2;
                    if from == to as u32 { continue; }
                    let (_, t2) = fs
                        .migrate_stream(&mut net, t, sid, h(from), h(to as u32), 1)
                        .unwrap();
                    t = t2;
                    model.streams[mi].2 = to as u32;
                }
            }
        }
        // Drain: close everything, then verify full contents byte-exactly
        // from a fresh reader on each host.
        while let Some((sid, mi)) = live.pop() {
            let host = model.streams[mi].2;
            t = fs.close(&mut net, t, h(host), sid).unwrap();
        }
        for (i, expect) in model.files.iter().enumerate() {
            for reader in 1..HOSTS as u32 {
                let (sid, t2) = fs
                    .open(&mut net, t, h(reader), path(i), OpenMode::Read)
                    .unwrap();
                let (data, t3) = fs.read(&mut net, t2, h(reader), sid, expect.len() as u64 + 64).unwrap();
                t = fs.close(&mut net, t3, h(reader), sid).unwrap();
                prop_assert_eq!(&data, expect, "file {} wrong when read from host {}", i, reader);
            }
        }
    }
}

#[derive(Debug, Clone)]
enum ProcOp {
    WriteMem { page: u8, byte: u8 },
    Migrate { to: u8 },
    WriteFile { byte: u8, len: u16 },
}

fn proc_op() -> impl Strategy<Value = ProcOp> {
    prop_oneof![
        (0u8..16, any::<u8>()).prop_map(|(page, byte)| ProcOp::WriteMem { page, byte }),
        (1u8..HOSTS as u8).prop_map(|to| ProcOp::Migrate { to }),
        (any::<u8>(), 1u16..3000).prop_map(|(byte, len)| ProcOp::WriteFile { byte, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A process's memory image and file stream survive any interleaving of
    /// writes and migrations, and the kernel's location bookkeeping stays
    /// coherent.
    #[test]
    fn process_state_survives_arbitrary_migrations(ops in prop::collection::vec(proc_op(), 1..40)) {
        let mut cluster = Cluster::new(CostModel::sun3(), HOSTS);
        cluster.add_file_server(h(0), SpritePath::new("/"));
        let mut t = cluster
            .install_program(SimTime::ZERO, SpritePath::new("/bin/p"), 16 * 1024)
            .unwrap();
        let (pid, t1) = cluster.spawn(t, h(1), &SpritePath::new("/bin/p"), 16, 4).unwrap();
        t = t1;
        cluster.fs.create(&mut cluster.net, t, h(1), SpritePath::new("/prop/out")).unwrap();
        let (fd, t2) = cluster
            .open_fd(t, pid, SpritePath::new("/prop/out"), OpenMode::ReadWrite)
            .unwrap();
        t = t2;
        let mut migrator = Migrator::new(MigrationConfig::default(), HOSTS);

        let mut mem_model = vec![0u8; 16 * 4096];
        let mut mem_written = vec![false; 16 * 4096];
        let mut file_model: Vec<u8> = Vec::new();

        for op in ops {
            let here = cluster.pcb(pid).unwrap().current;
            match op {
                ProcOp::WriteMem { page, byte } => {
                    let offset = page as u64 * 4096 + (byte as u64 % 4000);
                    let data = [byte; 16];
                    let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
                    t = space
                        .write(&mut cluster.fs, &mut cluster.net, t, here,
                               VirtAddr::new(SegmentKind::Heap, offset), &data)
                        .unwrap();
                    cluster.pcb_mut(pid).unwrap().space = Some(space);
                    for k in 0..16usize {
                        mem_model[offset as usize + k] = byte;
                        mem_written[offset as usize + k] = true;
                    }
                }
                ProcOp::Migrate { to } => {
                    if h(to as u32) == here { continue; }
                    let r = migrator.migrate(&mut cluster, t, pid, h(to as u32)).unwrap();
                    t = r.resumed_at;
                    // Kernel bookkeeping is coherent after every move.
                    let pcb = cluster.pcb(pid).unwrap();
                    prop_assert_eq!(pcb.current, h(to as u32));
                    prop_assert!(cluster.host(h(to as u32)).resident().contains(&pid));
                    prop_assert!(!cluster.host(here).resident().contains(&pid));
                    prop_assert_eq!(cluster.locate(pid), Some(h(to as u32)));
                }
                ProcOp::WriteFile { byte, len } => {
                    let data = vec![byte; len as usize];
                    t = cluster.write_fd(t, pid, fd, &data).unwrap();
                    file_model.extend_from_slice(&data);
                }
            }
        }
        // Memory model check, from wherever the process ended up.
        let here = cluster.pcb(pid).unwrap().current;
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let (mem, t2) = space
            .read(&mut cluster.fs, &mut cluster.net, t, here,
                  VirtAddr::new(SegmentKind::Heap, 0), 16 * 4096)
            .unwrap();
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        t = t2;
        for (i, (&expect, &written)) in mem_model.iter().zip(&mem_written).enumerate() {
            if written {
                prop_assert_eq!(mem[i], expect, "heap byte {} corrupted", i);
            }
        }
        // File model check.
        let stream = cluster.pcb(pid).unwrap().fd(fd).unwrap();
        prop_assert_eq!(cluster.fs.streams().get(stream).unwrap().offset(),
                        file_model.len() as u64);
        cluster.fs.seek(stream, 0).unwrap();
        let (data, _) = cluster.read_fd(t, pid, fd, file_model.len() as u64 + 16).unwrap();
        prop_assert_eq!(data, file_model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central server never double-assigns a host, never assigns a
    /// console-active host, and release makes hosts grantable again.
    #[test]
    fn central_server_assignment_invariants(
        console in prop::collection::vec(any::<bool>(), 8),
        requests in prop::collection::vec((0u8..8, any::<bool>()), 1..40),
    ) {
        let hosts = 8;
        let mut net = Network::new(CostModel::sun3(), hosts);
        let mut sel = CentralServer::new(h(0), AvailabilityPolicy::default());
        let truth: Vec<HostInfo> = (0..hosts as u32)
            .map(|i| HostInfo {
                host: h(i),
                load: 0.0,
                idle: if console[i as usize] { SimDuration::ZERO } else { SimDuration::from_secs(600) },
                console_active: console[i as usize],
            })
            .collect();
        let mut t = SimTime::ZERO;
        for info in &truth {
            t = sel.report(&mut net, t, *info);
        }
        let mut granted: Vec<(HostId, HostId)> = Vec::new(); // (host, requester)
        for (req, give_back) in requests {
            let requester = h(req as u32);
            let (pick, t2) = sel.select(&mut net, t, requester, &truth);
            t = t2;
            if let Some(host) = pick {
                prop_assert!(!console[host.index()], "granted a console-active host");
                prop_assert_ne!(host, requester, "granted the requester itself");
                prop_assert!(
                    !granted.iter().any(|(g, _)| *g == host),
                    "double-assigned {}", host
                );
                granted.push((host, requester));
            }
            if give_back {
                if let Some((host, owner)) = granted.pop() {
                    t = sel.release(&mut net, t, owner, host);
                }
            }
        }
        // Everything released becomes grantable again.
        while let Some((host, owner)) = granted.pop() {
            t = sel.release(&mut net, t, owner, host);
        }
        let idle_count = console.iter().filter(|c| !**c).count();
        if idle_count > 1 {
            // Request from an active host (so it is not excluded as self).
            let requester = (0..8u32).find(|i| console[*i as usize]).map(h).unwrap_or(h(0));
            let (pick, _) = sel.select(&mut net, t, requester, &truth);
            prop_assert!(pick.is_some(), "released hosts must be selectable");
        }
    }
}
