//! The replay auditor's foundation: cluster state digests.
//!
//! Two runs of the same seeded scenario must produce identical digest
//! streams — that equivalence is what `experiments --audit` checks across
//! `--jobs` values. These tests pin the seam itself: digests are
//! reproducible, sensitive to every layer of state they cover (kernel,
//! network, file system), and sampled deterministically by the engine's
//! checkpoint hook.

use sprite::fs::{OpenMode, SpritePath};
use sprite::kernel::Cluster;
use sprite::net::{CostModel, HostId, RpcOp};
use sprite::sim::{Engine, SimDuration, SimTime, StateDigest};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

/// A small deterministic scenario: spawn, fork, open, migrate, signal.
fn drive(steps: usize) -> Cluster {
    let mut c = Cluster::new(CostModel::sun3(), 4);
    c.add_file_server(h(0), SpritePath::new("/"));
    let t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/sh"), 16 * 1024)
        .unwrap();
    let (leader, t) = c.spawn(t, h(1), &SpritePath::new("/bin/sh"), 8, 2).unwrap();
    let (child, t) = c.fork(t, leader).unwrap();
    let mut t = t;
    if steps > 1 {
        c.fs.create(&mut c.net, t, h(1), SpritePath::new("/data"))
            .unwrap();
        let (_, t2) = c
            .open_fd(t, child, SpritePath::new("/data"), OpenMode::ReadWrite)
            .unwrap();
        t = t2;
    }
    if steps > 2 {
        c.freeze(child).unwrap();
        c.relocate(child, h(2)).unwrap();
        c.thaw(child).unwrap();
        let _ = t;
    }
    c
}

#[test]
fn identical_scenarios_digest_identically() {
    assert_eq!(drive(3).digest(), drive(3).digest());
}

#[test]
fn digest_sees_every_layer() {
    // Each additional step touches a different subsystem (FS streams, then
    // migration + transport); the digest must move each time.
    let d1 = drive(1).digest();
    let d2 = drive(2).digest();
    let d3 = drive(3).digest();
    assert_ne!(d1, d2, "an opened stream must change the digest");
    assert_ne!(d2, d3, "a migration must change the digest");
    assert_ne!(d1, d3);
}

#[test]
fn digest_sees_kernel_counters_and_pcb_fields() {
    let mut a = drive(2);
    let b = drive(2);
    assert_eq!(a.digest(), b.digest());
    // Mutate one PCB field through the public seam; the digest must move.
    let pid = a.processes().next().unwrap().pid;
    a.pcb_mut(pid).unwrap().cpu_used += SimDuration::from_millis(1);
    assert_ne!(a.digest(), b.digest(), "cpu accounting must be covered");
}

#[test]
fn engine_checkpoints_cluster_digests_deterministically() {
    let run = || {
        let mut cluster = drive(2);
        let mut engine: Engine<Cluster> = Engine::new();
        // A tick that exercises kernel + FS + net state every 10 minutes.
        engine.audit_every(2, Cluster::digest);
        engine.schedule_periodic(
            SimDuration::from_secs(600),
            SimDuration::from_secs(600),
            |c: &mut Cluster, eng| {
                let now = eng.now();
                let pid = c.processes().next().unwrap().pid;
                c.pcb_mut(pid).unwrap().cpu_used += SimDuration::from_millis(7);
                let _ = c.net.send(RpcOp::SignalForward, now, h(1), h(0), None);
                eng.events_executed() < 12
            },
        );
        engine.run(&mut cluster);
        engine.take_audit_stream()
    };
    let (s1, s2) = (run(), run());
    assert!(!s1.is_empty(), "the periodic tick must hit checkpoints");
    assert_eq!(s1, s2, "identical runs must produce identical streams");
    // Checkpoints land on exact event-count multiples, in order.
    for (i, cp) in s1.iter().enumerate() {
        assert_eq!(cp.events, 2 * (i as u64 + 1));
    }
}

#[test]
fn state_digest_is_stable_across_subsystem_composition() {
    // Folding the same cluster into two accumulators that already diverge
    // keeps them diverged: digest_into composes, it doesn't reset.
    let c = drive(2);
    let mut a = StateDigest::new();
    let mut b = StateDigest::new();
    b.write_u8(1);
    c.digest_into(&mut a);
    c.digest_into(&mut b);
    assert_ne!(a.finish(), b.finish());
}
