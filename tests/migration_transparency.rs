//! End-to-end transparency: a process is migrated around the whole cluster
//! while it computes, does file I/O, forks and receives signals — and
//! nothing observable changes except its location.

use sprite::fs::{OpenMode, SpritePath};
use sprite::kernel::{Cluster, KernelCall, ProcState, Signal};
use sprite::migration::{MigrationConfig, MigrationError, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::sim::{SimDuration, SimTime};
use sprite::vm::{SegmentKind, VirtAddr, VmStrategy};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn world(hosts: usize) -> (Cluster, Migrator, SimTime) {
    let mut c = Cluster::new(CostModel::sun3(), hosts);
    c.add_file_server(h(0), SpritePath::new("/"));
    let t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/app"), 24 * 1024)
        .unwrap();
    let m = Migrator::new(MigrationConfig::default(), hosts);
    (c, m, t)
}

#[test]
fn tour_of_the_cluster_preserves_everything() {
    let (mut c, mut m, t) = world(6);
    let (pid, t) = c
        .spawn(t, h(1), &SpritePath::new("/bin/app"), 64, 16)
        .unwrap();
    c.fs.create(&mut c.net, t, h(1), SpritePath::new("/users/tour/out"))
        .unwrap();
    let (fd, mut t) = c
        .open_fd(
            t,
            pid,
            SpritePath::new("/users/tour/out"),
            OpenMode::ReadWrite,
        )
        .unwrap();

    // Visit every other host, writing a chapter of memory and file at each.
    let stops = [h(2), h(3), h(4), h(5), h(1)];
    let mut expected_file = Vec::new();
    for (i, stop) in stops.iter().enumerate() {
        let here = c.pcb(pid).unwrap().current;
        let mem_chunk = vec![i as u8 + 1; 4096];
        let mut space = c.pcb_mut(pid).unwrap().space.take().unwrap();
        t = space
            .write(
                &mut c.fs,
                &mut c.net,
                t,
                here,
                VirtAddr::new(SegmentKind::Heap, (i * 4096) as u64),
                &mem_chunk,
            )
            .unwrap();
        c.pcb_mut(pid).unwrap().space = Some(space);
        let line = format!("chapter {i} written on {here}\n");
        t = c.write_fd(t, pid, fd, line.as_bytes()).unwrap();
        expected_file.extend_from_slice(line.as_bytes());

        let report = m.migrate(&mut c, t, pid, *stop).unwrap();
        t = report.resumed_at;
        assert_eq!(c.pcb(pid).unwrap().current, *stop);
        assert_eq!(c.pcb(pid).unwrap().state, ProcState::Active);
    }
    assert_eq!(c.pcb(pid).unwrap().migrations, 5);
    assert!(!c.pcb(pid).unwrap().is_foreign(), "ended back home");

    // Memory: every chapter readable, byte-exact, from the final host.
    let mut space = c.pcb_mut(pid).unwrap().space.take().unwrap();
    for i in 0..stops.len() {
        let (data, t2) = space
            .read(
                &mut c.fs,
                &mut c.net,
                t,
                h(1),
                VirtAddr::new(SegmentKind::Heap, (i * 4096) as u64),
                4096,
            )
            .unwrap();
        t = t2;
        assert_eq!(data, vec![i as u8 + 1; 4096], "chapter {i} corrupted");
    }
    c.pcb_mut(pid).unwrap().space = Some(space);

    // File: one coherent log, in order.
    let stream = c.pcb(pid).unwrap().fd(fd).unwrap();
    c.fs.seek(stream, 0).unwrap();
    let (log, t) = c.read_fd(t, pid, fd, 4096).unwrap();
    assert_eq!(log, expected_file);

    c.exit(t, pid, 0).unwrap();
}

#[test]
fn every_vm_strategy_survives_a_double_migration() {
    for strategy in VmStrategy::ALL {
        let (mut c, mut m, t) = world(4);
        m.set_vm_strategy(strategy);
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/app"), 64, 8)
            .unwrap();
        let pattern: Vec<u8> = (0..32_768u32).map(|i| (i % 250) as u8).collect();
        let mut space = c.pcb_mut(pid).unwrap().space.take().unwrap();
        let t = space
            .write(
                &mut c.fs,
                &mut c.net,
                t,
                h(1),
                VirtAddr::new(SegmentKind::Heap, 100),
                &pattern,
            )
            .unwrap();
        c.pcb_mut(pid).unwrap().space = Some(space);
        let r1 = m.migrate(&mut c, t, pid, h(2)).unwrap();
        let r2 = m.migrate(&mut c, r1.resumed_at, pid, h(3)).unwrap();
        let mut space = c.pcb_mut(pid).unwrap().space.take().unwrap();
        let (back, _) = space
            .read(
                &mut c.fs,
                &mut c.net,
                r2.resumed_at,
                h(3),
                VirtAddr::new(SegmentKind::Heap, 100),
                pattern.len() as u64,
            )
            .unwrap();
        c.pcb_mut(pid).unwrap().space = Some(space);
        assert_eq!(back, pattern, "{strategy}: double migration lost bytes");
    }
}

#[test]
fn forked_family_spans_hosts_and_signals_still_route() {
    let (mut c, mut m, t) = world(5);
    let (parent, t) = c
        .spawn(t, h(1), &SpritePath::new("/bin/app"), 16, 4)
        .unwrap();
    let (child_a, t) = c.fork(t, parent).unwrap();
    let (child_b, t) = c.fork(t, parent).unwrap();
    // Scatter the family.
    let r1 = m.migrate(&mut c, t, child_a, h(2)).unwrap();
    let r2 = m.migrate(&mut c, r1.resumed_at, child_b, h(3)).unwrap();
    let t = r2.resumed_at;
    // Signals from an unrelated host find everyone.
    let t = c.kill(t, h(4), parent, Signal::Usr1).unwrap();
    let t = c.kill(t, h(4), child_a, Signal::Usr1).unwrap();
    let t = c.kill(t, h(4), child_b, Signal::Usr1).unwrap();
    for pid in [parent, child_a, child_b] {
        assert_eq!(
            c.take_signals(pid).collect::<Vec<_>>(),
            vec![Signal::Usr1],
            "{pid} missed its signal"
        );
    }
    // The far-flung children exit; the parent reaps them from home.
    let t = c.exit(t, child_a, 7).unwrap();
    let t = c.exit(t, child_b, 9).unwrap();
    let (first, t) = c.wait(t, parent).unwrap();
    let (second, _t) = c.wait(t, parent).unwrap();
    let mut reaped: Vec<_> = [first.unwrap(), second.unwrap()].into();
    reaped.sort();
    assert_eq!(reaped, vec![(child_a, 7), (child_b, 9)]);
}

#[test]
fn migration_failures_leave_the_process_unharmed() {
    let (mut c, mut m, t) = world(4);
    let (pid, t) = c
        .spawn(t, h(1), &SpritePath::new("/bin/app"), 16, 4)
        .unwrap();
    // Version mismatch.
    m.set_kernel_version(h(2), 9);
    assert!(matches!(
        m.migrate(&mut c, t, pid, h(2)),
        Err(MigrationError::VersionMismatch { .. })
    ));
    // Console refusal.
    c.host_mut(h(3)).console_active = true;
    assert!(matches!(
        m.migrate(&mut c, t, pid, h(3)),
        Err(MigrationError::TargetRefused(_))
    ));
    // Still perfectly usable.
    assert_eq!(c.pcb(pid).unwrap().state, ProcState::Active);
    let done = c.kernel_call(t, pid, KernelCall::GetPid).unwrap();
    assert!(done > t);
    assert_eq!(m.totals().failures, 2);
    assert_eq!(m.totals().migrations, 0);
}

#[test]
fn shadow_streams_keep_shared_offsets_exact_across_three_hosts() {
    let (mut c, mut m, t) = world(5);
    let (parent, t) = c
        .spawn(t, h(1), &SpritePath::new("/bin/app"), 16, 4)
        .unwrap();
    c.fs.create(&mut c.net, t, h(1), SpritePath::new("/shared/log"))
        .unwrap();
    let (fd, t) = c
        .open_fd(
            t,
            parent,
            SpritePath::new("/shared/log"),
            OpenMode::ReadWrite,
        )
        .unwrap();
    let (kid1, t) = c.fork(t, parent).unwrap();
    let (kid2, t) = c.fork(t, parent).unwrap();
    let r1 = m.migrate(&mut c, t, kid1, h(2)).unwrap();
    let r2 = m.migrate(&mut c, r1.resumed_at, kid2, h(3)).unwrap();
    let mut t = r2.resumed_at;
    // All three write through one shared access position, round-robin.
    for round in 0..3 {
        for pid in [parent, kid1, kid2] {
            let msg = format!("[{round}:{pid}]");
            t = c.write_fd(t, pid, fd, msg.as_bytes()).unwrap();
        }
    }
    let stream = c.pcb(parent).unwrap().fd(fd).unwrap();
    assert!(c.fs.streams().get(stream).unwrap().is_shadowed());
    c.fs.seek(stream, 0).unwrap();
    let (data, _) = c.read_fd(t, parent, fd, 4096).unwrap();
    let text = String::from_utf8(data).unwrap();
    // No interleaving corruption: the writes appear back to back.
    assert_eq!(text.matches('[').count(), 9);
    assert_eq!(text.matches(']').count(), 9);
    assert!(text.starts_with(&format!("[0:{parent}]")));
    assert!(text.contains(&format!("[2:{kid2}]")));
}

#[test]
fn eviction_under_load_is_clean_and_bounded() {
    let (mut c, mut m, mut t) = world(8);
    // Six different users' processes, all guests on host 1.
    let mut pids = Vec::new();
    for i in 2..8u32 {
        let (pid, t1) = c
            .spawn(t, h(i), &SpritePath::new("/bin/app"), 64, 8)
            .unwrap();
        let r = m.migrate(&mut c, t1, pid, h(1)).unwrap();
        // Some have dirty state, some do not.
        t = if i % 2 == 0 {
            let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
            let t2 = sp
                .write(
                    &mut c.fs,
                    &mut c.net,
                    r.resumed_at,
                    h(1),
                    VirtAddr::new(SegmentKind::Heap, 0),
                    &vec![9u8; 128 * 1024],
                )
                .unwrap();
            c.pcb_mut(pid).unwrap().space = Some(sp);
            t2
        } else {
            r.resumed_at
        };
        pids.push(pid);
    }
    assert_eq!(c.foreign_on(h(1)).count(), 6);
    c.host_mut(h(1)).console_active = true;
    let reports = m.evict_all(&mut c, t, h(1)).unwrap();
    assert_eq!(reports.len(), 6);
    let reclaim = reports.last().unwrap().resumed_at.elapsed_since(t);
    assert!(
        reclaim < SimDuration::from_secs(10),
        "reclaim took {reclaim}, too long for six small processes"
    );
    for pid in pids {
        assert_eq!(c.pcb(pid).unwrap().current, pid.home());
        assert_eq!(c.pcb(pid).unwrap().state, ProcState::Active);
    }
}
