//! End-to-end pmake on the cluster: correctness of the build products,
//! behaviour across host-selection architectures, and interaction with
//! eviction mid-build.

use sprite::fs::SpritePath;
use sprite::hostsel::{
    AvailabilityPolicy, CentralServer, HostInfo, HostSelector, MulticastQuery, Probabilistic,
    SharedFileBoard,
};
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::pmake::{prepare_sources, run_build, Action, DepGraph, PmakeConfig};
use sprite::sim::{DetRng, SimDuration, SimTime};
use sprite::workloads::CompileWorkload;

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn world(hosts: usize) -> (Cluster, Migrator) {
    let mut c = Cluster::new(CostModel::sun3(), hosts);
    c.add_file_server(h(0), SpritePath::new("/"));
    (c, Migrator::new(MigrationConfig::default(), hosts))
}

fn feed_idle(selector: &mut dyn HostSelector, cluster: &mut Cluster, hosts: usize) {
    for _ in 0..6 {
        for i in 0..hosts as u32 {
            let info = if i < 2 {
                HostInfo {
                    host: h(i),
                    load: 2.0,
                    idle: SimDuration::ZERO,
                    console_active: true,
                }
            } else {
                HostInfo::idle_host(h(i), SimDuration::from_secs(1800))
            };
            selector.report(&mut cluster.net, SimTime::ZERO, info);
        }
    }
}

#[test]
fn build_products_are_complete_under_every_selection_architecture() {
    let hosts = 8;
    let policy = AvailabilityPolicy::default();
    let selectors: Vec<Box<dyn HostSelector>> = vec![
        Box::new(CentralServer::new(h(0), policy)),
        Box::new(SharedFileBoard::new(h(0), policy)),
        Box::new(Probabilistic::new(hosts, 4, policy, 11)),
        Box::new(MulticastQuery::new(policy)),
    ];
    for mut selector in selectors {
        let (mut cluster, mut migrator) = world(hosts);
        feed_idle(selector.as_mut(), &mut cluster, hosts);
        let graph = DepGraph::from_workload(
            &CompileWorkload {
                files: 10,
                ..CompileWorkload::default()
            },
            &mut DetRng::seed_from(21),
        );
        let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
        let report = run_build(
            &mut cluster,
            &mut migrator,
            selector.as_mut(),
            h(1),
            &graph,
            &PmakeConfig::default(),
            t,
        )
        .unwrap();
        assert_eq!(report.targets_built, 11, "{}", selector.name());
        let server = cluster.fs.server(h(0)).unwrap();
        for i in 0..graph.len() {
            if let Action::Compile(job) = &graph.target(i).action {
                assert!(
                    server.lookup(&SpritePath::new(job.obj.as_str())).is_some(),
                    "{}: {} was not produced",
                    selector.name(),
                    job.obj
                );
            }
        }
        assert_eq!(cluster.processes().count(), 0, "{}", selector.name());
    }
}

#[test]
fn bigger_clusters_build_faster_until_the_link_dominates() {
    let mut prev = SimDuration::from_secs(1_000_000);
    let mut makespans = Vec::new();
    for hosts in [3usize, 6, 12] {
        let (mut cluster, mut migrator) = world(hosts);
        let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
        feed_idle(&mut selector, &mut cluster, hosts);
        let graph = DepGraph::from_workload(
            &CompileWorkload {
                files: 16,
                ..CompileWorkload::default()
            },
            &mut DetRng::seed_from(33),
        );
        let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
        let report = run_build(
            &mut cluster,
            &mut migrator,
            &mut selector,
            h(1),
            &graph,
            &PmakeConfig::default(),
            t,
        )
        .unwrap();
        assert!(report.makespan < prev, "{hosts} hosts regressed");
        prev = report.makespan;
        makespans.push(report.makespan);
    }
    // The link step (6s by default) lower-bounds everything.
    assert!(*makespans.last().unwrap() > SimDuration::from_secs(6));
}

#[test]
fn eviction_mid_build_does_not_break_the_build() {
    // Build on a cluster, then mid-way the "owner" of one target host
    // returns; the build must still complete and the host must end clean.
    let hosts = 6;
    let (mut cluster, mut migrator) = world(hosts);
    let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
    feed_idle(&mut selector, &mut cluster, hosts);
    let graph = DepGraph::from_workload(
        &CompileWorkload {
            files: 8,
            ..CompileWorkload::default()
        },
        &mut DetRng::seed_from(44),
    );
    let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &graph,
        &PmakeConfig::default(),
        t,
    )
    .unwrap();
    // After the build finished, simulate a late return + eviction sweep on
    // every host: nothing should be left to evict, proving the build
    // released everything.
    for i in 0..hosts as u32 {
        let evicted = migrator
            .evict_all(&mut cluster, report.finished_at, h(i))
            .unwrap();
        assert!(evicted.is_empty(), "host {i} still had foreign processes");
    }
}

#[test]
fn diamond_dependencies_schedule_correctly() {
    // lib.o and app.o depend on gen.h (generated); prog links both.
    let (mut cluster, mut migrator) = world(6);
    let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
    feed_idle(&mut selector, &mut cluster, 6);
    let mut g = DepGraph::new();
    let job = |src: &str, obj: &str| {
        Action::Compile(sprite::workloads::CompileJob {
            src: src.to_owned(),
            headers: vec![],
            obj: obj.to_owned(),
            src_bytes: 8192,
            obj_bytes: 4096,
            cpu: SimDuration::from_secs(3),
        })
    };
    let gen = g.add_target("/src/gen.h", job("/src/gen.y", "/src/gen.h"), &[]);
    let lib = g.add_target("/src/lib.o", job("/src/lib.c", "/src/lib.o"), &[gen]);
    let app = g.add_target("/src/app.o", job("/src/app.c", "/src/app.o"), &[gen]);
    g.add_target(
        "/src/prog",
        Action::Link {
            cpu: SimDuration::from_secs(2),
            inputs: vec!["/src/lib.o".into(), "/src/app.o".into()],
            output: "/src/prog".into(),
        },
        &[lib, app],
    );
    let t = prepare_sources(&mut cluster, &g, h(1), SimTime::ZERO).unwrap();
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &g,
        &PmakeConfig::default(),
        t,
    )
    .unwrap();
    assert_eq!(report.targets_built, 4);
    let server = cluster.fs.server(h(0)).unwrap();
    assert!(server.lookup(&SpritePath::new("/src/prog")).is_some());
    // The build takes at least gen + max(lib,app) + link of CPU.
    assert!(report.makespan > SimDuration::from_secs(3 + 3 + 2));
}

#[test]
fn incremental_rebuild_touches_only_the_stale_chain() {
    let hosts = 6;
    let (mut cluster, mut migrator) = world(hosts);
    let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
    feed_idle(&mut selector, &mut cluster, hosts);
    let graph = DepGraph::from_workload(
        &CompileWorkload {
            files: 8,
            ..CompileWorkload::default()
        },
        &mut DetRng::seed_from(55),
    );
    let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
    let full = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &graph,
        &PmakeConfig::default(),
        t,
    )
    .unwrap();
    // Record build times; then "touch" one object's source by marking that
    // compile target stale (no recorded build time).
    let mut built: sprite::sim::DetHashMap<usize, sprite::sim::SimTime> =
        (0..graph.len()).map(|i| (i, full.finished_at)).collect();
    let touched = graph.index_of("/src/module3.o").unwrap();
    built.remove(&touched);
    let sub = graph.stale_subgraph(&built);
    assert_eq!(sub.len(), 2, "one compile + the link");
    let incremental = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &sub,
        &PmakeConfig::default(),
        full.finished_at,
    )
    .unwrap();
    assert_eq!(incremental.targets_built, 2);
    // The incremental build is bounded by the compile+link critical path
    // (~16s) rather than the whole 8-file build.
    assert!(
        incremental.makespan.as_secs_f64() < full.makespan.as_secs_f64() * 0.7,
        "incremental {} should be well below full {}",
        incremental.makespan,
        full.makespan
    );
}
