//! Sharded file service properties: determinism across thread schedules
//! and replica consistency.
//!
//! The striped server group and its read replicas must not cost the
//! simulation its core guarantee — a run is a pure function of its seed.
//! These tests drive a randomized multi-host read/write workload against
//! every shard count, collecting a whole-cluster digest after each
//! operation, and demand the streams be byte-identical whether the units
//! run serially or across a worker pool. Alongside, every read checks the
//! bytes actually returned: after a remote write bumps a file's version,
//! no host — including one served by a stale peer replica — may observe
//! the old contents.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sprite::fs::{OpenMode, SpritePath};
use sprite::kernel::Cluster;
use sprite::net::{CostModel, HostId};
use sprite::sim::{DetRng, SimTime};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

const SEEDS: u64 = 10;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Client hosts beyond the server group.
const CLIENTS: u32 = 5;
const FILES: usize = 6;
const OPS: usize = 120;

/// A striped-root cluster: servers on hosts `0..shards`, clients after.
fn sharded_world(shards: usize, clients: u32) -> Cluster {
    let hosts = shards + clients as usize;
    let mut c = Cluster::new(CostModel::sun3(), hosts);
    let servers: Vec<HostId> = (0..shards as u32).map(h).collect();
    c.add_sharded_file_service(&servers, SpritePath::new("/"));
    c
}

fn file_path(i: usize) -> SpritePath {
    SpritePath::new(format!("/src/f{i}.dat"))
}

/// Deterministic payload for file `i`'s `n`-th version; length varies by
/// file so reads cross block boundaries on some files and not others.
fn payload(i: usize, n: u64) -> Vec<u8> {
    let len = 512 + 1024 * (i % 3) + 64 * i;
    (0..len)
        .map(|k| (i as u64 * 131 + n * 17 + k as u64) as u8)
        .collect()
}

/// Drives one randomized unit: create the files, then a stream of
/// read/write sessions from rotating client hosts. Returns the digest
/// after every operation. Panics if any read observes stale bytes.
fn drive(seed: u64, shards: usize) -> Vec<u64> {
    let mut c = sharded_world(shards, CLIENTS);
    let mut rng = DetRng::seed_from(seed);
    let home = h(shards as u32);
    let mut t = SimTime::ZERO;
    let mut versions = [0u64; FILES];
    let mut stream = Vec::with_capacity(OPS + FILES);
    for i in 0..FILES {
        c.fs.create(&mut c.net, t, home, file_path(i)).unwrap();
        let (sid, t1) =
            c.fs.open(&mut c.net, t, home, file_path(i), OpenMode::Write)
                .unwrap();
        let t1 =
            c.fs.write(&mut c.net, t1, home, sid, &payload(i, 0))
                .unwrap();
        t = c.fs.close(&mut c.net, t1, home, sid).unwrap();
        stream.push(c.digest());
    }
    for _ in 0..OPS {
        let i = rng.pick_index(FILES);
        let host = h(shards as u32 + rng.uniform_u64(CLIENTS as u64) as u32);
        if rng.chance(0.25) {
            // A write session: bump the file to its next version.
            versions[i] += 1;
            let body = payload(i, versions[i]);
            let (sid, t1) =
                c.fs.open(&mut c.net, t, host, file_path(i), OpenMode::Write)
                    .unwrap();
            let t1 = c.fs.write(&mut c.net, t1, host, sid, &body).unwrap();
            t = c.fs.close(&mut c.net, t1, host, sid).unwrap();
        } else {
            // A read session: whatever host serves it — home shard or a
            // peer replica — the bytes must match the latest version.
            let want = payload(i, versions[i]);
            let (sid, t1) =
                c.fs.open(&mut c.net, t, host, file_path(i), OpenMode::Read)
                    .unwrap();
            let (got, t1) =
                c.fs.read(&mut c.net, t1, host, sid, want.len() as u64)
                    .unwrap();
            assert_eq!(
                got.len(),
                want.len(),
                "seed {seed} shards {shards}: short read of {}",
                file_path(i)
            );
            assert_eq!(
                got,
                want,
                "seed {seed} shards {shards}: stale read of {} at version {}",
                file_path(i),
                versions[i]
            );
            t = c.fs.close(&mut c.net, t1, host, sid).unwrap();
        }
        stream.push(c.digest());
    }
    stream
}

/// Runs every (seed, shards) unit across `jobs` workers (atomic cursor,
/// results in unit order — the same shape as the suite's `--jobs` runner).
fn collect(jobs: usize) -> Vec<Vec<u64>> {
    let units: Vec<(u64, usize)> = (0..SEEDS)
        .flat_map(|s| SHARD_COUNTS.iter().map(move |&k| (s, k)))
        .collect();
    if jobs <= 1 {
        return units.iter().map(|&(s, k)| drive(s, k)).collect();
    }
    let results: Vec<Mutex<Option<Vec<u64>>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let (s, k) = units[i];
                *results[i].lock().unwrap() = Some(drive(s, k));
            });
        }
    });
    results
        .into_iter()
        .map(|cell| cell.into_inner().unwrap().expect("every unit ran"))
        .collect()
}

#[test]
fn digest_streams_are_identical_serial_and_threaded() {
    let serial = collect(1);
    let threaded = collect(4);
    assert_eq!(serial.len(), (SEEDS as usize) * SHARD_COUNTS.len());
    for (i, (s, t)) in serial.iter().zip(&threaded).enumerate() {
        assert_eq!(s, t, "unit {i} diverged between jobs=1 and jobs=4");
    }
}

#[test]
fn reruns_of_the_same_unit_are_byte_identical() {
    for &shards in &SHARD_COUNTS {
        assert_eq!(
            drive(3, shards),
            drive(3, shards),
            "shards {shards}: rerun diverged"
        );
    }
}

#[test]
fn replica_reads_after_remote_write_are_never_stale() {
    // A crafted hot file: five reader hosts in rotation accumulate enough
    // host switches (each first read is a real block fetch) to earn peer
    // replicas, then three *fresh* hosts fetch — at least one lands on a
    // peer in the serve rotation — then a remote write drops the set, and
    // a final read from every host must see the new bytes.
    let shards = 2;
    let warmers = 5u32;
    let fresh = 3u32;
    let clients = warmers + fresh;
    let mut c = sharded_world(shards, clients);
    let home = h(shards as u32);
    let path = SpritePath::new("/src/hot.h");
    let mut t = SimTime::ZERO;
    c.fs.create(&mut c.net, t, home, path.clone()).unwrap();
    let v1 = payload(0, 1);
    let (sid, t1) =
        c.fs.open(&mut c.net, t, home, path.clone(), OpenMode::Write)
            .unwrap();
    let t1 = c.fs.write(&mut c.net, t1, home, sid, &v1).unwrap();
    t = c.fs.close(&mut c.net, t1, home, sid).unwrap();
    // Rotate warm-up readers: each first read fetches, and the rotation's
    // host switches push the file past the heat threshold.
    for i in 0..warmers {
        let host = h(shards as u32 + i);
        let (sid, t1) =
            c.fs.open(&mut c.net, t, host, path.clone(), OpenMode::Read)
                .unwrap();
        let (got, t1) =
            c.fs.read(&mut c.net, t1, host, sid, v1.len() as u64)
                .unwrap();
        assert_eq!(got, v1, "warm-up host {i}: wrong v1 bytes");
        t = c.fs.close(&mut c.net, t1, host, sid).unwrap();
    }
    // Fresh hosts fetch for the first time with the replica set live.
    for i in warmers..clients {
        let host = h(shards as u32 + i);
        let (sid, t1) =
            c.fs.open(&mut c.net, t, host, path.clone(), OpenMode::Read)
                .unwrap();
        let (got, t1) =
            c.fs.read(&mut c.net, t1, host, sid, v1.len() as u64)
                .unwrap();
        assert_eq!(got, v1, "fresh host {i}: wrong v1 bytes");
        t = c.fs.close(&mut c.net, t1, host, sid).unwrap();
    }
    assert!(
        c.fs.stats().replica_hits > 0,
        "a fresh host's fetch must have been served by a peer replica"
    );
    // A write from a fresh client bumps the version and must invalidate
    // every peer replica.
    let writer = h(shards as u32 + clients - 1);
    let v2 = payload(0, 2);
    let (sid, t1) =
        c.fs.open(&mut c.net, t, writer, path.clone(), OpenMode::Write)
            .unwrap();
    let t1 = c.fs.write(&mut c.net, t1, writer, sid, &v2).unwrap();
    t = c.fs.close(&mut c.net, t1, writer, sid).unwrap();
    for i in 0..clients {
        let host = h(shards as u32 + i);
        let (sid, t1) =
            c.fs.open(&mut c.net, t, host, path.clone(), OpenMode::Read)
                .unwrap();
        let (got, t1) =
            c.fs.read(&mut c.net, t1, host, sid, v2.len() as u64)
                .unwrap();
        assert_eq!(got, v2, "host {i} read stale bytes after the remote write");
        t = c.fs.close(&mut c.net, t1, host, sid).unwrap();
    }
}
