//! IPC transparency: Sprite processes communicate through pseudo-devices
//! [WO88] — file-like channels to user-level servers, which is also how
//! Internet sockets reach the IP server [Che87]. "The migration of a
//! process is transparent to the processes with which it communicates,
//! because only the operating system stores the location of the processes
//! that use the pseudo-device" (Ch. 3.2). These tests migrate one end of
//! such a channel and check that nothing but latency changes.

use sprite::fs::{OpenMode, SpritePath};
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::sim::{SimDuration, SimTime};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

#[test]
fn pseudo_device_channel_survives_client_migration() {
    let mut c = Cluster::new(CostModel::sun3(), 4);
    c.add_file_server(h(0), SpritePath::new("/"));
    let t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/app"), 16 * 1024)
        .unwrap();
    // An IP-server-style daemon lives on host 3; its service rendezvous is
    // the pseudo-device /dev/ipServer.
    c.fs.create_pseudo_device(&mut c.net, t, h(3), SpritePath::new("/dev/ipServer"), h(3))
        .unwrap();

    // A client process on host 1 opens the channel.
    let (pid, t) = c
        .spawn(t, h(1), &SpritePath::new("/bin/app"), 16, 4)
        .unwrap();
    let (fd, t) = c
        .open_fd(
            t,
            pid,
            SpritePath::new("/dev/ipServer"),
            OpenMode::ReadWrite,
        )
        .unwrap();
    let stream = c.pcb(pid).unwrap().fd(fd).unwrap();

    // Round trip before migration.
    let before =
        c.fs.pseudo_request(
            &mut c.net,
            t,
            h(1),
            stream,
            256,
            256,
            SimDuration::from_micros(300),
        )
        .unwrap();
    let cost_before = before.elapsed_since(t);

    // The client migrates; the daemon neither knows nor cares.
    let mut m = Migrator::new(MigrationConfig::default(), 4);
    let r = m.migrate(&mut c, before, pid, h(2)).unwrap();
    assert_eq!(r.streams_moved, 1);

    // Same descriptor, same protocol, new location.
    let stream2 = c.pcb(pid).unwrap().fd(fd).unwrap();
    assert_eq!(stream, stream2, "the descriptor did not change identity");
    let after =
        c.fs.pseudo_request(
            &mut c.net,
            r.resumed_at,
            h(2),
            stream2,
            256,
            256,
            SimDuration::from_micros(300),
        )
        .unwrap();
    let cost_after = after.elapsed_since(r.resumed_at);
    // Still an RPC-scale cost — communication works, latency comparable.
    let ratio = cost_after.as_secs_f64() / cost_before.as_secs_f64();
    assert!((0.5..2.0).contains(&ratio), "latency ratio {ratio}");
}

#[test]
fn migrating_onto_the_servers_host_makes_ipc_local() {
    let mut c = Cluster::new(CostModel::sun3(), 4);
    c.add_file_server(h(0), SpritePath::new("/"));
    let t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/app"), 16 * 1024)
        .unwrap();
    c.fs.create_pseudo_device(&mut c.net, t, h(3), SpritePath::new("/dev/chan"), h(3))
        .unwrap();
    let (pid, t) = c
        .spawn(t, h(1), &SpritePath::new("/bin/app"), 16, 4)
        .unwrap();
    let (fd, t) = c
        .open_fd(t, pid, SpritePath::new("/dev/chan"), OpenMode::ReadWrite)
        .unwrap();
    let stream = c.pcb(pid).unwrap().fd(fd).unwrap();
    let remote =
        c.fs.pseudo_request(&mut c.net, t, h(1), stream, 64, 64, SimDuration::ZERO)
            .unwrap()
            .elapsed_since(t);
    // Migrate the client onto the server's own host: IPC becomes two
    // context switches instead of a network round trip.
    let mut m = Migrator::new(MigrationConfig::default(), 4);
    let r = m.migrate(&mut c, t, pid, h(3)).unwrap();
    let local =
        c.fs.pseudo_request(
            &mut c.net,
            r.resumed_at,
            h(3),
            stream,
            64,
            64,
            SimDuration::ZERO,
        )
        .unwrap()
        .elapsed_since(r.resumed_at);
    assert!(
        local < remote / 2,
        "co-located IPC {local} should beat cross-network {remote}"
    );
}
