//! Deterministic chaos suite for the fault-injection layer.
//!
//! Fifty [`FaultPlan`] seeds, three drop rates. Under every schedule, a
//! migration either completes at the target or aborts with the process
//! rolled back runnable at the source — and in both cases the process is
//! resident on **exactly one** host, its PCB is neither lost nor
//! duplicated, and the generational process table never resolves a stale
//! handle (the ABA guarantee the slab arena exists for). Because the fault
//! schedule is a pure function of its seed, replaying a case must
//! reproduce the same outcomes and the same per-op [`FaultStats`], which
//! is what makes any chaos failure here debuggable.
//!
//! [`FaultPlan`]: sprite::net::FaultPlan
//! [`FaultStats`]: sprite::net::FaultStats

use sprite::fs::SpritePath;
use sprite::kernel::{Cluster, ProcState, ProcessId};
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, FaultPlan, FaultStats, HostId};
use sprite::sim::SimTime;

const HOSTS: usize = 5;
const SEEDS: u64 = 50;
const RATES: &[f64] = &[0.0, 0.01, 0.10];
const PROCS: usize = 3;
const ROUNDS: usize = 3;

fn h(i: u32) -> HostId {
    HostId::new(i)
}

/// Everything a chaos case observes, for replay comparison.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// Per attempt: did the migration complete (vs abort/refuse)?
    migrated: Vec<bool>,
    /// Per-op fault events the transport recorded.
    faults: FaultStats,
    /// `(pid, host)` of every live process at the end, in PID order.
    survivors: Vec<(String, HostId)>,
}

/// Asserts the single-residency invariant for `pid`: the PCB exists, is
/// runnable, and the residency lists place it on exactly one host — its
/// `current`, which `locate` agrees with.
fn assert_on_exactly_one_host(c: &Cluster, pid: ProcessId) {
    let p = c.pcb(pid).unwrap_or_else(|| panic!("{pid} lost its PCB"));
    assert_eq!(p.state, ProcState::Active, "{pid} left frozen or dead");
    let residencies = (0..HOSTS as u32)
        .filter(|&i| c.host(h(i)).resident().contains(&pid))
        .count();
    assert_eq!(residencies, 1, "{pid} resident on {residencies} hosts");
    assert!(
        c.host(p.current).resident().contains(&pid),
        "{pid} not resident where its PCB says"
    );
    assert_eq!(c.locate(pid), Some(p.current));
}

/// One chaos case: build the cluster fault-free, install the seeded fault
/// schedule, then drive `PROCS` processes through `ROUNDS` of migrations,
/// checking the invariants after every attempt.
fn drive(seed: u64, rate: f64) -> Outcome {
    let mut c = Cluster::new(CostModel::sun3(), HOSTS);
    c.add_file_server(h(0), SpritePath::new("/"));
    let mut t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/sh"), 16 * 1024)
        .expect("install runs before faults start");
    let mut pids = Vec::with_capacity(PROCS);
    for _ in 0..PROCS {
        let (pid, t2) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sh"), 16, 4)
            .expect("spawns run before faults start");
        pids.push(pid);
        t = t2;
    }
    c.net.set_policy(Box::new(FaultPlan::new(seed, rate)));

    let mut migrator = Migrator::new(MigrationConfig::default(), HOSTS);
    let mut migrated = Vec::with_capacity(PROCS * ROUNDS);
    for round in 0..ROUNDS {
        for (i, &pid) in pids.iter().enumerate() {
            let target = h(2 + ((round + i) % (HOSTS - 2)) as u32);
            if c.pcb(pid).expect("pid is live").current == target {
                continue;
            }
            match migrator.migrate(&mut c, t, pid, target) {
                Ok(report) => {
                    migrated.push(true);
                    t = report.resumed_at;
                    assert_eq!(
                        c.pcb(pid).expect("pid is live").current,
                        target,
                        "completed migration must land at the target"
                    );
                }
                Err(e) => {
                    migrated.push(false);
                    if let Some(rpc) = e.rpc_failure() {
                        t = rpc.at();
                    }
                }
            }
            // Complete or abort, the process runs on exactly one host.
            assert_on_exactly_one_host(&c, pid);
        }
        // No PCB was lost or duplicated along the way.
        assert_eq!(c.processes().count(), PROCS, "PCB count drifted");
    }

    let totals = migrator.totals();
    assert_eq!(
        totals.migrations + totals.failures,
        migrated.len() as u64,
        "every attempt is either a migration or a failure"
    );
    assert!(
        totals.aborts <= totals.failures,
        "aborts are a subset of failures"
    );

    // Generation invariants (the PR 2 ABA harness, under fire): exit one
    // process, then its handle must never resolve again — not even after
    // the slot is recycled by a fresh spawn.
    let dead = pids[0];
    c.exit(t, dead, 0).expect("exit is fail-stop local");
    assert_eq!(c.locate(dead), None, "dead handle resolved");
    if let Ok((recycled, _)) = c.spawn(t, h(1), &SpritePath::new("/bin/sh"), 16, 4) {
        assert_ne!(recycled, dead);
        assert_eq!(c.locate(dead), None, "stale handle ABA-aliased a new PCB");
    }

    let survivors = c
        .processes()
        .filter(|p| p.state != ProcState::Zombie)
        .map(|p| (p.pid.to_string(), p.current))
        .collect();
    Outcome {
        migrated,
        faults: c.net.fault_stats().clone(),
        survivors,
    }
}

#[test]
fn chaos_migrations_complete_or_roll_back_on_exactly_one_host() {
    for seed in 0..SEEDS {
        for &rate in RATES {
            // Every invariant is asserted inside the drive.
            let outcome = drive(seed, rate);
            if rate == 0.0 {
                assert!(
                    outcome.migrated.iter().all(|&ok| ok),
                    "seed {seed}: migrations must all complete at rate 0"
                );
                assert!(
                    outcome.faults.is_empty(),
                    "seed {seed}: rate 0 must inject nothing"
                );
            }
        }
    }
}

#[test]
fn replaying_a_fault_seed_reproduces_outcomes_and_fault_stats() {
    for seed in 0..SEEDS {
        for &rate in RATES {
            let first = drive(seed, rate);
            let second = drive(seed, rate);
            assert_eq!(
                first, second,
                "seed {seed} rate {rate}: chaos must replay byte-for-byte"
            );
        }
    }
}

#[test]
fn nonzero_rates_actually_inject_faults_somewhere() {
    // Across fifty seeds at 10% drop, at least one case must see the fault
    // machinery fire — otherwise the suite is vacuously green.
    let saw_faults = (0..SEEDS).any(|seed| !drive(seed, 0.10).faults.is_empty());
    assert!(saw_faults, "no seed injected a single fault at 10% drop");
}
