//! # Sprite process migration — a full reproduction in Rust
//!
//! This crate re-exports every subsystem of the reproduction of Douglis &
//! Ousterhout's Sprite process-migration work (ICDCS '87 / Douglis's 1990
//! thesis): a deterministic discrete-event Sprite cluster with a shared
//! file system, virtual memory that pages through backing files,
//! home-transparent kernels, the migration mechanism itself, host
//! selection, and the pmake workload engine.
//!
//! ## Quick start
//!
//! ```
//! use sprite::fs::SpritePath;
//! use sprite::kernel::Cluster;
//! use sprite::migration::{MigrationConfig, Migrator};
//! use sprite::net::{CostModel, HostId};
//! use sprite::sim::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three workstations; host 0 doubles as the file server.
//! let mut cluster = Cluster::new(CostModel::sun3(), 3);
//! cluster.add_file_server(HostId::new(0), SpritePath::new("/"));
//! let t = cluster.install_program(SimTime::ZERO, SpritePath::new("/bin/work"), 32 * 1024)?;
//!
//! // A process starts on its owner's workstation...
//! let (pid, t) = cluster.spawn(t, HostId::new(1), &SpritePath::new("/bin/work"), 64, 16)?;
//!
//! // ...and transparently moves to an idle machine.
//! let mut migrator = Migrator::new(MigrationConfig::default(), cluster.host_count());
//! let report = migrator.migrate(&mut cluster, t, pid, HostId::new(2))?;
//! assert_eq!(cluster.pcb(pid).unwrap().current, HostId::new(2));
//! println!("migrated in {} (froze {})", report.total_time, report.freeze_time);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `sprite-sim` | simulated clock, event engine, RNG, statistics |
//! | [`net`] | `sprite-net` | shared Ethernet, RPC transport, cost model |
//! | [`fs`] | `sprite-fs` | distributed FS: servers, caches, streams, pseudo-devices |
//! | [`vm`] | `sprite-vm` | address spaces, demand paging, VM transfer strategies |
//! | [`kernel`] | `sprite-kernel` | processes, kernel calls, the cluster |
//! | [`migration`] | `sprite-core` | the migration mechanism (the paper's contribution) |
//! | [`hostsel`] | `sprite-hostsel` | load metrics and the four selection architectures |
//! | [`pmake`] | `sprite-pmake` | dependency graphs and the parallel build engine |
//! | [`workloads`] | `sprite-workloads` | activity traces, lifetimes, job mixes |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Simulation substrate (re-export of `sprite-sim`).
pub mod sim {
    pub use sprite_sim::*;
}

/// Network and cost model (re-export of `sprite-net`).
pub mod net {
    pub use sprite_net::*;
}

/// Distributed file system (re-export of `sprite-fs`).
pub mod fs {
    pub use sprite_fs::*;
}

/// Virtual memory (re-export of `sprite-vm`).
pub mod vm {
    pub use sprite_vm::*;
}

/// Kernel and cluster (re-export of `sprite-kernel`).
pub mod kernel {
    pub use sprite_kernel::*;
}

/// Process migration (re-export of `sprite-core`).
pub mod migration {
    pub use sprite_core::*;
}

/// Host selection (re-export of `sprite-hostsel`).
pub mod hostsel {
    pub use sprite_hostsel::*;
}

/// Parallel make (re-export of `sprite-pmake`).
pub mod pmake {
    pub use sprite_pmake::*;
}

/// Workload generation (re-export of `sprite-workloads`).
pub mod workloads {
    pub use sprite_workloads::*;
}
