//! A compressed "day in the life" of the cluster, narrated by the kernel's
//! trace: users come and go, jobs exec-migrate to idle machines, owners
//! return and evict. The month-long statistics version is experiment E11
//! (`cargo run -p sprite-bench --release --bin experiments -- e11`).
//!
//! ```text
//! cargo run --release --example month_in_the_life
//! ```

use sprite::fs::SpritePath;
use sprite::hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::sim::{DetRng, SimDuration, SimTime};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hosts = 6;
    let mut cluster = Cluster::new(CostModel::sun3(), hosts);
    cluster.add_file_server(h(0), SpritePath::new("/"));
    cluster.enable_trace(64);
    let t = cluster.install_program(SimTime::ZERO, SpritePath::new("/bin/sim"), 32 * 1024)?;
    let mut migrator = Migrator::new(MigrationConfig::default(), hosts);
    let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
    let mut rng = DetRng::seed_from(2026);

    // Morning: hosts 4 and 5 are idle, their owners away.
    let world = |active: &[u32]| -> Vec<HostInfo> {
        (0..hosts as u32)
            .map(|i| HostInfo {
                host: h(i),
                load: 0.0,
                idle: if active.contains(&i) {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_secs(1200)
                },
                console_active: active.contains(&i),
            })
            .collect()
    };
    let morning = world(&[0, 1, 2, 3]);
    for info in &morning {
        cluster.host_mut(info.host).console_active = info.console_active;
        selector.report(&mut cluster.net, t, *info);
    }

    // Users on hosts 1-3 submit simulation jobs; the central server places
    // them on the idle machines.
    let mut t = t;
    let mut jobs = Vec::new();
    for owner in 1..4u32 {
        for _ in 0..2 {
            let (pid, t1) = cluster.spawn(t, h(owner), &SpritePath::new("/bin/sim"), 32, 8)?;
            let (choice, t2) = selector.select(&mut cluster.net, t1, h(owner), &morning);
            t = match choice {
                Some(target) => {
                    let r = migrator.exec_migrate(
                        &mut cluster,
                        t2,
                        pid,
                        target,
                        &SpritePath::new("/bin/sim"),
                        32,
                        8,
                    )?;
                    r.resumed_at
                }
                None => t2,
            };
            let cpu = rng.jittered(SimDuration::from_secs(120), SimDuration::from_secs(30));
            let done = cluster.run_cpu(t, pid, cpu)?;
            jobs.push((pid, done));
        }
    }

    // Lunchtime: the owner of host 4 comes back — eviction.
    let lunch = t + SimDuration::from_secs(60);
    cluster.host_mut(h(4)).console_active = true;
    let evicted = migrator.evict_all(&mut cluster, lunch, h(4))?;
    let mut t = evicted.last().map(|r| r.resumed_at).unwrap_or(lunch);

    // Afternoon: jobs finish and exit.
    for (pid, done) in jobs {
        t = cluster.exit(t.max_of(done), pid, 0)?;
    }

    println!("=== cluster narrative ===");
    for line in cluster.trace.entries() {
        println!("{line}");
    }
    let totals = migrator.totals();
    println!("\n=== totals ===");
    println!(
        "migrations {} (exec-time {}, evictions {}), total freeze {}",
        totals.migrations, totals.exec_migrations, totals.evictions, totals.total_freeze
    );
    Ok(())
}
