//! The four virtual-memory transfer strategies, side by side: watch a
//! process with a multi-megabyte image migrate under each design and see
//! where the time (and the risk) goes. The full sweep is experiment E2.
//!
//! ```text
//! cargo run --release --example vm_strategies
//! ```

use sprite::fs::SpritePath;
use sprite::kernel::ClusterBuilder;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{HostId, PAGE_SIZE};
use sprite::sim::SimTime;
use sprite::vm::{SegmentKind, VirtAddr, VmStrategy};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image_mb = 4.0_f64;
    println!("migrating a process with a {image_mb} MB image (25% dirty), per strategy:\n");
    println!(
        "{:<14} {:>11} {:>11} {:>10} {:>14} {:>20}",
        "strategy", "freeze", "total", "MB moved", "touch-25%", "survives src crash?"
    );

    for strategy in VmStrategy::ALL {
        let (mut cluster, t) = ClusterBuilder::new(4)
            .program("/bin/bigjob", 32 * 1024)
            .build()?;
        let mut migrator = Migrator::new(MigrationConfig::default(), 4);
        migrator.set_vm_strategy(strategy);

        // Build the image: touch everything, flush (normal paging would
        // have), then re-dirty a quarter.
        let pages = ((image_mb * 1024.0 * 1024.0) as u64) / PAGE_SIZE;
        let (pid, t) = cluster.spawn(t, h(1), &SpritePath::new("/bin/bigjob"), pages + 8, 8)?;
        let full = vec![0xaau8; (pages * PAGE_SIZE) as usize];
        let quarter = vec![0xbbu8; (pages / 4 * PAGE_SIZE) as usize];
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let t = space.write(
            &mut cluster.fs,
            &mut cluster.net,
            t,
            h(1),
            VirtAddr::new(SegmentKind::Heap, 0),
            &full,
        )?;
        let t = space.flush_dirty(&mut cluster.fs, &mut cluster.net, t, h(1))?;
        let t = space.write(
            &mut cluster.fs,
            &mut cluster.net,
            t,
            h(1),
            VirtAddr::new(SegmentKind::Heap, 0),
            &quarter,
        )?;
        cluster.pcb_mut(pid).unwrap().space = Some(space);

        let report = migrator.migrate(&mut cluster, t, pid, h(2))?;
        let vm = report.vm.expect("vm report");

        // Touch a quarter of the image on the target.
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let t0 = report.resumed_at;
        let (_, t1) = space.read(
            &mut cluster.fs,
            &mut cluster.net,
            t0,
            h(2),
            VirtAddr::new(SegmentKind::Heap, 0),
            pages / 4 * PAGE_SIZE,
        )?;
        // Then the source host "crashes".
        let lost = space.source_host_failed(h(1));
        cluster.pcb_mut(pid).unwrap().space = Some(space);

        println!(
            "{:<14} {:>11} {:>11} {:>10.2} {:>14} {:>20}",
            strategy.to_string(),
            report.freeze_time.to_string(),
            report.total_time.to_string(),
            vm.bytes_moved as f64 / (1024.0 * 1024.0),
            t1.elapsed_since(t0).to_string(),
            if lost == 0 {
                "yes".to_string()
            } else {
                format!("NO ({lost} pages lost)")
            },
        );
        let _ = SimTime::ZERO;
    }

    println!("\nSprite chose flush-to-backing-file: freeze scales with dirty pages,");
    println!("and the only machine the process still depends on is the file server —");
    println!("which it depended on anyway.");
    Ok(())
}
