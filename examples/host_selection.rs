//! The Chapter 6 shoot-out: four ways to find an idle workstation, driven
//! by the same diurnal cluster, with latency / traffic / conflicts printed
//! side by side.
//!
//! ```text
//! cargo run --release --example host_selection
//! ```

use sprite::hostsel::{
    AvailabilityPolicy, CentralServer, HostInfo, HostSelector, MulticastQuery, Probabilistic,
    SharedFileBoard,
};
use sprite::net::{CostModel, HostId, Transport};
use sprite::sim::{DetRng, SimDuration, SimTime};
use sprite::workloads::{ActivityModel, ActivityTrace};

fn main() {
    let hosts = 60;
    let duration = SimDuration::from_secs(1800);
    let policy = AvailabilityPolicy::default();
    println!("{hosts} hosts, 30 simulated minutes, one selection request every 10s\n");
    println!(
        "{:<15} {:>9} {:>9} {:>14} {:>13} {:>10}",
        "architecture", "requests", "granted", "latency(ms)", "msgs/request", "conflicts"
    );

    let mut selectors: Vec<Box<dyn HostSelector>> = vec![
        Box::new(CentralServer::new(HostId::new(0), policy)),
        Box::new(SharedFileBoard::new(HostId::new(0), policy)),
        Box::new(Probabilistic::new(hosts, 4, policy, 7)),
        Box::new(MulticastQuery::new(policy)),
    ];
    for sel in &mut selectors {
        let row = drive(sel.as_mut(), hosts, duration);
        println!(
            "{:<15} {:>9} {:>9} {:>14.2} {:>13.1} {:>10}",
            row.0, row.1, row.2, row.3, row.4, row.5
        );
    }
    println!("\nThe thesis's conclusion: the central server wins on nearly every axis —");
    println!("constant-latency selections, transition-only updates, and global state that");
    println!("prevents double assignment.");
}

fn drive(
    selector: &mut dyn HostSelector,
    hosts: usize,
    duration: SimDuration,
) -> (&'static str, u64, u64, f64, f64, u64) {
    let mut net = Transport::new(CostModel::sun3(), hosts);
    let mut rng = DetRng::seed_from(99);
    let model = ActivityModel::default();
    let start = SimTime::ZERO + SimDuration::from_secs(2 * 86_400 + 10 * 3_600);
    let traces: Vec<ActivityTrace> = (0..hosts)
        .map(|i| {
            ActivityTrace::generate(
                &mut rng,
                &model,
                HostId::new(i as u32),
                duration + SimDuration::from_secs(3 * 86_400),
            )
        })
        .collect();
    let mut held: Vec<(SimTime, HostId, HostId)> = Vec::new();
    let mut t = start;
    let end = start + duration;
    let mut next_request = start;
    while t < end {
        let world: Vec<HostInfo> = traces
            .iter()
            .map(|tr| HostInfo {
                host: tr.host,
                load: if held.iter().any(|(_, _, hh)| *hh == tr.host) {
                    1.0
                } else {
                    0.0
                },
                idle: tr.idle_duration_at(t),
                console_active: tr.active_at(t),
            })
            .collect();
        for info in &world {
            selector.report(&mut net, t, *info);
        }
        let due: Vec<_> = held.iter().copied().filter(|(at, _, _)| *at <= t).collect();
        held.retain(|(at, _, _)| *at > t);
        for (at, req, hh) in due {
            selector.release(&mut net, at, req, hh);
        }
        while next_request <= t {
            let requester = HostId::new(rng.uniform_u64(hosts as u64) as u32);
            let (granted, done) = selector.select(&mut net, next_request, requester, &world);
            if let Some(hh) = granted {
                held.push((
                    done + rng.exponential(SimDuration::from_secs(90)),
                    requester,
                    hh,
                ));
            }
            next_request += SimDuration::from_secs(10);
        }
        t += SimDuration::from_secs(5);
    }
    let s = selector.stats();
    (
        selector.name(),
        s.requests,
        s.granted,
        s.select_latency.mean() * 1e3,
        s.messages as f64 / s.requests.max(1) as f64,
        s.conflicts,
    )
}
