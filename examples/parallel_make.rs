//! The paper's motivating workload: `pmake` recompiling a program across
//! every idle workstation on the network, with speedups reported per
//! cluster size.
//!
//! ```text
//! cargo run --release --example parallel_make
//! ```

use sprite::fs::SpritePath;
use sprite::hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::pmake::{prepare_sources, run_build, DepGraph, PmakeConfig};
use sprite::sim::{DetRng, SimDuration, SimTime};
use sprite::workloads::CompileWorkload;

fn build_once(
    hosts: usize,
    use_migration: bool,
) -> Result<(SimDuration, usize), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(CostModel::sun3(), hosts);
    cluster.add_file_server(HostId::new(0), SpritePath::new("/"));
    cluster.install_program(SimTime::ZERO, SpritePath::new("/bin/cc"), 48 * 1024)?;
    let mut migrator = Migrator::new(MigrationConfig::default(), hosts);
    let mut selector = CentralServer::new(HostId::new(0), AvailabilityPolicy::default());
    for i in 2..hosts as u32 {
        selector.report(
            &mut cluster.net,
            SimTime::ZERO,
            HostInfo::idle_host(HostId::new(i), SimDuration::from_secs(3600)),
        );
    }
    let workload = CompileWorkload {
        files: 24,
        mean_cpu: SimDuration::from_secs(10),
        link_cpu: SimDuration::from_secs(6),
        ..CompileWorkload::default()
    };
    let graph = DepGraph::from_workload(&workload, &mut DetRng::seed_from(42));
    let home = HostId::new(1);
    let t = prepare_sources(&mut cluster, &graph, home, SimTime::ZERO)?;
    let config = PmakeConfig {
        use_migration,
        ..PmakeConfig::default()
    };
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        home,
        &graph,
        &config,
        t,
    )?;
    Ok((report.makespan, report.remote_builds))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pmake: 24 C files (~10s each) + a 6s sequential link\n");
    let (serial, _) = build_once(3, false)?;
    println!("single-host baseline: {serial}\n");
    println!(
        "{:>6}  {:>12}  {:>8}  {:>7}",
        "hosts", "makespan", "speedup", "remote"
    );
    for hosts in [3usize, 4, 6, 8, 12, 16] {
        let (makespan, remote) = build_once(hosts, true)?;
        println!(
            "{:>6}  {:>12}  {:>8.2}  {:>7}",
            hosts - 2, // idle hosts beyond server+home
            makespan.to_string(),
            serial.as_secs_f64() / makespan.as_secs_f64(),
            remote
        );
    }
    println!("\nThe curve bends: the sequential link (Amdahl) and the file server's");
    println!("name-lookup CPU bound the benefit, as the paper observed.");
    Ok(())
}
