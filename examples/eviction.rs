//! Workstation autonomy: foreign processes are evicted the moment the
//! owner returns, and land back on their home machines still running.
//!
//! ```text
//! cargo run --example eviction
//! ```

use sprite::fs::SpritePath;
use sprite::kernel::Cluster;
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::sim::SimTime;
use sprite::vm::{SegmentKind, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // host0: file server; host1: the idle workstation everyone borrows;
    // hosts 2-4: the owners' machines.
    let mut cluster = Cluster::new(CostModel::sun3(), 5);
    cluster.add_file_server(HostId::new(0), SpritePath::new("/"));
    let borrowed = HostId::new(1);
    let t = cluster.install_program(SimTime::ZERO, SpritePath::new("/bin/longjob"), 24 * 1024)?;

    let mut migrator = Migrator::new(MigrationConfig::default(), cluster.host_count());

    // Three users park long-running jobs on the idle machine.
    let mut clock = t;
    let mut pids = Vec::new();
    for owner in 2..5u32 {
        let home = HostId::new(owner);
        let (pid, t1) = cluster.spawn(clock, home, &SpritePath::new("/bin/longjob"), 256, 16)?;
        let report = migrator.migrate(&mut cluster, t1, pid, borrowed)?;
        // The job computes: dirty a megabyte of heap.
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let t2 = space.write(
            &mut cluster.fs,
            &mut cluster.net,
            report.resumed_at,
            borrowed,
            VirtAddr::new(SegmentKind::Heap, 0),
            &vec![0xAB; 1 << 20],
        )?;
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        clock = t2;
        pids.push(pid);
        println!("{pid} (home {home}) now running as a guest on {borrowed}");
    }
    println!(
        "\n{} foreign processes on {borrowed}; each holds ~1MB of dirty memory",
        cluster.foreign_on(borrowed).count()
    );

    // The owner of the borrowed machine comes back and touches the keyboard.
    println!("\n*** owner returns to {borrowed} at {clock} ***\n");
    cluster.host_mut(borrowed).console_active = true;
    // Watch the wire while eviction runs: the typed transport narrates
    // every RPC it carries under the "rpc" trace tag.
    cluster.enable_trace(256);
    let reports = migrator.evict_all(&mut cluster, clock, borrowed)?;
    for r in &reports {
        println!(
            "evicted {} back to {} in {} (froze {})",
            r.pid, r.to, r.total_time, r.freeze_time
        );
    }
    let trace = cluster.net.trace();
    let rpc_lines: Vec<String> = trace
        .entries()
        .filter(|e| e.tag == "rpc")
        .map(|e| e.to_string())
        .collect();
    println!(
        "\nwire traffic during eviction ({} RPCs traced, tags {:?}; last 6):",
        rpc_lines.len(),
        trace.tags()
    );
    for line in rpc_lines.iter().rev().take(6).rev() {
        println!("  {line}");
    }
    let last = reports.last().unwrap().resumed_at;
    println!(
        "\nworkstation reclaimed in {} total; {} foreign processes remain",
        last.elapsed_since(clock),
        cluster.foreign_on(borrowed).count()
    );

    // The evicted jobs keep running at home — prove the memory survived.
    for pid in pids {
        let home = cluster.pcb(pid).unwrap().current;
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let (bytes, _) = space.read(
            &mut cluster.fs,
            &mut cluster.net,
            last,
            home,
            VirtAddr::new(SegmentKind::Heap, 0),
            4,
        )?;
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        assert_eq!(bytes, vec![0xAB; 4]);
        println!("{pid} resumed on {home} with its memory intact");
    }
    Ok(())
}
