//! Quickstart: migrate a running process between workstations and watch it
//! keep its memory, its open files and its identity.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sprite::fs::{OpenMode, SpritePath};
use sprite::kernel::{Cluster, KernelCall};
use sprite::migration::{MigrationConfig, Migrator};
use sprite::net::{CostModel, HostId};
use sprite::sim::SimTime;
use sprite::vm::{SegmentKind, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little Sprite cluster: host0 is the file server, host1 is the
    // user's workstation ("home"), host2 is an idle machine down the hall.
    let mut cluster = Cluster::new(CostModel::sun3(), 3);
    cluster.add_file_server(HostId::new(0), SpritePath::new("/"));
    let home = HostId::new(1);
    let idle = HostId::new(2);

    let t = cluster.install_program(SimTime::ZERO, SpritePath::new("/bin/crunch"), 32 * 1024)?;
    let (pid, t) = cluster.spawn(t, home, &SpritePath::new("/bin/crunch"), 128, 16)?;
    println!("spawned {pid} on {home} (its home)");

    // The process computes something into memory and logs to a file.
    let addr = VirtAddr::new(SegmentKind::Heap, 4096);
    let t = {
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let t = space.write(
            &mut cluster.fs,
            &mut cluster.net,
            t,
            home,
            addr,
            b"partial result: 42",
        )?;
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        t
    };
    cluster
        .fs
        .create(&mut cluster.net, t, home, SpritePath::new("/users/me/log"))?;
    let (fd, t) = cluster.open_fd(
        t,
        pid,
        SpritePath::new("/users/me/log"),
        OpenMode::ReadWrite,
    )?;
    let t = cluster.write_fd(t, pid, fd, b"started at home\n")?;

    // Migrate it to the idle host.
    let mut migrator = Migrator::new(MigrationConfig::default(), cluster.host_count());
    let report = migrator.migrate(&mut cluster, t, pid, idle)?;
    println!(
        "migrated {} -> {} in {} (frozen for {}); moved {} stream(s)",
        report.from, report.to, report.total_time, report.freeze_time, report.streams_moved
    );

    // Same memory...
    let t = report.resumed_at;
    let (data, t) = {
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let r = space.read(&mut cluster.fs, &mut cluster.net, t, idle, addr, 18)?;
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        r
    };
    println!(
        "memory after migration: {:?}",
        String::from_utf8_lossy(&data)
    );

    // ...same file descriptor, appending where it left off...
    let t = cluster.write_fd(t, pid, fd, b"continued on an idle host\n")?;
    let stream = cluster.pcb(pid).unwrap().fd(fd).unwrap();
    cluster.fs.seek(stream, 0)?;
    let (log, t) = cluster.read_fd(t, pid, fd, 128)?;
    print!("log file reads back:\n{}", String::from_utf8_lossy(&log));

    // ...and location-dependent kernel calls still behave as if at home —
    // they are transparently forwarded (and cost an RPC).
    let t2 = cluster.kernel_call(t, pid, KernelCall::GetTimeOfDay)?;
    println!(
        "gettimeofday while foreign: {} (forwarded home over the network)",
        t2.elapsed_since(t)
    );

    let t = cluster.exit(t2, pid, 0)?;
    println!("process exited cleanly at {t}");
    Ok(())
}
