#!/usr/bin/env bash
# Benchmark regression gate.
#
#   scripts/bench_check.sh            # build, run, compare vs checked-in baseline
#   BENCH_CHECK_FACTOR=1.5 scripts/bench_check.sh   # custom regression factor
#
# Three checks, all offline:
#
#   1. stdout of a serial run is byte-identical to experiments_output.txt
#      (the determinism/correctness gate — timing never touches stdout);
#   2. a parallel run produces the same bytes (runner determinism contract);
#   3. total_wall_seconds of the fresh serial run has not regressed more
#      than BENCH_CHECK_FACTOR (default 1.25, i.e. +25%) over the
#      checked-in BENCH_experiments.json baseline.
#
# The fresh run includes the --macro data-plane macrobench, whose stale
# handle count must be zero.

set -euo pipefail
cd "$(dirname "$0")/.."

factor="${BENCH_CHECK_FACTOR:-1.25}"
bin=target/release/experiments

echo "==> cargo build --release -p sprite-bench"
cargo build --release -p sprite-bench

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> serial run (--jobs 1 --macro --json)"
(cd "$tmp" && "$OLDPWD/$bin" --jobs 1 --macro --json > serial.txt 2> serial.err)

echo "==> stdout vs experiments_output.txt"
# The macro table is appended after the golden suite output; the golden
# prefix must match byte-for-byte.
head -n "$(wc -l < experiments_output.txt)" "$tmp/serial.txt" > "$tmp/serial_prefix.txt"
if ! cmp -s experiments_output.txt "$tmp/serial_prefix.txt"; then
    echo "FAIL: serial stdout diverged from checked-in experiments_output.txt" >&2
    diff experiments_output.txt "$tmp/serial_prefix.txt" | head -40 >&2 || true
    exit 1
fi

echo "==> parallel run (--jobs 4) matches serial bytes"
(cd "$tmp" && "$OLDPWD/$bin" --jobs 4 > parallel.txt 2> /dev/null)
if ! cmp -s experiments_output.txt "$tmp/parallel.txt"; then
    echo "FAIL: --jobs 4 stdout diverged from serial output" >&2
    exit 1
fi

echo "==> fault sweep (--faults 42:0.1) is --jobs invariant"
# The fault schedule is a pure function of its seed, so the sweep's stdout
# and its fault_table JSON must not depend on the worker count.
mkdir -p "$tmp/f1" "$tmp/f4"
(cd "$tmp/f1" && "$OLDPWD/$bin" e01 --faults 42:0.1 --jobs 1 --json > ../faults1.txt 2> /dev/null)
(cd "$tmp/f4" && "$OLDPWD/$bin" e01 --faults 42:0.1 --jobs 4 --json > ../faults4.txt 2> /dev/null)
if ! cmp -s "$tmp/faults1.txt" "$tmp/faults4.txt"; then
    echo "FAIL: fault sweep stdout diverged between --jobs 1 and --jobs 4" >&2
    diff "$tmp/faults1.txt" "$tmp/faults4.txt" | head -40 >&2 || true
    exit 1
fi
if ! grep -q '^## F1: migration outcomes under injected faults' "$tmp/faults1.txt"; then
    echo "FAIL: --faults run printed no F1 table" >&2
    exit 1
fi
# The faults block minus wall-clock timing (the only nondeterministic field).
for j in f1 f4; do
    sed -n '/"faults": {/,/^  }/p' "$tmp/$j/BENCH_experiments.json" \
        | grep -v '"wall_seconds"' > "$tmp/$j.faults.json"
done
if ! grep -q '"fault_table"' "$tmp/f1.faults.json"; then
    echo "FAIL: --faults --json emitted no fault_table block" >&2
    exit 1
fi
if ! cmp -s "$tmp/f1.faults.json" "$tmp/f4.faults.json"; then
    echo "FAIL: fault_table JSON diverged between --jobs 1 and --jobs 4" >&2
    diff "$tmp/f1.faults.json" "$tmp/f4.faults.json" | head -40 >&2 || true
    exit 1
fi

echo "==> zero-rate fault run keeps the golden stdout byte-stable"
# At rate 0 the fault layer must be timing-invisible: the suite portion of
# the output is the same bytes as a run with no --faults flag at all.
(cd "$tmp" && "$OLDPWD/$bin" --jobs 4 --faults 42:0 > faults0.txt 2> /dev/null)
head -n "$(wc -l < experiments_output.txt)" "$tmp/faults0.txt" > "$tmp/faults0_prefix.txt"
if ! cmp -s experiments_output.txt "$tmp/faults0_prefix.txt"; then
    echo "FAIL: --faults 42:0 perturbed the golden suite output" >&2
    diff experiments_output.txt "$tmp/faults0_prefix.txt" | head -40 >&2 || true
    exit 1
fi

echo "==> determinism audit (--audit) digest streams match across --jobs"
# The audit replays E11 replications with state-digest checkpoints armed
# and prints every stream (first/last digest per replication). The block
# is a pure function of the seeded replications, so its bytes — including
# every digest — must be identical for any worker count. A mismatch also
# makes the binary itself exit 1 with a bisected divergence window.
mkdir -p "$tmp/a1" "$tmp/a4"
(cd "$tmp/a1" && "$OLDPWD/$bin" e01 --audit --jobs 1 > ../audit1.txt 2> /dev/null)
(cd "$tmp/a4" && "$OLDPWD/$bin" e01 --audit --jobs 4 > ../audit4.txt 2> /dev/null)
if ! cmp -s "$tmp/audit1.txt" "$tmp/audit4.txt"; then
    echo "FAIL: --audit digest streams diverged between --jobs 1 and --jobs 4" >&2
    diff "$tmp/audit1.txt" "$tmp/audit4.txt" | head -40 >&2 || true
    exit 1
fi
if ! grep -q '^Determinism audit' "$tmp/audit1.txt"; then
    echo "FAIL: --audit run printed no audit block" >&2
    exit 1
fi
if ! grep -q 'verdict: all .* replication digest streams identical' "$tmp/audit1.txt"; then
    echo "FAIL: audit verdict reports a divergence" >&2
    grep 'verdict' "$tmp/audit1.txt" >&2 || true
    exit 1
fi

echo "==> m02 sharded digest stream identical across --shards 1 and 4"
# The partitioned-parallel macrobench drives the cluster workload serial
# and sharded and compares digest streams in-process (the binary exits 1
# on divergence). On top of that, the stdout block prints only partition-
# invariant facts, so the bytes must match across --shards values — the
# same contract the golden tables have for --jobs.
mkdir -p "$tmp/m1" "$tmp/m4"
(cd "$tmp/m1" && "$OLDPWD/$bin" e01 --m02=2000:3 --shards 1 --json > ../m02_1.txt 2> /dev/null)
(cd "$tmp/m4" && "$OLDPWD/$bin" e01 --m02=2000:3 --shards 4 --json > ../m02_4.txt 2> /dev/null)
if ! cmp -s "$tmp/m02_1.txt" "$tmp/m02_4.txt"; then
    echo "FAIL: m02 stdout diverged between --shards 1 and --shards 4" >&2
    diff "$tmp/m02_1.txt" "$tmp/m02_4.txt" | head -40 >&2 || true
    exit 1
fi
if ! grep -q '"digest_match": true' "$tmp/m4/BENCH_experiments.json"; then
    echo "FAIL: m02 sharded digest stream diverged from serial" >&2
    exit 1
fi
if ! grep -q 'sharded stream identical  *yes' "$tmp/m02_4.txt"; then
    echo "FAIL: m02 table does not report an identical sharded stream" >&2
    exit 1
fi

echo "==> m02 sharded wall time within bounds for this machine"
# With real cores the 4-shard drive must actually be faster; on a starved
# box (CI containers are often 1-2 cores) the logical sharding still runs,
# so the gate only bounds its overhead. Thresholds are deliberately looser
# than the recorded full-scale numbers to keep the gate noise-proof.
m02_serial="$(sed -n 's/.*"serial_wall_seconds": \([0-9.]*\).*/\1/p' "$tmp/m4/BENCH_experiments.json" | head -1)"
m02_sharded="$(sed -n 's/.*"sharded_wall_seconds": \([0-9.]*\).*/\1/p' "$tmp/m4/BENCH_experiments.json" | head -1)"
m02_cores="$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' "$tmp/m4/BENCH_experiments.json" | head -1)"
if [[ -z "$m02_serial" || -z "$m02_sharded" || -z "$m02_cores" ]]; then
    echo "FAIL: could not parse m02 wall times from BENCH_experiments.json" >&2
    exit 1
fi
awk -v s="$m02_serial" -v p="$m02_sharded" -v c="$m02_cores" 'BEGIN {
    # >=4 cores: demand a real speedup (1.5x, below the recorded 2x so CI
    # noise cannot flake). Fewer cores: sharding may not help, but its
    # overhead must stay bounded (2x serial).
    limit = (c >= 4) ? s / 1.5 : s * 2.0
    printf "    serial %.3fs, sharded %.3fs on %d core(s), limit %.3fs\n", s, p, c, limit
    exit !(p <= limit)
}' || {
    echo "FAIL: m02 sharded wall $m02_sharded out of bounds vs serial $m02_serial on $m02_cores cores" >&2
    exit 1
}

echo "==> wall-time regression vs BENCH_experiments.json baseline"
baseline="$(sed -n 's/.*"total_wall_seconds": \([0-9.]*\).*/\1/p' BENCH_experiments.json | head -1)"
fresh="$(sed -n 's/.*"total_wall_seconds": \([0-9.]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
stale="$(sed -n 's/.*"stale_handle_lookups": \([0-9]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
if [[ -z "$baseline" || -z "$fresh" ]]; then
    echo "FAIL: could not parse total_wall_seconds (baseline='$baseline' fresh='$fresh')" >&2
    exit 1
fi
if [[ "${stale:-0}" != "0" ]]; then
    echo "FAIL: macrobench saw $stale stale slab-handle lookups (expected 0)" >&2
    exit 1
fi
awk -v b="$baseline" -v f="$fresh" -v k="$factor" 'BEGIN {
    limit = b * k
    printf "    baseline %.3fs, fresh %.3fs, limit %.3fs (factor %s)\n", b, f, limit, k
    exit !(f <= limit)
}' || {
    echo "FAIL: total_wall_seconds $fresh regressed past ${factor}x baseline $baseline" >&2
    exit 1
}

echo "==> hostsel selection regression vs BENCH_experiments.json baseline"
# The decentralized selection path (gossip month + sharded batch) replaced
# the central server's 615 ms query queue. Both numbers are simulated and
# fully deterministic, so the slack factor only absorbs deliberate small
# workload tweaks — a return to round-trip selection blows straight past it.
hs_factor="${BENCH_HOSTSEL_FACTOR:-1.25}"
hs_base_ms="$(sed -n 's/.*"hostsel_select_mean_ms": \([0-9.]*\).*/\1/p' BENCH_experiments.json | head -1)"
hs_fresh_ms="$(sed -n 's/.*"hostsel_select_mean_ms": \([0-9.]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
hs_base_bytes="$(sed -n 's/.*"hostsel_bytes": \([0-9]*\).*/\1/p' BENCH_experiments.json | head -1)"
hs_fresh_bytes="$(sed -n 's/.*"hostsel_bytes": \([0-9]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
if [[ -z "$hs_base_ms" || -z "$hs_fresh_ms" || -z "$hs_base_bytes" || -z "$hs_fresh_bytes" ]]; then
    echo "FAIL: could not parse hostsel metrics (base ms='$hs_base_ms' fresh ms='$hs_fresh_ms' base bytes='$hs_base_bytes' fresh bytes='$hs_fresh_bytes')" >&2
    exit 1
fi
awk -v b="$hs_base_ms" -v f="$hs_fresh_ms" -v k="$hs_factor" 'BEGIN {
    limit = b * k
    printf "    select latency: baseline %.3fms, fresh %.3fms, limit %.3fms (factor %s)\n", b, f, limit, k
    exit !(f <= limit)
}' || {
    echo "FAIL: hostsel_select_mean_ms $hs_fresh_ms regressed past ${hs_factor}x baseline $hs_base_ms" >&2
    exit 1
}
awk -v b="$hs_base_bytes" -v f="$hs_fresh_bytes" -v k="$hs_factor" 'BEGIN {
    limit = b * k
    printf "    wire bytes: baseline %d, fresh %d, limit %.0f (factor %s)\n", b, f, limit, k
    exit !(f <= limit)
}' || {
    echo "FAIL: hostsel_bytes $hs_fresh_bytes regressed past ${hs_factor}x baseline $hs_base_bytes" >&2
    exit 1
}

echo "==> sharded-FS load regression vs BENCH_experiments.json baseline"
# The striped file service spreads the macro workload's server load across
# its daemons; the worst daemon's busy time is the number that regresses
# if the striping (or the replica serving that rides on it) breaks. Both
# runs are simulated and deterministic, so the slack factor only absorbs
# deliberate workload tweaks.
fs_factor="${BENCH_FS_FACTOR:-1.25}"
fs_base="$(sed -n 's/.*"fs_server_busy_max_seconds": \([0-9.]*\).*/\1/p' BENCH_experiments.json | head -1)"
fs_fresh="$(sed -n 's/.*"fs_server_busy_max_seconds": \([0-9.]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
if [[ -z "$fs_base" || -z "$fs_fresh" ]]; then
    echo "FAIL: could not parse fs_server_busy_max_seconds (base='$fs_base' fresh='$fs_fresh')" >&2
    exit 1
fi
awk -v b="$fs_base" -v f="$fs_fresh" -v k="$fs_factor" 'BEGIN {
    limit = b * k
    printf "    worst server busy: baseline %.3fs, fresh %.3fs, limit %.3fs (factor %s)\n", b, f, limit, k
    exit !(f <= limit)
}' || {
    echo "FAIL: fs_server_busy_max_seconds $fs_fresh regressed past ${fs_factor}x baseline $fs_base" >&2
    exit 1
}

echo "==> e05 saturation crossover: striping must keep the bend pushed right"
# The crossover is the host count where marginal speedup collapses; the
# sharded series must bend later than the single-server series, and must
# not retreat left of the recorded baseline beyond the slack factor.
x1_fresh="$(sed -n 's/.*"fs_shards": 1, "crossover_hosts": \([0-9]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
x2_fresh="$(sed -n 's/.*"fs_shards": 2, "crossover_hosts": \([0-9]*\).*/\1/p' "$tmp/BENCH_experiments.json" | head -1)"
x2_base="$(sed -n 's/.*"fs_shards": 2, "crossover_hosts": \([0-9]*\).*/\1/p' BENCH_experiments.json | head -1)"
if [[ -z "$x1_fresh" || -z "$x2_fresh" || -z "$x2_base" ]]; then
    echo "FAIL: could not parse e05 crossovers (fresh 1-shard='$x1_fresh' 2-shard='$x2_fresh' baseline 2-shard='$x2_base')" >&2
    exit 1
fi
awk -v x1="$x1_fresh" -v x2="$x2_fresh" -v b="$x2_base" -v k="$fs_factor" 'BEGIN {
    floor = b / k
    printf "    crossover: 1 shard at %d hosts, 2 shards at %d hosts (baseline %d, floor %.1f)\n", x1, x2, b, floor
    exit !(x2 > x1 && x2 >= floor)
}' || {
    echo "FAIL: e05 crossover regressed (1 shard $x1_fresh, 2 shards $x2_fresh, baseline $x2_base, factor $fs_factor)" >&2
    exit 1
}

echo "==> bench check OK"
