#!/usr/bin/env bash
# Offline CI gate for the Sprite migration reproduction.
#
#   scripts/ci.sh          # full gate: build, tests, fmt --check, clippy
#   scripts/ci.sh --quick  # tier-1 only: release build + tests
#
# Everything runs offline: the workspace has zero external dependencies, so
# no network access (and no pre-populated registry cache) is required.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "$quick" == 1 ]]; then
    echo "==> tier-1 OK (quick mode; skipped fmt/clippy)"
    exit 0
fi

echo "==> cargo test -q --test fault_properties"
# The deterministic chaos suite: 50 fault seeds x 3 drop rates, replayed.
cargo test -q --test fault_properties

echo "==> fault-handling lint (no unwrap/expect on transport sends)"
# Every Transport send returns Result<Delivery, RpcError>; swallowing the
# error with unwrap()/expect() would panic the simulation on an injected
# fault instead of exercising the recovery paths. Production code must
# match or propagate; test code uses local ok() helpers instead.
if grep -rEzl '\.(send|send_with_service|send_sized|send_datagram|send_multicast|stream_bulk)\([^;]*\)[[:space:]]*\.(unwrap|expect)\(' \
        crates --include='*.rs' | tr '\0' '\n' | grep .; then
    echo "FAIL: unwrap()/expect() on a Transport send result — handle the RpcError (retry, abort, or surface it)" >&2
    exit 1
fi

echo "==> determinism lint (no default-hasher maps outside crates/sim)"
# Simulation state must hash deterministically: every map in the data plane
# goes through sprite_sim::{DetHashMap, DetHashSet}. The std types with
# RandomState are allowed only inside crates/sim (which wraps them).
if grep -rEn 'std::collections::\{?[^;{]*Hash(Map|Set)' crates --include='*.rs' \
        | grep -v '^crates/sim/'; then
    echo "FAIL: std HashMap/HashSet (RandomState) in simulation code — use sprite_sim::DetHashMap/DetHashSet" >&2
    exit 1
fi

echo "==> transport lint (no raw Network sends outside crates/net)"
# Every cross-kernel interaction goes through the typed Transport facade so
# the per-op RpcTable accounts for all wire traffic. Raw Network::{rpc,bulk,
# multicast} calls are allowed only inside crates/net (where Transport wraps
# them).
if grep -rEn 'net\.(rpc|bulk|multicast)\(' crates --include='*.rs' \
        | grep -v '^crates/net/'; then
    echo "FAIL: raw Network send in simulation code — route it through sprite_net::Transport (send/send_sized/stream_bulk/...)" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> scripts/bench_check.sh"
scripts/bench_check.sh

echo "==> CI gate OK"
