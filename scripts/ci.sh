#!/usr/bin/env bash
# Offline CI gate for the Sprite migration reproduction.
#
#   scripts/ci.sh          # full gate: build, tests, fmt --check, clippy
#   scripts/ci.sh --quick  # tier-1 only: release build + tests
#
# Everything runs offline: the workspace has zero external dependencies, so
# no network access (and no pre-populated registry cache) is required.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> sprite_lint (determinism invariants)"
# The static analyzer replaces the old grep lints: deterministic hashers,
# typed transport sends, no unwrap/expect on transport results (including
# multiline chains), no wall clock in simulation crates, no unordered map
# iteration into scheduling, and #![forbid(unsafe_code)] in crate roots.
# Rule IDs and the `// lint: allow(rule-id)` suppression syntax are
# documented in DESIGN.md; any non-allowed diagnostic fails the gate.
cargo run -q -p sprite_lint -- crates src tests examples

echo "==> m02 smoke (200 hosts, 1 simulated day, 2 shards)"
# The partitioned-parallel engine compares its sharded digest stream
# against the serial reference in-process and exits 1 on divergence; one
# small run keeps the determinism contract in even the quick gate.
target/release/experiments e01 --m02=200:1 --shards 2 > /dev/null 2>&1

echo "==> e10-sweep smoke (200 hosts, central vs sharded vs gossip)"
# The decentralization sweep fans its cells over worker threads; its table
# must be byte-identical for any --jobs value (gossip fanout is seeded).
sweep_tmp="$(mktemp -d)"
trap 'rm -rf "$sweep_tmp"' EXIT
target/release/experiments e01 --e10-sweep=200 --jobs 1 > "$sweep_tmp/sweep1.txt" 2> /dev/null
target/release/experiments e01 --e10-sweep=200 --jobs 4 > "$sweep_tmp/sweep4.txt" 2> /dev/null
if ! cmp -s "$sweep_tmp/sweep1.txt" "$sweep_tmp/sweep4.txt"; then
    echo "FAIL: e10 sweep stdout diverged between --jobs 1 and --jobs 4" >&2
    diff "$sweep_tmp/sweep1.txt" "$sweep_tmp/sweep4.txt" | head -40 >&2 || true
    exit 1
fi
if ! grep -q '^## E10 sweep: decentralized host selection' "$sweep_tmp/sweep1.txt"; then
    echo "FAIL: --e10-sweep run printed no sweep table" >&2
    exit 1
fi

echo "==> sharded-FS smoke (e05 striped servers, jobs 1 vs 4)"
# The striped file-service sweep (1/2/4 server daemons) must render the
# same bytes for any --jobs value, and the 2-shard series must report its
# saturation crossover — the number the regression gate tracks.
target/release/experiments e05 --jobs 1 > "$sweep_tmp/e05_1.txt" 2> /dev/null
target/release/experiments e05 --jobs 4 > "$sweep_tmp/e05_4.txt" 2> /dev/null
if ! cmp -s "$sweep_tmp/e05_1.txt" "$sweep_tmp/e05_4.txt"; then
    echo "FAIL: e05 stdout diverged between --jobs 1 and --jobs 4" >&2
    diff "$sweep_tmp/e05_1.txt" "$sweep_tmp/e05_4.txt" | head -40 >&2 || true
    exit 1
fi
if ! grep -q 'saturation crossover at 2 shard' "$sweep_tmp/e05_1.txt"; then
    echo "FAIL: e05 run printed no 2-shard saturation crossover" >&2
    exit 1
fi

if [[ "$quick" == 1 ]]; then
    echo "==> tier-1 OK (quick mode; skipped fmt/clippy)"
    exit 0
fi

echo "==> cargo test -q --test fault_properties"
# The deterministic chaos suite: 50 fault seeds x 3 drop rates, replayed.
cargo test -q --test fault_properties

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> scripts/bench_check.sh"
scripts/bench_check.sh

echo "==> CI gate OK"
