#!/usr/bin/env bash
# Offline CI gate for the Sprite migration reproduction.
#
#   scripts/ci.sh          # full gate: build, tests, fmt --check, clippy
#   scripts/ci.sh --quick  # tier-1 only: release build + tests
#
# Everything runs offline: the workspace has zero external dependencies, so
# no network access (and no pre-populated registry cache) is required.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "$quick" == 1 ]]; then
    echo "==> tier-1 OK (quick mode; skipped fmt/clippy)"
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI gate OK"
