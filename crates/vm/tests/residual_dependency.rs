//! Failure injection: the residual-dependency argument, executed.
//!
//! The thesis's case against copy-on-reference (Ch. 2.3) is that it ties a
//! migrated process to its old host's survival. These tests crash the
//! source host after each strategy's migration and observe who loses state.

use sprite_fs::{FsConfig, SpriteFs, SpritePath};
use sprite_net::{CostModel, HostId, Transport, PAGE_SIZE};
use sprite_sim::SimTime;
use sprite_vm::{transfer, AddressSpace, SegmentKind, TransferParams, VirtAddr, VmStrategy};

fn h(i: u32) -> HostId {
    HostId::new(i)
}

fn setup() -> (Transport, SpriteFs) {
    let net = Transport::new(CostModel::sun3(), 3);
    let mut fs = SpriteFs::new(FsConfig::default(), 3);
    fs.add_server(h(0), SpritePath::new("/"));
    (net, fs)
}

fn migrated_space(
    fs: &mut SpriteFs,
    net: &mut Transport,
    strategy: VmStrategy,
    tag: &str,
) -> (AddressSpace, SimTime, Vec<u8>) {
    let (prog, t) = fs
        .create(
            net,
            SimTime::ZERO,
            h(1),
            SpritePath::new(format!("/bin/{tag}")),
        )
        .unwrap();
    let (mut space, t) = AddressSpace::create(fs, net, t, h(1), tag, prog, 2, 32, 4).unwrap();
    let payload: Vec<u8> = (0..8 * PAGE_SIZE).map(|i| (i % 241) as u8).collect();
    let t = space
        .write(
            fs,
            net,
            t,
            h(1),
            VirtAddr::new(SegmentKind::Heap, 0),
            &payload,
        )
        .unwrap();
    let report = transfer(
        &mut space,
        strategy,
        fs,
        net,
        t,
        h(1),
        h(2),
        &TransferParams::default(),
    )
    .unwrap();
    (space, report.resumed_at, payload)
}

#[test]
fn copy_on_reference_loses_state_when_the_source_dies() {
    let (mut net, mut fs) = setup();
    let (mut space, t, payload) =
        migrated_space(&mut fs, &mut net, VmStrategy::CopyOnReference, "cor");
    // Touch one page first: it crossed the network and is safe.
    let (first, t) = space
        .read(
            &mut fs,
            &mut net,
            t,
            h(2),
            VirtAddr::new(SegmentKind::Heap, 0),
            64,
        )
        .unwrap();
    assert_eq!(first, payload[..64]);
    // The source host crashes.
    let lost = space.source_host_failed(h(1));
    assert!(lost > 0, "untouched pages were still owed by the source");
    // The untouched tail of the image is gone.
    let (tail, _) = space
        .read(
            &mut fs,
            &mut net,
            t,
            h(2),
            VirtAddr::new(SegmentKind::Heap, 7 * PAGE_SIZE),
            64,
        )
        .unwrap();
    assert_eq!(tail, vec![0u8; 64], "lost pages read as zero-fill damage");
    assert_ne!(
        tail,
        payload[7 * PAGE_SIZE as usize..7 * PAGE_SIZE as usize + 64]
    );
}

#[test]
fn sprite_flush_survives_the_same_crash_unscathed() {
    let (mut net, mut fs) = setup();
    let (mut space, t, payload) =
        migrated_space(&mut fs, &mut net, VmStrategy::SpriteFlush, "flush");
    let lost = space.source_host_failed(h(1));
    assert_eq!(lost, 0, "flush leaves nothing on the source");
    // The whole image is still reachable via the file server.
    let (back, _) = space
        .read(
            &mut fs,
            &mut net,
            t,
            h(2),
            VirtAddr::new(SegmentKind::Heap, 0),
            payload.len() as u64,
        )
        .unwrap();
    assert_eq!(back, payload);
}

#[test]
fn eagerly_copied_strategies_are_also_safe() {
    for strategy in [VmStrategy::FullCopy, VmStrategy::PreCopy] {
        let (mut net, mut fs) = setup();
        let (mut space, t, payload) = migrated_space(&mut fs, &mut net, strategy, "eager");
        assert_eq!(space.source_host_failed(h(1)), 0, "{strategy}");
        let (back, _) = space
            .read(
                &mut fs,
                &mut net,
                t,
                h(2),
                VirtAddr::new(SegmentKind::Heap, 0),
                payload.len() as u64,
            )
            .unwrap();
        assert_eq!(back, payload, "{strategy}");
    }
}

#[test]
fn a_crash_of_an_unrelated_host_is_harmless_even_for_cor() {
    let (mut net, mut fs) = setup();
    let (mut space, t, payload) =
        migrated_space(&mut fs, &mut net, VmStrategy::CopyOnReference, "bystander");
    assert_eq!(
        space.source_host_failed(h(0)),
        0,
        "wrong host: no pages owed"
    );
    let (back, _) = space
        .read(
            &mut fs,
            &mut net,
            t,
            h(2),
            VirtAddr::new(SegmentKind::Heap, 0),
            payload.len() as u64,
        )
        .unwrap();
    assert_eq!(back, payload);
}
