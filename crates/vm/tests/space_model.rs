//! Property test: an address space driven by arbitrary writes, flushes,
//! residency drops and copy-on-reference hand-offs always reads back the
//! bytes a flat reference model predicts — no matter which host touches it
//! next. This is the memory-integrity half of migration transparency,
//! exercised harder than any single protocol run does.
//!
//! Cases come from [`DetRng`] with a fixed seed; `heavy-tests` multiplies
//! the case count.

use sprite_fs::{FsConfig, SpriteFs, SpritePath};
use sprite_net::{CostModel, HostId, Transport, PAGE_SIZE};
use sprite_sim::{DetRng, SimTime};
use sprite_vm::{AddressSpace, SegmentKind, VirtAddr};

const HEAP_PAGES: u64 = 12;

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

#[derive(Debug, Clone)]
enum VmOp {
    Write {
        page: u8,
        off: u16,
        byte: u8,
        len: u8,
    },
    FlushDirty,
    FlushAndDrop,
    LeaveAtSource,
    HopHost,
}

fn vm_op(rng: &mut DetRng) -> VmOp {
    // Writes weighted 4:1 against each transfer/flush op, as in the
    // original distribution.
    match rng.pick_index(8) {
        0..=3 => VmOp::Write {
            page: rng.uniform_u64(HEAP_PAGES) as u8,
            off: rng.uniform_u64(4000) as u16,
            byte: rng.uniform_u64(256) as u8,
            len: 1 + rng.uniform_u64(199) as u8,
        },
        4 => VmOp::FlushDirty,
        5 => VmOp::FlushAndDrop,
        6 => VmOp::LeaveAtSource,
        _ => VmOp::HopHost,
    }
}

#[test]
fn memory_matches_flat_model_under_any_transfer_mix() {
    let mut rng = DetRng::seed_from(0x5BACE);
    for case in 0..cases(64) {
        let nops = 1 + rng.pick_index(39);
        let ops: Vec<VmOp> = (0..nops).map(|_| vm_op(&mut rng)).collect();

        let mut net = Transport::new(CostModel::sun3(), 4);
        let mut fs = SpriteFs::new(FsConfig::default(), 4);
        fs.add_server(HostId::new(0), SpritePath::new("/"));
        let (prog, t0) = fs
            .create(
                &mut net,
                SimTime::ZERO,
                HostId::new(1),
                SpritePath::new("/bin/pm"),
            )
            .unwrap();
        let (mut space, mut t) = AddressSpace::create(
            &mut fs,
            &mut net,
            t0,
            HostId::new(1),
            "pm",
            prog,
            2,
            HEAP_PAGES,
            4,
        )
        .unwrap();
        let mut model = vec![0u8; (HEAP_PAGES * PAGE_SIZE) as usize];
        let mut host = HostId::new(1);

        for op in ops {
            match op {
                VmOp::Write {
                    page,
                    off,
                    byte,
                    len,
                } => {
                    let offset = page as u64 * PAGE_SIZE + off as u64;
                    let len = (len as u64).min(HEAP_PAGES * PAGE_SIZE - offset);
                    let data = vec![byte; len as usize];
                    t = space
                        .write(
                            &mut fs,
                            &mut net,
                            t,
                            host,
                            VirtAddr::new(SegmentKind::Heap, offset),
                            &data,
                        )
                        .unwrap();
                    model[offset as usize..(offset + len) as usize].fill(byte);
                }
                VmOp::FlushDirty => {
                    t = space.flush_dirty(&mut fs, &mut net, t, host).unwrap();
                }
                VmOp::FlushAndDrop => {
                    // A Sprite-flush migration: flush, drop, hop.
                    t = space.flush_dirty(&mut fs, &mut net, t, host).unwrap();
                    space.drop_residency();
                    host = HostId::new(1 + (host.index() as u32) % 3);
                }
                VmOp::LeaveAtSource => {
                    // Copy-on-reference migration away from `host`.
                    // Dirty pages travel as COR pages too (Accent kept them
                    // at the source); our model keeps bytes, so only the
                    // location bookkeeping changes.
                    let old = host;
                    space.leave_at_source(old);
                    host = HostId::new(1 + (host.index() as u32) % 3);
                }
                VmOp::HopHost => {
                    // Full-copy-style migration: resident pages travel in
                    // memory; nothing changes but the host.
                    host = HostId::new(1 + (host.index() as u32) % 3);
                }
            }
        }
        // Final read-back of the whole heap from wherever we ended up.
        let (mem, _) = space
            .read(
                &mut fs,
                &mut net,
                t,
                host,
                VirtAddr::new(SegmentKind::Heap, 0),
                HEAP_PAGES * PAGE_SIZE,
            )
            .unwrap();
        assert_eq!(mem, model, "case {case}");
    }
}
