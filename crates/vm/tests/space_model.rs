//! Property test: an address space driven by arbitrary writes, flushes,
//! residency drops and copy-on-reference hand-offs always reads back the
//! bytes a flat reference model predicts — no matter which host touches it
//! next. This is the memory-integrity half of migration transparency,
//! exercised harder than any single protocol run does.

use proptest::prelude::*;
use sprite_fs::{FsConfig, SpriteFs, SpritePath};
use sprite_net::{CostModel, HostId, Network, PAGE_SIZE};
use sprite_sim::SimTime;
use sprite_vm::{AddressSpace, SegmentKind, VirtAddr};

const HEAP_PAGES: u64 = 12;

#[derive(Debug, Clone)]
enum VmOp {
    Write { page: u8, off: u16, byte: u8, len: u8 },
    FlushDirty,
    FlushAndDrop,
    LeaveAtSource,
    HopHost,
}

fn vm_op() -> impl Strategy<Value = VmOp> {
    prop_oneof![
        4 => (0u8..HEAP_PAGES as u8, 0u16..4000, any::<u8>(), 1u8..200)
            .prop_map(|(page, off, byte, len)| VmOp::Write { page, off, byte, len }),
        1 => Just(VmOp::FlushDirty),
        1 => Just(VmOp::FlushAndDrop),
        1 => Just(VmOp::LeaveAtSource),
        1 => Just(VmOp::HopHost),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_matches_flat_model_under_any_transfer_mix(
        ops in prop::collection::vec(vm_op(), 1..40),
    ) {
        let mut net = Network::new(CostModel::sun3(), 4);
        let mut fs = SpriteFs::new(FsConfig::default(), 4);
        fs.add_server(HostId::new(0), SpritePath::new("/"));
        let (prog, t0) = fs
            .create(&mut net, SimTime::ZERO, HostId::new(1), SpritePath::new("/bin/pm"))
            .unwrap();
        let (mut space, mut t) = AddressSpace::create(
            &mut fs, &mut net, t0, HostId::new(1), "pm", prog, 2, HEAP_PAGES, 4,
        )
        .unwrap();
        let mut model = vec![0u8; (HEAP_PAGES * PAGE_SIZE) as usize];
        let mut host = HostId::new(1);

        for op in ops {
            match op {
                VmOp::Write { page, off, byte, len } => {
                    let offset = page as u64 * PAGE_SIZE + off as u64;
                    let len = (len as u64).min(HEAP_PAGES * PAGE_SIZE - offset);
                    let data = vec![byte; len as usize];
                    t = space
                        .write(&mut fs, &mut net, t, host,
                               VirtAddr::new(SegmentKind::Heap, offset), &data)
                        .unwrap();
                    model[offset as usize..(offset + len) as usize].fill(byte);
                }
                VmOp::FlushDirty => {
                    t = space.flush_dirty(&mut fs, &mut net, t, host).unwrap();
                }
                VmOp::FlushAndDrop => {
                    // A Sprite-flush migration: flush, drop, hop.
                    t = space.flush_dirty(&mut fs, &mut net, t, host).unwrap();
                    space.drop_residency();
                    host = HostId::new(1 + (host.index() as u32) % 3);
                }
                VmOp::LeaveAtSource => {
                    // Copy-on-reference migration away from `host`.
                    // Dirty pages travel as COR pages too (Accent kept them
                    // at the source); our model keeps bytes, so only the
                    // location bookkeeping changes.
                    let old = host;
                    space.leave_at_source(old);
                    host = HostId::new(1 + (host.index() as u32) % 3);
                }
                VmOp::HopHost => {
                    // Full-copy-style migration: resident pages travel in
                    // memory; nothing changes but the host.
                    host = HostId::new(1 + (host.index() as u32) % 3);
                }
            }
        }
        // Final read-back of the whole heap from wherever we ended up.
        let (mem, _) = space
            .read(&mut fs, &mut net, t, host,
                  VirtAddr::new(SegmentKind::Heap, 0), HEAP_PAGES * PAGE_SIZE)
            .unwrap();
        prop_assert_eq!(mem, model);
    }
}
