//! Virtual-memory substrate for the Sprite migration reproduction.
//!
//! Provides process address spaces ([`AddressSpace`]) with code/heap/stack
//! segments, real page contents, dirty tracking and demand paging through
//! the shared file system's backing files — plus the four VM migration
//! transfer strategies the thesis compares ([`VmStrategy`], [`transfer`]):
//! monolithic full copy (Charlotte/LOCUS), iterative pre-copy (V), lazy
//! copy-on-reference (Accent) and Sprite's flush-to-backing-file.
//!
//! # Examples
//!
//! ```
//! use sprite_fs::{FsConfig, SpriteFs, SpritePath};
//! use sprite_net::{CostModel, HostId, Transport};
//! use sprite_sim::SimTime;
//! use sprite_vm::{transfer, AddressSpace, SegmentKind, TransferParams, VirtAddr, VmStrategy};
//!
//! # fn main() -> Result<(), sprite_fs::FsError> {
//! let mut net = Transport::new(CostModel::sun3(), 3);
//! let mut fs = SpriteFs::new(FsConfig::default(), 3);
//! fs.add_server(HostId::new(0), SpritePath::new("/"));
//!
//! let src = HostId::new(1);
//! let dst = HostId::new(2);
//! let (program, t) = fs.create(&mut net, SimTime::ZERO, src, SpritePath::new("/bin/p9"))?;
//! let (mut space, t) = AddressSpace::create(&mut fs, &mut net, t, src, "p9", program, 4, 64, 8)?;
//! let t = space.write(&mut fs, &mut net, t, src, VirtAddr::new(SegmentKind::Heap, 0), &[7u8; 4096])?;
//! let report = transfer(&mut space, VmStrategy::SpriteFlush, &mut fs, &mut net, t, src, dst,
//!                       &TransferParams::default())?;
//! println!("froze for {}", report.freeze_time);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod space;
mod transfer;

pub use space::{AddressSpace, Segment, SegmentKind, VirtAddr, VmStats};
pub use transfer::{transfer, TransferParams, TransferReport, VmStrategy};
