//! Address spaces, segments and demand paging.
//!
//! A Sprite process has three segments — code, heap and stack. Code is
//! read-only and demand-paged from the executable file itself; heap and
//! stack page to *backing files* in the shared file system. "Paging via the
//! file system simplifies migration because the functionality to demand-page
//! a process over the network already exists" (Ch. 3.2) — Sprite's whole VM
//! transfer strategy falls out of this design, and so does ours.
//!
//! Pages hold real bytes. Migration, flushing and demand paging move those
//! bytes through the simulated file system, so tests can check that a
//! process observes byte-identical memory before and after any sequence of
//! migrations.

use std::fmt;

use sprite_fs::{FileId, FsResult, SpriteFs};
use sprite_net::{HostId, RpcOp, Transport, PAGE_SIZE};
use sprite_sim::SimTime;

/// The three segments of a Sprite process image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Read-only program text, paged from the executable file.
    Code,
    /// The data/heap segment.
    Heap,
    /// The stack segment.
    Stack,
}

impl SegmentKind {
    /// All segment kinds, in layout order.
    pub const ALL: [SegmentKind; 3] = [SegmentKind::Code, SegmentKind::Heap, SegmentKind::Stack];

    /// Code pages are never dirty; they can always be re-fetched from the
    /// executable file.
    pub fn writable(self) -> bool {
        !matches!(self, SegmentKind::Code)
    }
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SegmentKind::Code => "code",
            SegmentKind::Heap => "heap",
            SegmentKind::Stack => "stack",
        };
        f.write_str(s)
    }
}

/// A segment-relative virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtAddr {
    /// Which segment.
    pub segment: SegmentKind,
    /// Byte offset within the segment.
    pub offset: u64,
}

impl VirtAddr {
    /// Convenience constructor.
    pub fn new(segment: SegmentKind, offset: u64) -> Self {
        VirtAddr { segment, offset }
    }
}

/// Where a non-resident page's current bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageHome {
    /// In this address space's `data` (page is resident in local memory).
    Resident,
    /// In the segment's backing file on a file server.
    BackingFile,
    /// Still in memory on a previous host (copy-on-reference migration).
    RemoteSource(HostId),
    /// Never touched: reads fault in a zero page without I/O cost beyond
    /// the fault itself.
    Zero,
}

#[derive(Debug, Clone)]
struct PageState {
    home: PageHome,
    dirty: bool,
    data: Vec<u8>,
}

impl PageState {
    fn zero() -> Self {
        PageState {
            home: PageHome::Zero,
            dirty: false,
            data: Vec::new(),
        }
    }
}

/// One segment's pages plus its backing file.
#[derive(Debug, Clone)]
pub struct Segment {
    kind: SegmentKind,
    backing: FileId,
    pages: Vec<PageState>,
}

impl Segment {
    /// Which segment this is.
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// Number of pages in the segment.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Pages currently resident in memory.
    pub fn resident_pages(&self) -> u64 {
        self.pages
            .iter()
            .filter(|p| p.home == PageHome::Resident)
            .count() as u64
    }

    /// Resident pages with modifications not yet in the backing file.
    pub fn dirty_pages(&self) -> u64 {
        self.pages.iter().filter(|p| p.dirty).count() as u64
    }

    /// The backing file.
    pub fn backing(&self) -> FileId {
        self.backing
    }
}

/// Statistics for one address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Page faults taken.
    pub faults: u64,
    /// Faults satisfied from a backing file.
    pub pageins: u64,
    /// Faults satisfied from a remote source host (copy-on-reference).
    pub remote_fetches: u64,
    /// Dirty pages written to backing files.
    pub pageouts: u64,
}

/// A process's virtual memory image.
///
/// # Examples
///
/// ```
/// use sprite_fs::{FsConfig, SpriteFs, SpritePath};
/// use sprite_net::{CostModel, HostId, Transport};
/// use sprite_sim::SimTime;
/// use sprite_vm::{AddressSpace, SegmentKind, VirtAddr};
///
/// # fn main() -> Result<(), sprite_fs::FsError> {
/// let mut net = Transport::new(CostModel::sun3(), 2);
/// let mut fs = SpriteFs::new(FsConfig::default(), 2);
/// fs.add_server(HostId::new(0), SpritePath::new("/"));
/// let host = HostId::new(1);
/// let (program, t) = fs.create(&mut net, SimTime::ZERO, host, SpritePath::new("/bin/a.out"))?;
/// let (mut space, t) = AddressSpace::create(
///     &mut fs, &mut net, t, host, "pid1", program, 4, 16, 4,
/// )?;
/// let addr = VirtAddr::new(SegmentKind::Heap, 100);
/// let t = space.write(&mut fs, &mut net, t, host, addr, b"hello")?;
/// let (data, _) = space.read(&mut fs, &mut net, t, host, addr, 5)?;
/// assert_eq!(data, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    code: Segment,
    heap: Segment,
    stack: Segment,
    stats: VmStats,
}

impl AddressSpace {
    /// Creates an address space. Heap and stack get fresh backing files
    /// under `/swap/<tag>.*`; code pages demand-page from `code_file`, the
    /// executable itself — which is why Sprite never has to transfer code
    /// pages during migration: any kernel can fetch them from the shared
    /// file system.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        fs: &mut SpriteFs,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        tag: &str,
        code_file: FileId,
        code_pages: u64,
        heap_pages: u64,
        stack_pages: u64,
    ) -> FsResult<(AddressSpace, SimTime)> {
        let (heap_file, t1) = fs.create_backing(
            net,
            now,
            host,
            sprite_fs::SpritePath::new(format!("/swap/{tag}.heap")),
        )?;
        let (stack_file, t2) = fs.create_backing(
            net,
            t1,
            host,
            sprite_fs::SpritePath::new(format!("/swap/{tag}.stack")),
        )?;
        let segment = |kind: SegmentKind, backing: FileId, pages: u64, home: PageHome| Segment {
            kind,
            backing,
            pages: (0..pages)
                .map(|_| PageState {
                    home,
                    dirty: false,
                    data: Vec::new(),
                })
                .collect(),
        };
        Ok((
            AddressSpace {
                code: segment(
                    SegmentKind::Code,
                    code_file,
                    code_pages,
                    PageHome::BackingFile,
                ),
                heap: segment(SegmentKind::Heap, heap_file, heap_pages, PageHome::Zero),
                stack: segment(SegmentKind::Stack, stack_file, stack_pages, PageHome::Zero),
                stats: VmStats::default(),
            },
            t2,
        ))
    }

    /// Copies this address space for a forked child: heap and stack get
    /// fresh backing files and deep-copied contents; code pages keep
    /// demand-paging from the same executable. Pages the parent holds only
    /// in a backing file are paged in first (fork must capture a snapshot).
    ///
    /// Sprite used copy-on-write where hardware allowed; an eager copy has
    /// identical semantics and a cost model matching the Sun-3 port, which
    /// also copied eagerly.
    pub fn fork_copy(
        &mut self,
        fs: &mut SpriteFs,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        tag: &str,
    ) -> FsResult<(AddressSpace, SimTime)> {
        let (heap_file, t1) = fs.create_backing(
            net,
            now,
            host,
            sprite_fs::SpritePath::new(format!("/swap/{tag}.heap")),
        )?;
        let (stack_file, t2) = fs.create_backing(
            net,
            t1,
            host,
            sprite_fs::SpritePath::new(format!("/swap/{tag}.stack")),
        )?;
        let mut t = t2;
        let mut copied_pages = 0u64;
        let mut copy_segment = |this: &mut AddressSpace,
                                kind: SegmentKind,
                                backing: FileId,
                                t_in: SimTime|
         -> FsResult<(Segment, SimTime)> {
            let mut t = t_in;
            let count = this.segment(kind).pages.len();
            let mut pages = Vec::with_capacity(count);
            for i in 0..count {
                let home = this.segment(kind).pages[i].home;
                match home {
                    PageHome::Zero => pages.push(PageState::zero()),
                    _ => {
                        t = this.fault_in(fs, net, t, host, kind, i as u64)?;
                        let data = this.segment(kind).pages[i].data.clone();
                        copied_pages += 1;
                        pages.push(PageState {
                            home: PageHome::Resident,
                            // The child's backing file is empty, so its
                            // copied pages are dirty with respect to it.
                            dirty: kind.writable(),
                            data,
                        });
                    }
                }
            }
            Ok((
                Segment {
                    kind,
                    backing,
                    pages,
                },
                t,
            ))
        };
        let (heap, t3) = copy_segment(self, SegmentKind::Heap, heap_file, t)?;
        let (stack, t4) = copy_segment(self, SegmentKind::Stack, stack_file, t3)?;
        t = t4;
        // Code: share the executable; copy residency state only.
        let code = Segment {
            kind: SegmentKind::Code,
            backing: self.code.backing,
            pages: self
                .code
                .pages
                .iter()
                .map(|p| PageState {
                    home: p.home,
                    dirty: false,
                    data: p.data.clone(),
                })
                .collect(),
        };
        t += net.cost().copy_time(copied_pages * PAGE_SIZE);
        Ok((
            AddressSpace {
                code,
                heap,
                stack,
                stats: VmStats::default(),
            },
            t,
        ))
    }

    /// Access a segment.
    pub fn segment(&self, kind: SegmentKind) -> &Segment {
        match kind {
            SegmentKind::Code => &self.code,
            SegmentKind::Heap => &self.heap,
            SegmentKind::Stack => &self.stack,
        }
    }

    fn segment_mut(&mut self, kind: SegmentKind) -> &mut Segment {
        match kind {
            SegmentKind::Code => &mut self.code,
            SegmentKind::Heap => &mut self.heap,
            SegmentKind::Stack => &mut self.stack,
        }
    }

    /// Fault/paging statistics.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Total pages across all segments.
    pub fn total_pages(&self) -> u64 {
        SegmentKind::ALL
            .iter()
            .map(|&k| self.segment(k).page_count())
            .sum()
    }

    /// Total resident pages.
    pub fn resident_pages(&self) -> u64 {
        SegmentKind::ALL
            .iter()
            .map(|&k| self.segment(k).resident_pages())
            .sum()
    }

    /// Total dirty pages.
    pub fn dirty_pages(&self) -> u64 {
        SegmentKind::ALL
            .iter()
            .map(|&k| self.segment(k).dirty_pages())
            .sum()
    }

    /// Resident bytes (what a monolithic transfer must move).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages() * PAGE_SIZE
    }

    /// Ensures the page containing `addr` is resident, paying fault costs.
    fn fault_in(
        &mut self,
        fs: &mut SpriteFs,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        segment: SegmentKind,
        page: u64,
    ) -> FsResult<SimTime> {
        let backing = self.segment(segment).backing;
        let seg = self.segment_mut(segment);
        assert!(
            (page as usize) < seg.pages.len(),
            "page {page} out of range for {segment} segment"
        );
        let home = seg.pages[page as usize].home;
        match home {
            PageHome::Resident => Ok(now),
            PageHome::Zero => {
                self.stats.faults += 1;
                let seg = self.segment_mut(segment);
                let p = &mut seg.pages[page as usize];
                p.data = vec![0; PAGE_SIZE as usize];
                p.home = PageHome::Resident;
                // Zero-fill costs a page of copying plus the fault trap.
                Ok(now + net.cost().context_switch + net.cost().page_copy)
            }
            PageHome::BackingFile => {
                self.stats.faults += 1;
                self.stats.pageins += 1;
                let t = now + net.cost().context_switch;
                let (data, t) = fs.page_in(net, t, host, backing, page)?;
                let seg = self.segment_mut(segment);
                let p = &mut seg.pages[page as usize];
                p.data = data;
                p.home = PageHome::Resident;
                Ok(t)
            }
            PageHome::RemoteSource(source) => {
                self.stats.faults += 1;
                let t = now + net.cost().context_switch;
                // Fetch the page from the previous host's memory — unless
                // the process has come back to the source, in which case
                // its pages are sitting right here.
                let t = if source == host {
                    t + net.cost().page_copy
                } else {
                    self.stats.remote_fetches += 1;
                    net.send(RpcOp::VmPageFetch, t, host, source, None)?.done
                };
                let seg = self.segment_mut(segment);
                let p = &mut seg.pages[page as usize];
                // Bytes were kept in `data` when the page was left behind.
                if p.data.is_empty() {
                    p.data = vec![0; PAGE_SIZE as usize];
                }
                p.home = PageHome::Resident;
                Ok(t)
            }
        }
    }

    /// Reads `len` bytes at `addr` from `host`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from demand paging.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the segment.
    pub fn read(
        &mut self,
        fs: &mut SpriteFs,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        addr: VirtAddr,
        len: u64,
    ) -> FsResult<(Vec<u8>, SimTime)> {
        let mut t = now;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = addr.offset;
        let end = addr.offset + len;
        while pos < end {
            let page = pos / PAGE_SIZE;
            t = self.fault_in(fs, net, t, host, addr.segment, page)?;
            let seg = self.segment(addr.segment);
            let p = &seg.pages[page as usize];
            let within = (pos % PAGE_SIZE) as usize;
            let upto = ((end - page * PAGE_SIZE).min(PAGE_SIZE)) as usize;
            out.extend_from_slice(&p.data[within..upto]);
            pos = page * PAGE_SIZE + upto as u64;
        }
        Ok((out, t))
    }

    /// Writes `bytes` at `addr` from `host`, marking pages dirty.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from demand paging.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the segment, or if the
    /// segment is read-only (code).
    pub fn write(
        &mut self,
        fs: &mut SpriteFs,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        addr: VirtAddr,
        bytes: &[u8],
    ) -> FsResult<SimTime> {
        assert!(
            addr.segment.writable(),
            "write to read-only {} segment",
            addr.segment
        );
        let mut t = now;
        let mut pos = addr.offset;
        let end = addr.offset + bytes.len() as u64;
        while pos < end {
            let page = pos / PAGE_SIZE;
            t = self.fault_in(fs, net, t, host, addr.segment, page)?;
            let seg = self.segment_mut(addr.segment);
            let p = &mut seg.pages[page as usize];
            let within = (pos % PAGE_SIZE) as usize;
            let upto = ((end - page * PAGE_SIZE).min(PAGE_SIZE)) as usize;
            let src_from = (pos - addr.offset) as usize;
            p.data[within..upto].copy_from_slice(&bytes[src_from..src_from + (upto - within)]);
            p.dirty = true;
            pos = page * PAGE_SIZE + upto as u64;
        }
        Ok(t)
    }

    /// Flushes all dirty pages to backing files (Sprite's migration VM
    /// strategy, also used by eviction). Pages stay resident but clean.
    pub fn flush_dirty(
        &mut self,
        fs: &mut SpriteFs,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
    ) -> FsResult<SimTime> {
        let mut t = now;
        for kind in SegmentKind::ALL {
            let backing = self.segment(kind).backing;
            let dirty: Vec<u64> = {
                let seg = self.segment(kind);
                seg.pages
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.dirty)
                    .map(|(i, _)| i as u64)
                    .collect()
            };
            for page in dirty {
                let data = self.segment(kind).pages[page as usize].data.clone();
                t = fs.page_out(net, t, host, backing, page, &data)?;
                self.segment_mut(kind).pages[page as usize].dirty = false;
                self.stats.pageouts += 1;
            }
        }
        Ok(t)
    }

    /// Discards residency for every page: clean pages revert to their
    /// backing file (or zero-fill if never written there), so future touches
    /// demand-page. Used after a flush-based migration: the *target* host
    /// starts with nothing resident.
    ///
    /// # Panics
    ///
    /// Panics if any page is still dirty — callers must flush first, or
    /// bytes would be lost. This is the invariant the migration protocol
    /// depends on.
    pub fn drop_residency(&mut self) {
        for kind in SegmentKind::ALL {
            for p in &mut self.segment_mut(kind).pages {
                assert!(!p.dirty, "drop_residency with dirty pages would lose data");
                if p.home == PageHome::Resident {
                    p.home = PageHome::BackingFile;
                    // Keep a copy in the backing file semantics: the bytes
                    // were flushed there already (clean), or the page was
                    // never written (code from executable).
                    p.data = Vec::new();
                }
            }
        }
    }

    /// Marks all resident pages as left behind on `source` (copy-on-
    /// reference migration): bytes stay in place, future touches fetch them
    /// across the network.
    pub fn leave_at_source(&mut self, source: HostId) {
        for kind in SegmentKind::ALL {
            for p in &mut self.segment_mut(kind).pages {
                if p.home == PageHome::Resident {
                    p.home = PageHome::RemoteSource(source);
                    p.dirty = false;
                }
            }
        }
    }

    /// Count of pages still owed to this space by a remote source.
    pub fn pages_at_remote_source(&self) -> u64 {
        SegmentKind::ALL
            .iter()
            .map(|&k| {
                self.segment(k)
                    .pages
                    .iter()
                    .filter(|p| matches!(p.home, PageHome::RemoteSource(_)))
                    .count() as u64
            })
            .sum()
    }

    /// The residual-dependency failure Zayas's design risks \[Zay87a\]: the
    /// host still holding this space's copy-on-reference pages crashes.
    /// Every page owed by `dead` is lost — "if the host with the process's
    /// memory image later fails at any time during the process's lifetime,
    /// the process might be unable to execute" (Ch. 2.3). We model the
    /// damage as those pages reverting to zero-fill; the returned count
    /// tells the caller how much state evaporated (a real kernel would have
    /// to kill the process). Sprite's flush strategy never has such pages,
    /// so the same event costs it nothing.
    pub fn source_host_failed(&mut self, dead: HostId) -> u64 {
        let mut lost = 0;
        for kind in SegmentKind::ALL {
            for p in &mut self.segment_mut(kind).pages {
                if p.home == PageHome::RemoteSource(dead) {
                    p.home = PageHome::Zero;
                    p.data = Vec::new();
                    p.dirty = false;
                    lost += 1;
                }
            }
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_fs::{FsConfig, SpritePath};
    use sprite_net::CostModel;

    fn setup() -> (Transport, SpriteFs) {
        let net = Transport::new(CostModel::sun3(), 3);
        let mut fs = SpriteFs::new(FsConfig::default(), 3);
        fs.add_server(HostId::new(0), SpritePath::new("/"));
        (net, fs)
    }

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    /// Creates a four-page "program" file plus an address space over it.
    fn space(fs: &mut SpriteFs, net: &mut Transport, tag: &str) -> (AddressSpace, SimTime) {
        let (prog, t) = fs
            .create(
                net,
                SimTime::ZERO,
                h(1),
                SpritePath::new(format!("/bin/{tag}")),
            )
            .unwrap();
        AddressSpace::create(fs, net, t, h(1), tag, prog, 4, 32, 8).unwrap()
    }

    #[test]
    fn zero_fill_then_read_back() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p1");
        let a = VirtAddr::new(SegmentKind::Heap, 5000);
        let (zeros, t1) = s.read(&mut fs, &mut net, t, h(1), a, 16).unwrap();
        assert_eq!(zeros, vec![0; 16]);
        let t2 = s.write(&mut fs, &mut net, t1, h(1), a, b"abcd").unwrap();
        let (data, _) = s.read(&mut fs, &mut net, t2, h(1), a, 4).unwrap();
        assert_eq!(data, b"abcd");
        assert_eq!(s.stats().faults, 1, "one zero-fill fault for page 1");
        assert_eq!(s.dirty_pages(), 1);
    }

    #[test]
    fn writes_spanning_pages_dirty_both() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p2");
        let a = VirtAddr::new(SegmentKind::Heap, PAGE_SIZE - 2);
        s.write(&mut fs, &mut net, t, h(1), a, b"wxyz").unwrap();
        assert_eq!(s.dirty_pages(), 2);
        let (mut net2, mut fs2) = setup();
        let (mut s2, t2) = space(&mut fs2, &mut net2, "p2");
        let (back, _) = s2.read(&mut fs2, &mut net2, t2, h(1), a, 4).unwrap();
        assert_eq!(back, vec![0; 4], "fresh space is zeroed");
        let (back2, _) = s.read(&mut fs, &mut net, t2, h(1), a, 4).unwrap();
        assert_eq!(back2, b"wxyz");
    }

    #[test]
    fn flush_and_drop_then_demand_page_round_trip() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p3");
        let a = VirtAddr::new(SegmentKind::Heap, 0);
        let payload: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 255) as u8).collect();
        let t1 = s.write(&mut fs, &mut net, t, h(1), a, &payload).unwrap();
        assert_eq!(s.dirty_pages(), 3);
        let t2 = s.flush_dirty(&mut fs, &mut net, t1, h(1)).unwrap();
        assert_eq!(s.dirty_pages(), 0);
        assert!(t2 > t1, "flushing three pages takes time");
        s.drop_residency();
        assert_eq!(s.resident_pages(), 0);
        // Demand paging (as if on a new host) restores identical bytes.
        let (back, t3) = s
            .read(&mut fs, &mut net, t2, h(2), a, payload.len() as u64)
            .unwrap();
        assert_eq!(back, payload);
        assert!(t3 > t2);
        assert_eq!(s.stats().pageins, 3);
    }

    #[test]
    #[should_panic(expected = "drop_residency with dirty pages")]
    fn drop_residency_refuses_dirty_pages() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p4");
        s.write(
            &mut fs,
            &mut net,
            t,
            h(1),
            VirtAddr::new(SegmentKind::Heap, 0),
            b"x",
        )
        .unwrap();
        s.drop_residency();
    }

    #[test]
    fn copy_on_reference_fetches_remotely() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p5");
        let a = VirtAddr::new(SegmentKind::Stack, 100);
        let t1 = s
            .write(&mut fs, &mut net, t, h(1), a, b"stackdata")
            .unwrap();
        s.leave_at_source(h(1));
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.pages_at_remote_source(), 1);
        let (back, t2) = s.read(&mut fs, &mut net, t1, h(2), a, 9).unwrap();
        assert_eq!(back, b"stackdata");
        assert!(t2.elapsed_since(t1) >= net.cost().small_rpc_round_trip());
        assert_eq!(s.stats().remote_fetches, 1);
        assert_eq!(s.pages_at_remote_source(), 0);
    }

    #[test]
    fn code_pages_demand_page_from_the_executable() {
        let (mut net, mut fs) = setup();
        // Write program text into the executable file, then run it.
        let (prog, t) = fs
            .create(&mut net, SimTime::ZERO, h(1), SpritePath::new("/bin/p6"))
            .unwrap();
        let (ps, t) = fs
            .open(
                &mut net,
                t,
                h(1),
                SpritePath::new("/bin/p6"),
                sprite_fs::OpenMode::Write,
            )
            .unwrap();
        let t = fs.write(&mut net, t, h(1), ps, &[0x90u8; 128]).unwrap();
        let t = fs.close(&mut net, t, h(1), ps).unwrap();
        let (mut s, t) =
            AddressSpace::create(&mut fs, &mut net, t, h(1), "p6", prog, 4, 8, 4).unwrap();
        let (text, _) = s
            .read(
                &mut fs,
                &mut net,
                t,
                h(1),
                VirtAddr::new(SegmentKind::Code, 0),
                128,
            )
            .unwrap();
        assert_eq!(text, vec![0x90; 128]);
        assert_eq!(s.segment(SegmentKind::Code).dirty_pages(), 0);
        assert_eq!(s.stats().pageins, 1);
    }

    #[test]
    fn fork_copy_duplicates_contents_independently() {
        let (mut net, mut fs) = setup();
        let (mut parent, t) = space(&mut fs, &mut net, "pf");
        let a = VirtAddr::new(SegmentKind::Heap, 64);
        let t = parent
            .write(&mut fs, &mut net, t, h(1), a, b"shared?")
            .unwrap();
        let (mut child, t) = parent
            .fork_copy(&mut fs, &mut net, t, h(1), "pf.child")
            .unwrap();
        let (c, t) = child.read(&mut fs, &mut net, t, h(1), a, 7).unwrap();
        assert_eq!(c, b"shared?");
        // Diverge: the child's writes must not leak into the parent.
        let t = child
            .write(&mut fs, &mut net, t, h(1), a, b"childs!")
            .unwrap();
        let (p, _) = parent.read(&mut fs, &mut net, t, h(1), a, 7).unwrap();
        assert_eq!(p, b"shared?");
        // And the child's pages flush to its own backing files.
        let t = child.flush_dirty(&mut fs, &mut net, t, h(1)).unwrap();
        child.drop_residency();
        let (c2, _) = child.read(&mut fs, &mut net, t, h(2), a, 7).unwrap();
        assert_eq!(c2, b"childs!");
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn writing_code_panics() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p7");
        let _ = s.write(
            &mut fs,
            &mut net,
            t,
            h(1),
            VirtAddr::new(SegmentKind::Code, 0),
            b"x",
        );
    }

    #[test]
    fn accounting_totals() {
        let (mut net, mut fs) = setup();
        let (mut s, t) = space(&mut fs, &mut net, "p8");
        assert_eq!(s.total_pages(), 4 + 32 + 8);
        assert_eq!(s.resident_pages(), 0);
        s.write(
            &mut fs,
            &mut net,
            t,
            h(1),
            VirtAddr::new(SegmentKind::Heap, 0),
            &vec![1; 2 * PAGE_SIZE as usize],
        )
        .unwrap();
        assert_eq!(s.resident_pages(), 2);
        assert_eq!(s.resident_bytes(), 2 * PAGE_SIZE);
    }
}
