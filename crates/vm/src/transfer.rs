//! Virtual-memory transfer strategies for process migration.
//!
//! "Virtual memory transfer is the aspect of migration that has been
//! discussed the most in the literature, perhaps because it is believed to
//! be the limiting factor in the speed of migration" \[Zay87b\]. The thesis
//! (Ch. 4.2.1) compares four designs, all implemented here against the same
//! simulated substrate so their freeze-time/total-work trade-offs can be
//! measured head-to-head (experiment E2):
//!
//! * **full copy** — Charlotte \[AF89\] / LOCUS \[PW85\]: freeze, ship the whole
//!   resident image, resume. Simple; freeze time grows linearly with size.
//! * **pre-copy** — V [The86, TLC85]: copy while the process keeps running,
//!   then re-copy what it dirtied, rounds shrinking until a short final
//!   freeze. Small freeze, but pages can cross the wire several times.
//! * **copy-on-reference** — Accent [Zay87a, Zay87b]: freeze only to move
//!   page tables; pages stay on the source and are fetched as referenced.
//!   Tiny freeze, but a *residual dependency*: if the source dies, the
//!   process dies with it.
//! * **Sprite's flush** — write dirty pages to the shared backing file and
//!   let the target demand-page from the file server. Freeze time scales
//!   with *dirty* pages only, and the only residual dependency is on the
//!   file server — which the process depends on anyway.

use sprite_fs::{FsResult, SpriteFs};
use sprite_net::{HostId, RpcOp, Transport, PAGE_SIZE};
use sprite_sim::{SimDuration, SimTime};

use crate::space::AddressSpace;

/// Which VM transfer design to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmStrategy {
    /// Monolithic whole-image copy at migration time.
    FullCopy,
    /// V-style iterative pre-copy while the process runs.
    PreCopy,
    /// Accent-style lazy copy-on-reference.
    CopyOnReference,
    /// Sprite's flush-to-backing-file + demand paging.
    SpriteFlush,
}

impl VmStrategy {
    /// All strategies, in the order the paper discusses them.
    pub const ALL: [VmStrategy; 4] = [
        VmStrategy::FullCopy,
        VmStrategy::PreCopy,
        VmStrategy::CopyOnReference,
        VmStrategy::SpriteFlush,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            VmStrategy::FullCopy => "full-copy",
            VmStrategy::PreCopy => "pre-copy",
            VmStrategy::CopyOnReference => "copy-on-ref",
            VmStrategy::SpriteFlush => "sprite-flush",
        }
    }
}

impl std::fmt::Display for VmStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload assumptions a transfer needs (how fast the program dirties
/// memory during pre-copy rounds).
#[derive(Debug, Clone, Copy)]
pub struct TransferParams {
    /// Pages the running process dirties per second (drives pre-copy
    /// convergence).
    pub dirty_rate_pages_per_sec: f64,
    /// Pre-copy stops iterating when a round would move at most this many
    /// pages, and freezes for a final round instead.
    pub precopy_threshold_pages: u64,
    /// Safety cap on pre-copy rounds (V used a small number in practice).
    pub precopy_max_rounds: u32,
}

impl Default for TransferParams {
    fn default() -> Self {
        TransferParams {
            // Well below the wire's ~120 pages/s so pre-copy rounds shrink;
            // V's measurements assumed the same balance.
            dirty_rate_pages_per_sec: 20.0,
            precopy_threshold_pages: 16,
            precopy_max_rounds: 8,
        }
    }
}

/// What a VM transfer cost.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// Strategy used.
    pub strategy: VmStrategy,
    /// Time the process was frozen (unable to run anywhere).
    pub freeze_time: SimDuration,
    /// Wall-clock span of the whole transfer including pre-copy rounds.
    pub total_time: SimDuration,
    /// Bytes that crossed the network during the transfer itself (excludes
    /// later demand paging).
    pub bytes_moved: u64,
    /// Pages moved, counting repeats (pre-copy can move a page twice).
    pub pages_moved: u64,
    /// True if the process still depends on the *source host* after
    /// migration (copy-on-reference leaves pages there).
    pub residual_source_dependency: bool,
    /// Completion time: when the process may run on the target.
    pub resumed_at: SimTime,
}

/// Transfers `space` from `from` to `to` using `strategy`.
///
/// On return the address space's pages are in the state the strategy leaves
/// them: resident at the target (full/pre-copy), owed by the source
/// (copy-on-reference) or owed by the backing file (Sprite flush). Later
/// demand paging is charged when the process touches memory.
///
/// # Errors
///
/// Propagates file-system errors from flushing and transport failures from
/// the bulk image transfer; a failed transfer leaves every page where it
/// was, so the caller can abort the migration cleanly.
#[allow(clippy::too_many_arguments)]
pub fn transfer(
    space: &mut AddressSpace,
    strategy: VmStrategy,
    fs: &mut SpriteFs,
    net: &mut Transport,
    now: SimTime,
    from: HostId,
    to: HostId,
    params: &TransferParams,
) -> FsResult<TransferReport> {
    match strategy {
        VmStrategy::FullCopy => full_copy(space, fs, net, now, from, to),
        VmStrategy::PreCopy => pre_copy(space, fs, net, now, from, to, params),
        VmStrategy::CopyOnReference => copy_on_reference(space, net, now, from, to),
        VmStrategy::SpriteFlush => sprite_flush(space, fs, net, now, from, to),
    }
}

fn page_table_bytes(space: &AddressSpace) -> u64 {
    // 8 bytes of mapping state per page, as in the Accent measurements.
    space.total_pages() * 8
}

fn full_copy(
    space: &mut AddressSpace,
    fs: &mut SpriteFs,
    net: &mut Transport,
    now: SimTime,
    from: HostId,
    to: HostId,
) -> FsResult<TransferReport> {
    let _ = fs;
    let pages = space.resident_pages();
    let bytes = pages * PAGE_SIZE + page_table_bytes(space);
    let copy_cpu = net.cost().copy_time(pages * PAGE_SIZE);
    let done = net
        .stream_bulk(RpcOp::VmBulkImage, now + copy_cpu, from, to, bytes)?
        .done;
    // Pages are now resident on the target; the in-memory representation
    // already holds the bytes, so only the location bookkeeping changes.
    let elapsed = done.elapsed_since(now);
    Ok(TransferReport {
        strategy: VmStrategy::FullCopy,
        freeze_time: elapsed,
        total_time: elapsed,
        bytes_moved: bytes,
        pages_moved: pages,
        residual_source_dependency: false,
        resumed_at: done,
    })
}

fn pre_copy(
    space: &mut AddressSpace,
    fs: &mut SpriteFs,
    net: &mut Transport,
    now: SimTime,
    from: HostId,
    to: HostId,
    params: &TransferParams,
) -> FsResult<TransferReport> {
    let _ = fs;
    let mut to_move = space.resident_pages();
    let mut pages_moved = 0u64;
    let mut bytes_moved = 0u64;
    let mut t = now;
    let mut rounds = 0u32;
    // Running rounds: the process executes on the source while pages cross.
    while to_move > params.precopy_threshold_pages && rounds < params.precopy_max_rounds {
        let bytes = to_move * PAGE_SIZE;
        let copy_cpu = net.cost().copy_time(bytes);
        let done = net
            .stream_bulk(RpcOp::VmBulkImage, t + copy_cpu, from, to, bytes)?
            .done;
        let round_time = done.elapsed_since(t);
        pages_moved += to_move;
        bytes_moved += bytes;
        // While that round ran, the process dirtied more pages (capped at
        // the resident set: re-dirtying the same page doesn't grow the set).
        let dirtied = (params.dirty_rate_pages_per_sec * round_time.as_secs_f64()).ceil() as u64;
        to_move = dirtied.min(space.resident_pages());
        t = done;
        rounds += 1;
    }
    // Final frozen round.
    let bytes = to_move * PAGE_SIZE + page_table_bytes(space);
    let copy_cpu = net.cost().copy_time(to_move * PAGE_SIZE);
    let done = net
        .stream_bulk(RpcOp::VmBulkImage, t + copy_cpu, from, to, bytes)?
        .done;
    pages_moved += to_move;
    bytes_moved += bytes;
    let freeze = done.elapsed_since(t);
    Ok(TransferReport {
        strategy: VmStrategy::PreCopy,
        freeze_time: freeze,
        total_time: done.elapsed_since(now),
        bytes_moved,
        pages_moved,
        residual_source_dependency: false,
        resumed_at: done,
    })
}

fn copy_on_reference(
    space: &mut AddressSpace,
    net: &mut Transport,
    now: SimTime,
    from: HostId,
    to: HostId,
) -> FsResult<TransferReport> {
    // Freeze: ship page tables only; every resident page stays behind.
    // A failed transfer returns before any bookkeeping moves, so the
    // process is still fully resident at the source.
    let bytes = page_table_bytes(space);
    let done = net
        .stream_bulk(RpcOp::VmBulkImage, now, from, to, bytes)?
        .done;
    space.leave_at_source(from);
    let freeze = done.elapsed_since(now);
    Ok(TransferReport {
        strategy: VmStrategy::CopyOnReference,
        freeze_time: freeze,
        total_time: freeze,
        bytes_moved: bytes,
        pages_moved: 0,
        residual_source_dependency: true,
        resumed_at: done,
    })
}

fn sprite_flush(
    space: &mut AddressSpace,
    fs: &mut SpriteFs,
    net: &mut Transport,
    now: SimTime,
    from: HostId,
    _to: HostId,
) -> FsResult<TransferReport> {
    let dirty = space.dirty_pages();
    let bytes = dirty * PAGE_SIZE + page_table_bytes(space);
    let t = space.flush_dirty(fs, net, now, from)?;
    space.drop_residency();
    let freeze = t.elapsed_since(now);
    Ok(TransferReport {
        strategy: VmStrategy::SpriteFlush,
        freeze_time: freeze,
        total_time: freeze,
        bytes_moved: bytes,
        pages_moved: dirty,
        residual_source_dependency: false,
        resumed_at: t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{SegmentKind, VirtAddr};
    use sprite_fs::{FsConfig, SpritePath};
    use sprite_net::CostModel;

    fn setup() -> (Transport, SpriteFs) {
        let net = Transport::new(CostModel::sun3(), 3);
        let mut fs = SpriteFs::new(FsConfig::default(), 3);
        fs.add_server(HostId::new(0), SpritePath::new("/"));
        (net, fs)
    }

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    /// An address space with `touched` heap pages resident and dirty.
    fn dirty_space(
        fs: &mut SpriteFs,
        net: &mut Transport,
        tag: &str,
        touched: u64,
    ) -> (AddressSpace, SimTime) {
        let (prog, t0) = fs
            .create(
                net,
                SimTime::ZERO,
                h(1),
                SpritePath::new(format!("/bin/{tag}")),
            )
            .unwrap();
        let (mut s, t) =
            AddressSpace::create(fs, net, t0, h(1), tag, prog, 4, touched.max(1), 4).unwrap();
        let data = vec![0x5a; (touched * PAGE_SIZE) as usize];
        let t = s
            .write(fs, net, t, h(1), VirtAddr::new(SegmentKind::Heap, 0), &data)
            .unwrap();
        (s, t)
    }

    #[test]
    fn sprite_flush_over_striped_backing_spreads_paging() {
        // A two-member group exports "/": the flush's page_out traffic
        // stripes across both servers instead of saturating one.
        let mut net = Transport::new(CostModel::sun3(), 4);
        let mut fs = SpriteFs::new(FsConfig::default(), 4);
        fs.add_server(h(0), SpritePath::new("/"));
        fs.add_server(h(3), SpritePath::new("/"));
        let (mut s, t) = dirty_space(&mut fs, &mut net, "stripe", 64);
        let r = transfer(
            &mut s,
            VmStrategy::SpriteFlush,
            &mut fs,
            &mut net,
            t,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        assert!(!r.residual_source_dependency);
        assert!(r.pages_moved > 0);
        assert!(
            fs.server(h(0)).unwrap().cpu.busy_time() > SimDuration::ZERO,
            "member 0 served part of the paging load"
        );
        assert!(
            fs.server(h(3)).unwrap().cpu.busy_time() > SimDuration::ZERO,
            "member 3 served part of the paging load"
        );
    }

    #[test]
    fn full_copy_freeze_scales_with_size() {
        let (mut net, mut fs) = setup();
        let (mut small, t1) = dirty_space(&mut fs, &mut net, "s", 16);
        let r1 = transfer(
            &mut small,
            VmStrategy::FullCopy,
            &mut fs,
            &mut net,
            t1,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        let (mut net2, mut fs2) = setup();
        let (mut big, t2) = dirty_space(&mut fs2, &mut net2, "b", 256);
        let r2 = transfer(
            &mut big,
            VmStrategy::FullCopy,
            &mut fs2,
            &mut net2,
            t2,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        let ratio = r2.freeze_time.as_secs_f64() / r1.freeze_time.as_secs_f64();
        assert!(ratio > 8.0, "expected near-linear scaling, got {ratio}");
        assert_eq!(r1.freeze_time, r1.total_time);
    }

    #[test]
    fn precopy_freezes_less_but_moves_more() {
        let (mut net, mut fs) = setup();
        let (mut a, t) = dirty_space(&mut fs, &mut net, "a", 512);
        let full = transfer(
            &mut a.clone(),
            VmStrategy::FullCopy,
            &mut fs,
            &mut net,
            t,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        let (mut net2, mut fs2) = setup();
        let pre = transfer(
            &mut a,
            VmStrategy::PreCopy,
            &mut fs2,
            &mut net2,
            t,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        assert!(
            pre.freeze_time < full.freeze_time / 4,
            "pre-copy freeze {} should be far below full-copy {}",
            pre.freeze_time,
            full.freeze_time
        );
        assert!(pre.pages_moved >= 512, "some pages cross more than once");
        assert!(pre.total_time >= full.total_time);
    }

    #[test]
    fn copy_on_reference_has_tiny_freeze_and_residual_dependency() {
        let (mut net, mut fs) = setup();
        let (mut a, t) = dirty_space(&mut fs, &mut net, "c", 512);
        let r = transfer(
            &mut a,
            VmStrategy::CopyOnReference,
            &mut fs,
            &mut net,
            t,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        assert!(r.freeze_time < SimDuration::from_millis(50));
        assert!(r.residual_source_dependency);
        assert_eq!(a.pages_at_remote_source(), 512);
        // Touching memory on the target fetches from the source.
        let (data, _) = a
            .read(
                &mut fs,
                &mut net,
                r.resumed_at,
                h(2),
                VirtAddr::new(SegmentKind::Heap, 0),
                8,
            )
            .unwrap();
        assert_eq!(data, vec![0x5a; 8]);
        assert_eq!(a.stats().remote_fetches, 1);
    }

    #[test]
    fn sprite_flush_scales_with_dirty_pages_only() {
        let (mut net, mut fs) = setup();
        // 256 resident pages but only a few dirty: read-mostly process.
        let (mut a, t) = dirty_space(&mut fs, &mut net, "f", 256);
        let t = a.flush_dirty(&mut fs, &mut net, t, h(1)).unwrap(); // clean all
                                                                    // Re-dirty just 4 pages.
        let t = a
            .write(
                &mut fs,
                &mut net,
                t,
                h(1),
                VirtAddr::new(SegmentKind::Heap, 0),
                &vec![1u8; 4 * PAGE_SIZE as usize],
            )
            .unwrap();
        let r = transfer(
            &mut a,
            VmStrategy::SpriteFlush,
            &mut fs,
            &mut net,
            t,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        assert_eq!(r.pages_moved, 4);
        assert!(!r.residual_source_dependency);
        assert_eq!(a.resident_pages(), 0);
        // The full 256-page image demand-pages back byte-identically.
        let (data, _) = a
            .read(
                &mut fs,
                &mut net,
                r.resumed_at,
                h(2),
                VirtAddr::new(SegmentKind::Heap, 0),
                4 * PAGE_SIZE,
            )
            .unwrap();
        assert_eq!(data, vec![1u8; 4 * PAGE_SIZE as usize]);
    }

    #[test]
    fn sprite_flush_preserves_full_image_across_hosts() {
        let (mut net, mut fs) = setup();
        let (prog, t0) = fs
            .create(&mut net, SimTime::ZERO, h(1), SpritePath::new("/bin/img"))
            .unwrap();
        let (mut a, t) =
            AddressSpace::create(&mut fs, &mut net, t0, h(1), "img", prog, 2, 64, 8).unwrap();
        let pattern: Vec<u8> = (0..64 * PAGE_SIZE).map(|i| (i * 7 % 253) as u8).collect();
        let t = a
            .write(
                &mut fs,
                &mut net,
                t,
                h(1),
                VirtAddr::new(SegmentKind::Heap, 0),
                &pattern,
            )
            .unwrap();
        let r = transfer(
            &mut a,
            VmStrategy::SpriteFlush,
            &mut fs,
            &mut net,
            t,
            h(1),
            h(2),
            &TransferParams::default(),
        )
        .unwrap();
        let (back, _) = a
            .read(
                &mut fs,
                &mut net,
                r.resumed_at,
                h(2),
                VirtAddr::new(SegmentKind::Heap, 0),
                pattern.len() as u64,
            )
            .unwrap();
        assert_eq!(back, pattern, "memory image survives migration bit for bit");
    }

    #[test]
    fn strategy_labels_are_distinct() {
        let labels: sprite_sim::DetHashSet<_> = VmStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
