//! Parallel experiment runner.
//!
//! Experiments decompose into independent **units** (whole experiments for
//! the cheap ones; per-cell drives for E10; per-replication runs for E11).
//! Units carry a relative cost hint; the runner executes them across
//! `jobs` worker threads (longest-cost-first so the big E11 replications
//! start immediately) and then **merges** each experiment's partial results
//! back in canonical order.
//!
//! # Determinism contract
//!
//! Rendered output is byte-identical for every `--jobs` value because:
//!
//! 1. every unit is self-contained — it builds its own network, cluster and
//!    RNG from a seed fixed before any thread starts (E11's replication
//!    RNGs are forked *serially* from the master stream);
//! 2. threads only decide *when* a unit runs, never *what* it computes;
//! 3. merging walks experiments and their parts in canonical (declaration)
//!    order, so the assembled tables do not depend on completion order;
//! 4. wall-clock timings go to stderr and the JSON sidecar, never stdout.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::experiments::{e10, e11};

/// Hash-map probes flushed from worker threads after each unit. The probe
/// counter itself is thread-local (see `sprite_sim::detmap`), so the runner
/// drains it at unit boundaries — the only points where it knows which
/// thread did the hashing.
static HASH_PROBES: AtomicU64 = AtomicU64::new(0);

/// Total hash-map probes observed so far: everything flushed by runner
/// units plus whatever the calling thread has accumulated since its last
/// flush (e.g. a `--macro` run outside the suite).
pub fn hash_probes_total() -> u64 {
    HASH_PROBES.load(Ordering::Relaxed) + sprite_sim::hash_probes()
}

/// A unit's result, merged back into its experiment's table.
pub enum Partial {
    /// A fully rendered table (single-unit experiments).
    Rendered(String),
    /// One E10 matrix cell.
    E10Row(e10::ArchRow),
    /// One E11 replication.
    E11Report(e11::MonthReport),
}

/// A unit's boxed work closure: self-contained, thread-safe by construction.
pub type UnitFn = Box<dyn FnOnce() -> Partial + Send>;

/// One independently executable piece of an experiment.
pub struct Unit {
    /// Relative cost hint (any monotone scale) for longest-first dispatch.
    pub cost: u64,
    /// The work: self-contained, thread-safe by construction.
    pub run: UnitFn,
}

/// An experiment: its units plus the merge that renders the final table.
pub struct Experiment {
    /// Short identifier (`e01` … `a07`).
    pub id: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Independent work items, in canonical part order.
    pub units: Vec<Unit>,
    /// Assembles the partials (given in part order) into the rendered table.
    pub merge: fn(Vec<Partial>) -> String,
}

/// A finished experiment: rendered table plus cost accounting.
pub struct ExperimentResult {
    /// Short identifier.
    pub id: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// The rendered table (identical for every `jobs` value).
    pub rendered: String,
    /// Number of units the experiment split into.
    pub units: usize,
    /// CPU time spent across the experiment's units (sum, not wall).
    pub cpu: Duration,
}

/// Executes `suite` with `jobs` workers and returns results in suite order.
pub fn run_suite(suite: Vec<Experiment>, jobs: usize) -> Vec<ExperimentResult> {
    // Flatten to a global unit list, remembering (experiment, part) slots.
    type Meta = (
        &'static str,
        &'static str,
        fn(Vec<Partial>) -> String,
        usize,
    );
    let mut meta: Vec<Meta> = Vec::new();
    let mut slots: Vec<(usize, u64, UnitFn)> = Vec::new();
    for exp in suite {
        let ei = meta.len();
        meta.push((exp.id, exp.desc, exp.merge, exp.units.len()));
        for unit in exp.units {
            slots.push((ei, unit.cost, unit.run));
        }
    }
    let n = slots.len();
    let mut outcomes: Vec<Option<(Partial, Duration)>> = Vec::with_capacity(n);
    outcomes.resize_with(n, || None);

    if jobs <= 1 {
        // Pure serial path: canonical order, no threads at all.
        for (i, (_, _, run)) in slots.into_iter().enumerate() {
            let started = Instant::now();
            let partial = run();
            HASH_PROBES.fetch_add(sprite_sim::take_hash_probes(), Ordering::Relaxed);
            outcomes[i] = Some((partial, started.elapsed()));
        }
    } else {
        // Longest-cost-first order over a shared atomic cursor.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(slots[i].1), i));
        let work: Vec<Mutex<Option<UnitFn>>> = slots
            .iter_mut()
            .map(|(_, _, run)| {
                // Move each closure behind a mutex so any worker can take it.
                let placeholder: UnitFn = Box::new(|| Partial::Rendered(String::new()));
                Mutex::new(Some(std::mem::replace(run, placeholder)))
            })
            .collect();
        let results: Vec<Mutex<Option<(Partial, Duration)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = jobs.min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    let gi = order[k];
                    let run = work[gi].lock().unwrap().take().expect("unit taken twice");
                    let started = Instant::now();
                    let partial = run();
                    HASH_PROBES.fetch_add(sprite_sim::take_hash_probes(), Ordering::Relaxed);
                    *results[gi].lock().unwrap() = Some((partial, started.elapsed()));
                });
            }
        });
        for (i, cell) in results.into_iter().enumerate() {
            outcomes[i] = cell.into_inner().unwrap();
        }
    }

    // Reassemble in canonical order.
    let mut by_exp: Vec<Vec<(Partial, Duration)>> = meta.iter().map(|_| Vec::new()).collect();
    let mut exp_of: Vec<usize> = Vec::with_capacity(n);
    // slots was consumed on the serial path; recover experiment indices from
    // the flattening order, which interleaves nothing: units of experiment i
    // all precede units of experiment i+1.
    {
        let mut i = 0;
        for (ei, m) in meta.iter().enumerate() {
            for _ in 0..m.3 {
                exp_of.push(ei);
                i += 1;
            }
        }
        debug_assert_eq!(i, n);
    }
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let (partial, took) = outcome.expect("every unit ran");
        by_exp[exp_of[i]].push((partial, took));
    }
    meta.into_iter()
        .zip(by_exp)
        .map(|((id, desc, merge, units), parts)| {
            let cpu = parts.iter().map(|(_, d)| *d).sum();
            let partials: Vec<Partial> = parts.into_iter().map(|(p, _)| p).collect();
            ExperimentResult {
                id,
                desc,
                rendered: merge(partials),
                units,
                cpu,
            }
        })
        .collect()
}

/// Merge for single-unit experiments: unwrap the rendered table.
pub fn merge_single(mut partials: Vec<Partial>) -> String {
    match partials.pop() {
        Some(Partial::Rendered(s)) if partials.is_empty() => s,
        _ => unreachable!("single-unit experiment produced unexpected partials"),
    }
}

/// Merge for E10: cells arrive in canonical (size, architecture) order.
pub fn merge_e10(partials: Vec<Partial>) -> String {
    let rows: Vec<e10::ArchRow> = partials
        .into_iter()
        .map(|p| match p {
            Partial::E10Row(row) => row,
            _ => unreachable!("e10 unit produced a non-row partial"),
        })
        .collect();
    e10::render(&rows)
}

/// Merge for E11: replication reports combine into one month.
pub fn merge_e11(partials: Vec<Partial>) -> String {
    let reports: Vec<e11::MonthReport> = partials
        .into_iter()
        .map(|p| match p {
            Partial::E11Report(r) => r,
            _ => unreachable!("e11 unit produced a non-report partial"),
        })
        .collect();
    e11::render(&e11::merge(&reports), reports.len())
}
