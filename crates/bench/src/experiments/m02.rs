//! M2 — partitioned-parallel determinism macrobench.
//!
//! The conservative-parallel engine's contract is audacious enough to need
//! its own macrobench: shard a **5 000-host** cluster (100× the thesis's
//! 50 workstations) across worker threads, run a simulated month of
//! idle-host harvesting (~1.3 million process lifetimes), and produce a
//! digest stream **byte-identical** to the serial run's — same checkpoints,
//! same event counts, same digests, for any `--shards` / worker count.
//!
//! Each invocation drives the workload twice: once serial (1 shard, 1
//! worker) and once sharded (the `--shards` request), then compares the two
//! audit streams checkpoint by checkpoint. The stdout block prints only
//! partition-invariant facts — job totals, window/event/message counts, the
//! folded stream digest — so `scripts/bench_check.sh` can byte-compare it
//! across `--shards` values exactly like the golden tables. Partition-
//! *dependent* facts (per-shard effort, cross-shard message counts,
//! barrier-stall time, wall seconds) go to stderr and the JSON sidecar.
//!
//! Like m01, this is not part of the default suite: it prints only when
//! `--m02[=HOSTS:DAYS]` is requested, so the golden stdout of a plain run
//! is untouched.

use std::time::Instant;

use sprite_kernel::build_cluster_cells;
use sprite_net::{CostModel, ShardLink};
use sprite_sim::{
    Checkpoint, ShardCounters, ShardedEngine, SimDuration, SimTime, StateDigest, WorkerCounters,
};

use crate::support::TableWriter;

/// Hosts in the full m02 cluster.
pub const FULL_HOSTS: u32 = 5_000;
/// Simulated days in the full run.
pub const FULL_DAYS: u64 = 30;
/// Master seed.
pub const FULL_SEED: u64 = 53;
/// Checkpoint cadence in barrier windows (one window covers one simulated
/// minute): daily at full scale, hourly for short runs — a pure function
/// of the parameters, so every partitioning checkpoints identically.
pub fn audit_every_windows(params: M02Params) -> u64 {
    (params.days * 1_440 / FULL_DAYS).clamp(60, 1_440)
}

/// Workload size knobs (the seed stays fixed so "same params" always means
/// "same history").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct M02Params {
    /// Cluster size.
    pub hosts: u32,
    /// Simulated days.
    pub days: u64,
}

/// The full-scale parameters.
pub const FULL: M02Params = M02Params {
    hosts: FULL_HOSTS,
    days: FULL_DAYS,
};

/// Cluster-wide job accounting, summed over every host's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTotals {
    /// Jobs spawned.
    pub spawned: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs placed on a remote host at spawn.
    pub migrated: u64,
    /// Foreign jobs evicted home.
    pub evicted: u64,
    /// Load probes sent.
    pub probes: u64,
}

/// One drive of the workload at a given partitioning.
#[derive(Debug, Clone)]
pub struct M02Run {
    /// Logical shards.
    pub shards: usize,
    /// Effective worker threads (bounded by the machine).
    pub workers: usize,
    /// Barrier windows executed.
    pub windows: u64,
    /// Events executed (partition-invariant).
    pub events: u64,
    /// Messages delivered (partition-invariant).
    pub messages: u64,
    /// Messages that crossed shards (partition-*dependent*).
    pub cross_messages: u64,
    /// The digest stream.
    pub audit: Vec<Checkpoint>,
    /// Per-shard effort.
    pub shard_counters: Vec<ShardCounters>,
    /// Per-worker barrier stalls.
    pub worker_stalls: Vec<WorkerCounters>,
    /// Cluster-wide job accounting.
    pub jobs: JobTotals,
    /// Wall-clock seconds for this drive.
    pub wall_seconds: f64,
}

/// Serial-vs-sharded comparison, the unit the gate checks.
#[derive(Debug, Clone)]
pub struct M02Report {
    /// Workload size.
    pub params: M02Params,
    /// The 1-shard / 1-worker reference drive.
    pub serial: M02Run,
    /// The requested-partitioning drive.
    pub sharded: M02Run,
    /// Whether the two digest streams are identical (checkpoint counts,
    /// event counts, times and digests all equal).
    pub digest_match: bool,
}

/// Drives the workload once. `shards` is the logical partition count;
/// `workers` is the requested thread count (0 = auto), which the engine
/// clamps to `[1, shards]`.
pub fn drive(params: M02Params, shards: usize, workers: usize) -> M02Run {
    let link = ShardLink::new(CostModel::sun3(), SimDuration::from_secs(60));
    let cells = build_cluster_cells(params.hosts, FULL_SEED);
    let mut eng = ShardedEngine::new(cells, shards, link.lookahead());
    eng.set_workers(workers);
    eng.audit_every_windows(audit_every_windows(params));
    let start = Instant::now();
    eng.set_stall_clock(std::sync::Arc::new(move || {
        start.elapsed().as_nanos() as u64
    }));
    for id in 0..params.hosts {
        eng.seed_timer(id, SimTime::from_micros(60_000_000), 0);
    }
    let wall = Instant::now();
    eng.run(SimTime::from_micros(params.days * 24 * 60 * 60_000_000));
    let wall_seconds = wall.elapsed().as_secs_f64();

    let mut jobs = JobTotals::default();
    for cell in eng.cells() {
        let s = cell.stats();
        jobs.spawned += s.spawned;
        jobs.completed += s.completed;
        jobs.migrated += s.migrated_out;
        jobs.evicted += s.evicted;
        jobs.probes += s.probes_sent;
    }
    M02Run {
        shards: eng.nshards(),
        workers: eng.worker_stalls().len().max(1),
        windows: eng.windows(),
        events: eng.events_executed(),
        messages: eng.messages_delivered(),
        cross_messages: eng.cross_shard_messages(),
        shard_counters: eng.shard_counters(),
        worker_stalls: eng.worker_stalls().to_vec(),
        jobs,
        wall_seconds,
        audit: eng.take_audit_stream(),
    }
}

/// Runs the serial reference and the sharded drive and compares streams.
pub fn run(params: M02Params, shards: usize) -> M02Report {
    let serial = drive(params, 1, 1);
    let sharded = drive(params, shards, 0);
    let digest_match = serial.audit == sharded.audit;
    M02Report {
        params,
        serial,
        sharded,
        digest_match,
    }
}

/// Folds a digest stream into one u64 so the table can print "the whole
/// stream" in a line.
pub fn stream_digest(audit: &[Checkpoint]) -> u64 {
    let mut d = StateDigest::new();
    d.write_usize(audit.len());
    for c in audit {
        d.write_u64(c.events);
        d.write_u64(c.at.as_micros());
        d.write_u64(c.digest);
    }
    d.finish()
}

/// Renders the stdout block. Everything here is partition-invariant, so
/// the block must be byte-identical for every `--shards` value — that is
/// what `scripts/bench_check.sh` enforces.
pub fn render(r: &M02Report) -> String {
    let mut t = TableWriter::new(
        &format!(
            "M2: partitioned-parallel determinism macrobench ({} hosts x {} simulated days, seed {})",
            r.params.hosts, r.params.days, FULL_SEED
        ),
        &["metric", "value"],
    );
    let jobs = &r.serial.jobs;
    t.row(&["jobs: spawned".into(), jobs.spawned.to_string()]);
    t.row(&["jobs: completed".into(), jobs.completed.to_string()]);
    t.row(&[
        "jobs: migrated at spawn".into(),
        format!(
            "{} ({:.0}%)",
            jobs.migrated,
            100.0 * jobs.migrated as f64 / jobs.spawned.max(1) as f64
        ),
    ]);
    t.row(&["jobs: evicted home".into(), jobs.evicted.to_string()]);
    t.row(&["load probes sent".into(), jobs.probes.to_string()]);
    t.row(&["barrier windows".into(), r.serial.windows.to_string()]);
    t.row(&["events executed".into(), r.serial.events.to_string()]);
    t.row(&["messages delivered".into(), r.serial.messages.to_string()]);
    t.row(&[
        "digest checkpoints".into(),
        r.serial.audit.len().to_string(),
    ]);
    t.row(&[
        "digest stream (folded)".into(),
        format!("{:016x}", stream_digest(&r.serial.audit)),
    ]);
    t.row(&[
        "sharded stream identical".into(),
        if r.digest_match {
            "yes"
        } else {
            "NO — DIVERGED"
        }
        .to_string(),
    ]);
    t.note("the sharded drive re-runs the same workload partitioned across");
    t.note("worker threads; its digest stream must match the serial stream");
    t.note("byte for byte (shard/worker counts and wall time are on stderr)");
    t.render()
}

/// Total barrier-stall nanoseconds across a drive's workers.
pub fn total_stall_ns(run: &M02Run) -> u64 {
    run.worker_stalls.iter().map(|w| w.stall_ns).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_m02_streams_match_and_do_work() {
        let params = M02Params { hosts: 60, days: 1 };
        let report = run(params, 4);
        assert!(report.digest_match, "sharded stream diverged");
        assert!(!report.serial.audit.is_empty());
        assert!(report.serial.jobs.spawned > 0);
        assert!(report.serial.jobs.migrated > 0);
        assert_eq!(report.serial.events, report.sharded.events);
        assert_eq!(report.serial.messages, report.sharded.messages);
        assert_eq!(report.sharded.shards, 4);
        // Rendering is partition-invariant by construction: it reads only
        // the serial drive and the match flag.
        let text = render(&report);
        assert!(text.contains("sharded stream identical"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn stream_digest_is_sensitive() {
        let a = run(M02Params { hosts: 20, days: 1 }, 2);
        let b = run(M02Params { hosts: 21, days: 1 }, 2);
        assert_ne!(
            stream_digest(&a.serial.audit),
            stream_digest(&b.serial.audit)
        );
    }
}
