//! E4 — Kernel-call costs: local vs. forwarded home.
//!
//! For a process running at home every call is local. After migration, the
//! Appendix-A dispositions apply: most calls stay local because their state
//! travelled with the process; a few (time, process families, migration
//! itself) are forwarded to the home kernel and pay an RPC round trip —
//! roughly 25x a local call on Sun-3-class hardware. This is the per-call
//! price of transparency, and why forwarding *everything* (Remote-UNIX
//! style) is untenable (Ch. 4.3).

use sprite_fs::SpritePath;
use sprite_kernel::{Disposition, KernelCall};
use sprite_sim::SimDuration;

use crate::support::{h, standard_cluster, standard_migrator, TableWriter};

/// One call's measurement.
#[derive(Debug, Clone, Copy)]
pub struct CallRow {
    /// The kernel call.
    pub call: KernelCall,
    /// Cost when the process is at home.
    pub at_home: SimDuration,
    /// Cost when the process is foreign.
    pub foreign: SimDuration,
}

impl CallRow {
    /// Foreign/home cost ratio.
    pub fn ratio(&self) -> f64 {
        self.foreign.as_secs_f64() / self.at_home.as_secs_f64().max(1e-9)
    }
}

/// Measures every call in both placements.
pub fn run() -> Vec<CallRow> {
    let (mut cluster, t) = standard_cluster(4);
    let mut migrator = standard_migrator(4);
    let (pid, t) = cluster
        .spawn(t, h(1), &SpritePath::new("/bin/sim"), 8, 4)
        .expect("spawn");
    let mut at_home = Vec::new();
    let mut clock = t;
    for call in KernelCall::ALL {
        let done = cluster.kernel_call(clock, pid, call).expect("call");
        at_home.push(done.elapsed_since(clock));
        clock = done;
    }
    let report = migrator
        .migrate(&mut cluster, clock, pid, h(2))
        .expect("migrate");
    let mut clock = report.resumed_at;
    let mut rows = Vec::new();
    for (i, call) in KernelCall::ALL.into_iter().enumerate() {
        let done = cluster.kernel_call(clock, pid, call).expect("call");
        rows.push(CallRow {
            call,
            at_home: at_home[i],
            foreign: done.elapsed_since(clock),
        });
        clock = done;
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run();
    let mut t = TableWriter::new(
        "E4: kernel-call cost, local vs forwarded home (us)",
        &["call", "disposition", "home(us)", "foreign(us)", "ratio"],
    );
    for r in &rows {
        let disp = match r.call.disposition() {
            Disposition::Local => "local",
            Disposition::ForwardHome => "forward-home",
            Disposition::FileSystem => "file-system",
        };
        t.row(&[
            r.call.to_string(),
            disp.to_string(),
            r.at_home.as_micros().to_string(),
            r.foreign.as_micros().to_string(),
            format!("{:.1}", r.ratio()),
        ]);
    }
    t.note("paper shape: transferred-state calls cost the same anywhere;");
    t.note("forwarded calls pay a kernel-to-kernel RPC (~2.6ms on Sun-3s, ~26x a local call)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_calls_cost_the_same_everywhere() {
        for r in run() {
            if r.call.disposition() == Disposition::Local {
                assert_eq!(r.at_home, r.foreign, "{} should not care", r.call);
            }
        }
    }

    #[test]
    fn forwarded_calls_pay_an_rpc_when_foreign() {
        let rows = run();
        for r in &rows {
            if r.call.disposition() == Disposition::ForwardHome {
                assert!(
                    r.ratio() > 10.0,
                    "{} ratio {:.1} too small for a forwarded call",
                    r.call,
                    r.ratio()
                );
                assert!(r.foreign >= SimDuration::from_micros(2_600));
            }
        }
    }

    #[test]
    fn all_calls_covered() {
        assert_eq!(run().len(), KernelCall::ALL.len());
    }
}
