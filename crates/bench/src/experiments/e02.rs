//! E2 — Virtual-memory transfer strategies (freeze time vs. total work).
//!
//! Reproduces the thesis's Ch. 4.2.1 comparison across dirty-image sizes:
//! Charlotte/LOCUS-style full copy (freeze grows linearly with size),
//! V-style pre-copy (short freeze, extra total bytes), Accent-style
//! copy-on-reference (tiny freeze, residual source dependency and per-touch
//! penalties), and Sprite's flush-to-backing-file (freeze scales with
//! *dirty* data only; the only residual dependency is the file server).

use sprite_fs::SpritePath;
use sprite_net::PAGE_SIZE;
use sprite_sim::SimDuration;
use sprite_vm::{SegmentKind, VirtAddr, VmStrategy};

use crate::support::{
    dirty_heap, h, ms, pages_for_mb, secs, standard_cluster, standard_migrator, TableWriter,
};

/// One (size, strategy) measurement.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// Resident image size in megabytes (a quarter of it dirty).
    pub dirty_mb: f64,
    /// Strategy used.
    pub strategy: VmStrategy,
    /// Freeze time.
    pub freeze: SimDuration,
    /// Total migration wall time.
    pub total: SimDuration,
    /// Bytes moved during migration itself.
    pub bytes_moved: u64,
    /// Cost of touching 25% of the image after migration (demand paging /
    /// remote fetches — zero when pages moved eagerly).
    pub first_touch: SimDuration,
    /// Residual dependency on the *source host*.
    pub residual: bool,
}

/// Fraction of the resident image that is dirty at migration time. A
/// long-running process has flushed most of its pages to the backing file
/// already (Sprite's ordinary paging does this continuously); re-dirtying a
/// quarter is the regime the thesis's flush argument assumes.
pub const DIRTY_FRACTION: f64 = 0.25;

/// Runs the sweep. `sizes_mb` is the *resident image* size; `DIRTY_FRACTION`
/// of it is dirty.
pub fn run(sizes_mb: &[f64]) -> Vec<StrategyRow> {
    let mut rows = Vec::new();
    for &size in sizes_mb {
        for strategy in VmStrategy::ALL {
            let (mut cluster, t) = standard_cluster(4);
            let mut migrator = standard_migrator(4);
            migrator.set_vm_strategy(strategy);
            let (pid, t) = cluster
                .spawn(t, h(1), &SpritePath::new("/bin/sim"), pages_for_mb(size), 8)
                .expect("spawn");
            // Touch the whole image, flush it clean (normal paging would
            // have), then re-dirty a quarter.
            let t = dirty_heap(&mut cluster, t, pid, size);
            let t = {
                let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
                let t2 = space
                    .flush_dirty(&mut cluster.fs, &mut cluster.net, t, h(1))
                    .expect("flush");
                cluster.pcb_mut(pid).unwrap().space = Some(space);
                t2
            };
            let t = dirty_heap(&mut cluster, t, pid, size * DIRTY_FRACTION);
            let report = migrator
                .migrate(&mut cluster, t, pid, h(2))
                .expect("migrate");
            let vm = report.vm.expect("vm report");
            // Touch a quarter of the image on the target and measure the
            // lazy strategies' deferred cost.
            let touch_bytes = ((size * 0.25) * 1024.0 * 1024.0) as u64 / PAGE_SIZE * PAGE_SIZE;
            let first_touch = if touch_bytes == 0 {
                SimDuration::ZERO
            } else {
                let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
                let t0 = report.resumed_at;
                let (_, t1) = space
                    .read(
                        &mut cluster.fs,
                        &mut cluster.net,
                        t0,
                        h(2),
                        VirtAddr::new(SegmentKind::Heap, 0),
                        touch_bytes,
                    )
                    .expect("post-migration touch");
                cluster.pcb_mut(pid).unwrap().space = Some(space);
                t1.elapsed_since(t0)
            };
            rows.push(StrategyRow {
                dirty_mb: size,
                strategy,
                freeze: report.freeze_time,
                total: report.total_time,
                bytes_moved: vm.bytes_moved,
                first_touch,
                residual: vm.residual_source_dependency,
            });
        }
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[0.5, 1.0, 2.0, 4.0, 8.0, 16.0]);
    let mut t = TableWriter::new(
        "E2: VM transfer strategies vs image size (25% of pages dirty)",
        &[
            "imageMB",
            "strategy",
            "freeze(s)",
            "total(s)",
            "MBmoved",
            "touch25%(ms)",
            "residual",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{:.1}", r.dirty_mb),
            r.strategy.to_string(),
            secs(r.freeze),
            secs(r.total),
            format!("{:.2}", r.bytes_moved as f64 / (1024.0 * 1024.0)),
            ms(r.first_touch),
            if r.residual { "source" } else { "-" }.to_string(),
        ]);
    }
    t.note("paper shape: full-copy freeze linear in size; pre-copy small freeze, more bytes;");
    t.note("copy-on-ref near-zero freeze but residual source dependency + per-touch fetches;");
    t.note("sprite-flush freeze scales with dirty pages and leaves only a file-server dependency");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(strategy: VmStrategy, rows: &[StrategyRow]) -> Vec<&StrategyRow> {
        rows.iter().filter(|r| r.strategy == strategy).collect()
    }

    #[test]
    fn strategy_tradeoffs_match_the_paper() {
        let rows = run(&[1.0, 4.0]);
        let full = rows_for(VmStrategy::FullCopy, &rows);
        let pre = rows_for(VmStrategy::PreCopy, &rows);
        let cor = rows_for(VmStrategy::CopyOnReference, &rows);
        let flush = rows_for(VmStrategy::SpriteFlush, &rows);

        // Full copy: freeze grows ~linearly (4MB ≈ 4x the 1MB freeze).
        let ratio = full[1].freeze.as_secs_f64() / full[0].freeze.as_secs_f64();
        assert!((3.0..5.0).contains(&ratio), "full-copy ratio {ratio}");

        // Pre-copy freezes far less than full copy at 4MB but moves >= bytes.
        assert!(pre[1].freeze < full[1].freeze / 4);
        assert!(pre[1].bytes_moved >= full[1].bytes_moved);

        // Copy-on-reference: smallest freeze, residual dependency, and a
        // real first-touch penalty.
        assert!(cor[1].freeze < pre[1].freeze);
        assert!(cor[1].residual);
        assert!(cor[1].first_touch > SimDuration::ZERO);

        // Sprite flush: freeze below full copy, no source dependency,
        // deferred paging cost visible at first touch.
        assert!(flush[1].freeze < full[1].freeze);
        assert!(!flush[1].residual);
        assert!(flush[1].first_touch > SimDuration::ZERO);
    }

    #[test]
    fn freeze_time_orders_as_published() {
        let rows = run(&[4.0]);
        let get = |s: VmStrategy| {
            rows.iter()
                .find(|r| r.strategy == s)
                .map(|r| r.freeze)
                .unwrap()
        };
        let full = get(VmStrategy::FullCopy);
        let pre = get(VmStrategy::PreCopy);
        let cor = get(VmStrategy::CopyOnReference);
        assert!(
            cor < pre && pre < full,
            "cor {cor} < pre {pre} < full {full}"
        );
    }
}
