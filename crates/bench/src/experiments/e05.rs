//! E5 — pmake speedup vs. number of hosts.
//!
//! The headline load-sharing result: recompiling a program with pmake
//! spread across idle hosts. Speedup climbs with hosts, then bends over —
//! partly Amdahl's law (the sequential link step) \[Amd67\], partly file
//! server saturation on name lookups, exactly as Nelson predicted \[Nel88\].
//! The thesis reports ~300% effective utilization for a 12-way parallel
//! compilation.

use sprite_pmake::{prepare_sources, run_build, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::CompileWorkload;

use crate::support::{h, secs, standard_cluster, standard_migrator, warmed_selector, TableWriter};

/// One cluster-size measurement.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Hosts in the cluster (including server and home).
    pub hosts: usize,
    /// Build makespan.
    pub makespan: SimDuration,
    /// Speedup over the single-host baseline.
    pub speedup: f64,
    /// total CPU / makespan.
    pub effective_parallelism: f64,
    /// Jobs that ran remotely.
    pub remote_builds: usize,
    /// File-server CPU utilization during the build.
    pub server_utilization: f64,
}

fn one_build(
    hosts: usize,
    files: usize,
    use_migration: bool,
    seed: u64,
) -> (SimDuration, f64, usize) {
    let (mut cluster, t0) = standard_cluster(hosts);
    let mut migrator = standard_migrator(hosts);
    // Hosts 0 (server) and 1 (home) are busy; the rest are idle targets.
    let mut selector = warmed_selector(&mut cluster, hosts, 2);
    let workload = CompileWorkload {
        files,
        mean_cpu: SimDuration::from_secs(10),
        link_cpu: SimDuration::from_secs(6),
        ..CompileWorkload::default()
    };
    let graph = DepGraph::from_workload(&workload, &mut DetRng::seed_from(seed));
    let t = prepare_sources(&mut cluster, &graph, h(1), t0).expect("prepare");
    let config = PmakeConfig {
        use_migration,
        ..PmakeConfig::default()
    };
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &graph,
        &config,
        t,
    )
    .expect("build");
    let server = cluster.fs.server(h(0)).expect("server");
    let util = server.cpu.busy_time().as_secs_f64() / report.makespan.as_secs_f64();
    (report.makespan, util, report.remote_builds)
}

/// Runs the sweep over host counts. `files` compilations per build.
pub fn run(host_counts: &[usize], files: usize, seed: u64) -> Vec<SpeedupRow> {
    // Baseline: everything on the home host.
    let (serial, _, _) = one_build(3, files, false, seed);
    let mut rows = Vec::new();
    for &hosts in host_counts {
        let (makespan, server_utilization, remote_builds) = one_build(hosts, files, true, seed);
        let speedup = serial.as_secs_f64() / makespan.as_secs_f64();
        // Re-derive effective parallelism from total CPU: files*10s + 6s.
        let total_cpu = files as f64 * 10.0 + 6.0;
        rows.push(SpeedupRow {
            hosts,
            makespan,
            speedup,
            effective_parallelism: total_cpu / makespan.as_secs_f64(),
            remote_builds,
            server_utilization,
        });
    }
    rows
}

/// Renders the table (the figure's data series).
pub fn table() -> String {
    let rows = run(&[2, 3, 4, 6, 8, 10, 12, 16], 24, 5);
    let mut t = TableWriter::new(
        "E5: pmake speedup vs hosts (24 compilations, 10s each, 6s link)",
        &[
            "hosts",
            "makespan(s)",
            "speedup",
            "eff-par",
            "remote",
            "srv-util",
        ],
    );
    for r in &rows {
        t.row(&[
            r.hosts.to_string(),
            secs(r.makespan),
            format!("{:.2}", r.speedup),
            format!("{:.2}", r.effective_parallelism),
            r.remote_builds.to_string(),
            format!("{:.0}%", r.server_utilization * 100.0),
        ]);
    }
    t.note("paper shape: speedup rises with hosts then saturates (sequential link +");
    t.note("file-server contention); ~3x effective utilization around 12-way parallelism");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rises_then_saturates() {
        let rows = run(&[2, 6, 12], 16, 7);
        assert!(rows[1].speedup > rows[0].speedup, "6 hosts beat 2");
        // Marginal gain per added host shrinks.
        let marginal1 = (rows[1].speedup - rows[0].speedup) / 4.0;
        let marginal2 = (rows[2].speedup - rows[1].speedup) / 6.0;
        assert!(
            marginal2 < marginal1,
            "saturation expected: marginals {marginal1:.3} then {marginal2:.3}"
        );
        // Effective parallelism in the ~3x band the thesis reports for
        // 12-way builds (wide tolerance: this is a shape check).
        assert!(
            rows[2].effective_parallelism > 2.0 && rows[2].effective_parallelism < 9.0,
            "eff par {}",
            rows[2].effective_parallelism
        );
    }

    #[test]
    fn server_works_harder_with_more_hosts() {
        let rows = run(&[2, 12], 16, 9);
        assert!(rows[1].server_utilization > rows[0].server_utilization);
    }
}
