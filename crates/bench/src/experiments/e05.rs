//! E5 — pmake speedup vs. number of hosts, with a file-server axis.
//!
//! The headline load-sharing result: recompiling a program with pmake
//! spread across idle hosts. Speedup climbs with hosts, then bends over —
//! partly Amdahl's law (the sequential link step) \[Amd67\], partly file
//! server saturation on name lookups, exactly as Nelson predicted \[Nel88\].
//! The thesis reports ~300% effective utilization for a 12-way parallel
//! compilation.
//!
//! The sharded file service adds a second axis: with the root domain
//! striped across N server daemons the per-daemon lookup/block load drops,
//! and the host count at which the curve bends over (the saturation
//! crossover) moves right.

use sprite_pmake::{prepare_sources, run_build, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::CompileWorkload;

use crate::support::{h, secs, sharded_cluster, standard_migrator, warmed_selector, TableWriter};

/// One cluster-size measurement.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// File-server daemons striping the root domain.
    pub fs_shards: usize,
    /// Hosts in the cluster (including servers and home).
    pub hosts: usize,
    /// Build makespan.
    pub makespan: SimDuration,
    /// Speedup over the single-host baseline.
    pub speedup: f64,
    /// total CPU / makespan.
    pub effective_parallelism: f64,
    /// Jobs that ran remotely.
    pub remote_builds: usize,
    /// Worst-loaded server daemon's CPU utilization during the build.
    pub server_utilization: f64,
    /// Block fetches served by replica peers instead of the home server.
    pub replica_hits: u64,
    /// Busy time of the worst-loaded server daemon.
    pub server_busy_max: SimDuration,
}

/// The classic workload: long compiles, compute-bound (the shape tests).
fn classic_workload(files: usize) -> CompileWorkload {
    CompileWorkload {
        files,
        mean_cpu: SimDuration::from_secs(10),
        link_cpu: SimDuration::from_secs(6),
        ..CompileWorkload::default()
    }
}

/// The table's sweep workload: many short compiles over small files with a
/// very wide shared-header fan-out. Byte traffic stays light (the shared
/// Ethernet never saturates) while every header open costs the server
/// per-component lookup CPU — so the file server's processor, exactly the
/// resource Nelson identified \[Nel88\], is what saturates first, and the
/// servers axis has something to relieve.
fn sweep_workload(files: usize) -> CompileWorkload {
    CompileWorkload {
        files,
        mean_cpu: SimDuration::from_millis(500),
        mean_src_bytes: 4 * 1024,
        headers_per_file: 32,
        header_pool: 8,
        link_cpu: SimDuration::from_secs(2),
    }
}

fn one_build(
    hosts: usize,
    workload: &CompileWorkload,
    use_migration: bool,
    seed: u64,
    fs_shards: usize,
) -> (SimDuration, f64, usize, u64, SimDuration) {
    let (mut cluster, t0) = sharded_cluster(hosts, fs_shards);
    let mut migrator = standard_migrator(hosts);
    // The server hosts plus the home host are busy; the rest are idle
    // targets (at one shard: host 0 server, host 1 home, as always).
    let home = h(fs_shards as u32);
    let mut selector = warmed_selector(&mut cluster, hosts, fs_shards as u32 + 1);
    let graph = DepGraph::from_workload(workload, &mut DetRng::seed_from(seed));
    let t = prepare_sources(&mut cluster, &graph, home, t0).expect("prepare");
    let config = PmakeConfig {
        use_migration,
        ..PmakeConfig::default()
    };
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        home,
        &graph,
        &config,
        t,
    )
    .expect("build");
    let busy_max = cluster.fs.server_busy_max();
    let util = busy_max.as_secs_f64() / report.makespan.as_secs_f64();
    (
        report.makespan,
        util,
        report.remote_builds,
        cluster.fs.stats().replica_hits,
        busy_max,
    )
}

/// Runs the sweep over host counts at `fs_shards` file-server daemons.
/// `files` compilations per build. Host counts too small to fit the server
/// group plus a distinct home host are skipped.
pub fn run_sharded(
    host_counts: &[usize],
    workload: &CompileWorkload,
    seed: u64,
    fs_shards: usize,
) -> Vec<SpeedupRow> {
    // Baseline: everything on the home host of the classic one-server
    // layout, so speedups are comparable across shard counts.
    let (serial, _, _, _, _) = one_build(3, workload, false, seed, 1);
    // Nominal compute demand, for the effective-parallelism column.
    let total_cpu =
        workload.files as f64 * workload.mean_cpu.as_secs_f64() + workload.link_cpu.as_secs_f64();
    let mut rows = Vec::new();
    for &hosts in host_counts {
        if hosts < fs_shards + 1 {
            continue;
        }
        let (makespan, server_utilization, remote_builds, replica_hits, server_busy_max) =
            one_build(hosts, workload, true, seed, fs_shards);
        let speedup = serial.as_secs_f64() / makespan.as_secs_f64();
        rows.push(SpeedupRow {
            fs_shards,
            hosts,
            makespan,
            speedup,
            effective_parallelism: total_cpu / makespan.as_secs_f64(),
            remote_builds,
            server_utilization,
            replica_hits,
            server_busy_max,
        });
    }
    rows
}

/// The classic compute-bound single-server sweep (the shape tests).
pub fn run(host_counts: &[usize], files: usize, seed: u64) -> Vec<SpeedupRow> {
    run_sharded(host_counts, &classic_workload(files), seed, 1)
}

/// The host count at which a sweep's speedup curve bends over: the first
/// point whose marginal speedup per added host falls below `threshold`
/// (the curve's last host count if it never does). A curve that keeps
/// climbing crosses over later — the sharding win in one number.
pub fn crossover(rows: &[SpeedupRow], threshold: f64) -> usize {
    for w in rows.windows(2) {
        let added = (w[1].hosts - w[0].hosts) as f64;
        if (w[1].speedup - w[0].speedup) / added < threshold {
            return w[0].hosts;
        }
    }
    rows.last().map(|r| r.hosts).unwrap_or(0)
}

/// Marginal-speedup threshold defining the saturation crossover.
pub const CROSSOVER_THRESHOLD: f64 = 0.15;

/// Host counts and workload size the printed table sweeps.
pub const TABLE_HOSTS: [usize; 8] = [2, 3, 4, 6, 8, 10, 12, 16];
/// Shard counts the printed table sweeps.
pub const TABLE_SHARDS: [usize; 3] = [1, 2, 4];
/// Compilations per build in the printed table.
pub const TABLE_FILES: usize = 96;
/// Workload seed for the printed table.
pub const TABLE_SEED: u64 = 5;

/// Runs the full printed sweep: every shard count in [`TABLE_SHARDS`] over
/// [`TABLE_HOSTS`], on the FS-heavy sweep workload.
pub fn run_table_sweep() -> Vec<Vec<SpeedupRow>> {
    let workload = sweep_workload(TABLE_FILES);
    TABLE_SHARDS
        .iter()
        .map(|&s| run_sharded(&TABLE_HOSTS, &workload, TABLE_SEED, s))
        .collect()
}

/// Renders the table (the figure's data series, with the servers axis).
pub fn table() -> String {
    let sweeps = run_table_sweep();
    let mut t = TableWriter::new(
        "E5: pmake speedup vs hosts and FS shards (96 short compiles, 32 header opens each)",
        &[
            "shards",
            "hosts",
            "makespan(s)",
            "speedup",
            "eff-par",
            "remote",
            "worst-srv-util",
            "replica-hits",
        ],
    );
    for rows in &sweeps {
        for r in rows {
            t.row(&[
                r.fs_shards.to_string(),
                r.hosts.to_string(),
                secs(r.makespan),
                format!("{:.2}", r.speedup),
                format!("{:.2}", r.effective_parallelism),
                r.remote_builds.to_string(),
                format!("{:.0}%", r.server_utilization * 100.0),
                r.replica_hits.to_string(),
            ]);
        }
    }
    for rows in &sweeps {
        if let Some(first) = rows.first() {
            t.note(format!(
                "saturation crossover at {} shard(s): {} hosts (marginal speedup < {:.2}/host)",
                first.fs_shards,
                crossover(rows, CROSSOVER_THRESHOLD),
                CROSSOVER_THRESHOLD,
            ));
        }
    }
    t.note("paper shape: speedup rises with hosts then saturates (sequential link +");
    t.note("file-server contention); striping the domain moves the bend to the right");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rises_then_saturates() {
        let rows = run(&[2, 6, 12], 16, 7);
        assert!(rows[1].speedup > rows[0].speedup, "6 hosts beat 2");
        // Marginal gain per added host shrinks.
        let marginal1 = (rows[1].speedup - rows[0].speedup) / 4.0;
        let marginal2 = (rows[2].speedup - rows[1].speedup) / 6.0;
        assert!(
            marginal2 < marginal1,
            "saturation expected: marginals {marginal1:.3} then {marginal2:.3}"
        );
        // Effective parallelism in the ~3x band the thesis reports for
        // 12-way builds (wide tolerance: this is a shape check).
        assert!(
            rows[2].effective_parallelism > 2.0 && rows[2].effective_parallelism < 9.0,
            "eff par {}",
            rows[2].effective_parallelism
        );
    }

    #[test]
    fn server_works_harder_with_more_hosts() {
        let rows = run(&[2, 12], 16, 9);
        assert!(rows[1].server_utilization > rows[0].server_utilization);
    }

    #[test]
    fn sharding_reduces_worst_server_load() {
        let w = sweep_workload(16);
        let flat = run_sharded(&[12], &w, 11, 1);
        let split = run_sharded(&[12], &w, 11, 2);
        assert!(
            split[0].server_busy_max < flat[0].server_busy_max,
            "2 shards should lighten the worst daemon: {} vs {}",
            split[0].server_busy_max,
            flat[0].server_busy_max,
        );
    }

    #[test]
    fn crossover_finds_the_bend() {
        let mk = |hosts, speedup| SpeedupRow {
            fs_shards: 1,
            hosts,
            makespan: SimDuration::from_secs(1),
            speedup,
            effective_parallelism: 0.0,
            remote_builds: 0,
            server_utilization: 0.0,
            replica_hits: 0,
            server_busy_max: SimDuration::ZERO,
        };
        let rows = vec![mk(2, 1.0), mk(4, 2.0), mk(8, 2.2), mk(16, 2.3)];
        assert_eq!(crossover(&rows, 0.15), 4);
        let rising = vec![mk(2, 1.0), mk(4, 2.0), mk(8, 4.0)];
        assert_eq!(crossover(&rising, 0.15), 8, "never bends: last point");
    }

    #[test]
    fn small_host_counts_are_skipped_for_wide_groups() {
        let rows = run_sharded(&[2, 3, 6], &sweep_workload(8), 13, 4);
        assert_eq!(rows.len(), 1, "only 6 hosts fits a 4-server group");
        assert_eq!(rows[0].hosts, 6);
    }
}
