//! E7 — Idle hosts by time of day.
//!
//! Chapter 8's availability study: "65-70% of hosts in Sprite are idle on
//! average during the day, with up to 80% idle at night and on weekends."
//! We drive a week of diurnal activity traces over a 50-host cluster and
//! report the idle fraction per hour for a weekday and a weekend day, plus
//! the aggregate bands.

use sprite_net::HostId;
use sprite_sim::{DetRng, SimDuration, SimTime};
use sprite_workloads::{fraction_idle, ActivityModel, ActivityTrace, DAY, HOUR, WEEK};

use crate::support::TableWriter;

/// The experiment's aggregates.
#[derive(Debug, Clone)]
pub struct IdleStudy {
    /// Idle fraction for each hour of a weekday (Wednesday).
    pub weekday_by_hour: Vec<f64>,
    /// Idle fraction for each hour of a Saturday.
    pub weekend_by_hour: Vec<f64>,
    /// Average idle fraction over weekday working hours.
    pub working_hours_avg: f64,
    /// Average idle fraction over nights and weekends.
    pub off_hours_avg: f64,
}

/// Runs the study over `hosts` hosts for one simulated week.
pub fn run(hosts: usize, seed: u64) -> IdleStudy {
    let mut rng = DetRng::seed_from(seed);
    let model = ActivityModel::default();
    let traces: Vec<ActivityTrace> = (0..hosts)
        .map(|i| {
            ActivityTrace::generate(
                &mut rng,
                &model,
                HostId::new(i as u32),
                SimDuration::from_secs(WEEK),
            )
        })
        .collect();
    let sample = |day: u64, hour: u64| {
        let t = SimTime::ZERO + SimDuration::from_secs(day * DAY + hour * HOUR + 1800);
        fraction_idle(&traces, t)
    };
    let weekday_by_hour: Vec<f64> = (0..24).map(|hh| sample(2, hh)).collect();
    let weekend_by_hour: Vec<f64> = (0..24).map(|hh| sample(5, hh)).collect();
    let mut working = Vec::new();
    let mut off = Vec::new();
    for day in 0..7u64 {
        for hour in 0..24u64 {
            let f = sample(day, hour);
            if day < 5 && (9..18).contains(&hour) {
                working.push(f);
            } else {
                off.push(f);
            }
        }
    }
    IdleStudy {
        weekday_by_hour,
        weekend_by_hour,
        working_hours_avg: working.iter().sum::<f64>() / working.len() as f64,
        off_hours_avg: off.iter().sum::<f64>() / off.len() as f64,
    }
}

/// Renders the table (the figure's two series).
pub fn table() -> String {
    let study = run(50, 17);
    let mut t = TableWriter::new(
        "E7: fraction of idle hosts by hour (50 hosts, 1 week)",
        &["hour", "weekday", "weekend"],
    );
    for hh in 0..24 {
        t.row(&[
            format!("{hh:02}:30"),
            format!("{:.0}%", study.weekday_by_hour[hh] * 100.0),
            format!("{:.0}%", study.weekend_by_hour[hh] * 100.0),
        ]);
    }
    t.note(format!(
        "working-hours average {:.0}% idle; nights/weekends {:.0}% idle",
        study.working_hours_avg * 100.0,
        study.off_hours_avg * 100.0
    ));
    t.note("paper: 65-70% idle during the day, up to 80% at night and on weekends");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bands_match_chapter_8() {
        let s = run(100, 23);
        assert!(
            (0.58..0.80).contains(&s.working_hours_avg),
            "daytime idle {:.2}",
            s.working_hours_avg
        );
        assert!(
            s.off_hours_avg > 0.74,
            "off-hours idle {:.2}",
            s.off_hours_avg
        );
        assert!(s.off_hours_avg > s.working_hours_avg);
    }

    #[test]
    fn weekend_days_are_idler_than_weekday_afternoons() {
        let s = run(100, 29);
        let weekday_afternoon: f64 = s.weekday_by_hour[13..17].iter().sum::<f64>() / 4.0;
        let weekend_afternoon: f64 = s.weekend_by_hour[13..17].iter().sum::<f64>() / 4.0;
        assert!(weekend_afternoon > weekday_afternoon);
    }
}
