//! E6 — Effective processor utilization: pmake vs. independent simulations.
//!
//! The thesis contrasts a 12-way parallel compilation (~300% effective
//! utilization) with a batch of 100 independent simulations (>800%): the
//! compilation is bounded by its sequential link and the file server, while
//! coarse-grained independent jobs keep every borrowed host busy
//! (Ch. 7.4). Both workloads run through the same pmake engine here — the
//! simulation batch is simply a dependency graph with no barrier.

use sprite_pmake::{prepare_sources, run_build, Action, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::{simulation_batch, CompileWorkload};

use crate::support::{h, secs, standard_cluster, standard_migrator, warmed_selector, TableWriter};

/// One workload's measurement.
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// Workload label.
    pub workload: &'static str,
    /// Jobs in the workload.
    pub jobs: usize,
    /// Makespan.
    pub makespan: SimDuration,
    /// Total CPU demand.
    pub total_cpu: SimDuration,
    /// Effective utilization (total CPU / makespan), as a percentage.
    pub effective_utilization_pct: f64,
}

fn graph_for_simulations(count: usize, mean_cpu: SimDuration, seed: u64) -> DepGraph {
    let jobs = simulation_batch(&mut DetRng::seed_from(seed), count, mean_cpu);
    let mut g = DepGraph::new();
    for j in &jobs {
        g.add_target(
            &format!("/sim/run{}.out", j.index),
            Action::Compile(sprite_workloads::CompileJob {
                src: format!("/sim/params{}.in", j.index),
                headers: Vec::new(),
                obj: format!("/sim/run{}.out", j.index),
                src_bytes: 2 * 1024,
                obj_bytes: j.result_bytes,
                cpu: j.cpu,
            }),
            &[],
        );
    }
    g
}

fn run_graph(graph: &DepGraph, hosts: usize, label: &'static str) -> UtilizationRow {
    let (mut cluster, t0) = standard_cluster(hosts);
    let mut migrator = standard_migrator(hosts);
    let mut selector = warmed_selector(&mut cluster, hosts, 2);
    let t = prepare_sources(&mut cluster, graph, h(1), t0).expect("prepare");
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        graph,
        &PmakeConfig::default(),
        t,
    )
    .expect("build");
    UtilizationRow {
        workload: label,
        jobs: graph.len(),
        makespan: report.makespan,
        total_cpu: report.total_cpu,
        effective_utilization_pct: report.effective_parallelism * 100.0,
    }
}

/// Runs both workloads on a cluster with `idle_hosts` borrowed machines.
pub fn run(idle_hosts: usize, seed: u64) -> Vec<UtilizationRow> {
    let hosts = idle_hosts + 2; // server + home
                                // Short compiles relative to their I/O and launch overheads — the
                                // regime in which the thesis measured ~300% for a 12-way build.
    let pmake_graph = DepGraph::from_workload(
        &CompileWorkload {
            files: 24,
            mean_cpu: SimDuration::from_secs(5),
            link_cpu: SimDuration::from_secs(8),
            ..CompileWorkload::default()
        },
        &mut DetRng::seed_from(seed),
    );
    let sim_graph = graph_for_simulations(100, SimDuration::from_secs(300), seed);
    vec![
        run_graph(&pmake_graph, hosts, "24-way pmake"),
        run_graph(&sim_graph, hosts, "100 simulations"),
    ]
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(12, 11);
    let mut t = TableWriter::new(
        "E6: effective processor utilization (12 idle hosts)",
        &["workload", "jobs", "makespan(s)", "cpu(s)", "utilization"],
    );
    for r in &rows {
        t.row(&[
            r.workload.to_string(),
            r.jobs.to_string(),
            secs(r.makespan),
            secs(r.total_cpu),
            format!("{:.0}%", r.effective_utilization_pct),
        ]);
    }
    t.note("paper: ~300% for a 12-way pmake vs >800% for 100 independent simulations —");
    t.note("coarse independent jobs exploit borrowed hosts far better than compilations");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulations_beat_pmake_by_a_wide_margin() {
        let rows = run(8, 3);
        let pmake = &rows[0];
        let sims = &rows[1];
        assert!(
            sims.effective_utilization_pct > 1.5 * pmake.effective_utilization_pct,
            "sims {:.0}% vs pmake {:.0}%",
            sims.effective_utilization_pct,
            pmake.effective_utilization_pct
        );
        // Simulations approach the number of borrowed hosts.
        assert!(sims.effective_utilization_pct > 600.0);
        // pmake sits in the few-hundred-percent band, nowhere near the
        // host count.
        assert!(pmake.effective_utilization_pct > 150.0);
        assert!(pmake.effective_utilization_pct < 600.0);
    }
}
