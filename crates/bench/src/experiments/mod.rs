//! The experiment suite: one module per table/figure of the paper's
//! evaluation. Each module exposes `run(...)` returning structured results
//! (unit-tested for the paper's qualitative claims) and `table()` rendering
//! the printable reproduction.

pub mod a01;
pub mod a02;
pub mod a03;
pub mod a04;
pub mod a05;
pub mod a06;
pub mod a07;
pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod f01;
pub mod m01;
pub mod m02;

use crate::runner::{merge_e10, merge_e11, merge_single, Experiment, Partial, Unit};
use sprite_sim::SimDuration;

/// An experiment index entry: id, one-line description, table renderer.
pub type IndexEntry = (&'static str, &'static str, fn() -> String);

/// Experiment IDs in order, with their table renderers and one-line
/// descriptions.
pub fn all() -> Vec<IndexEntry> {
    vec![
        (
            "e01",
            "migration cost breakdown",
            e01::table as fn() -> String,
        ),
        ("e02", "VM transfer strategies vs size", e02::table),
        ("e03", "migration cost vs open files", e03::table),
        ("e04", "kernel-call forwarding costs", e04::table),
        ("e05", "pmake speedup vs hosts", e05::table),
        (
            "e06",
            "effective utilization: pmake vs simulations",
            e06::table,
        ),
        ("e07", "idle hosts by time of day", e07::table),
        ("e08", "eviction / workstation reclaim", e08::table),
        ("e09", "process lifetimes and placement policy", e09::table),
        ("e10", "host-selection architectures", e10::table),
        ("e11", "a month in the life", e11::table),
        ("e12", "residual dependencies ablation", e12::table),
        ("a01", "ablation: client name caching", a01::table),
        ("a02", "ablation: hardware generations", a02::table),
        ("a03", "ablation: pre-copy vs dirtying rate", a03::table),
        ("a04", "ablation: second file server", a04::table),
        ("a05", "ablation: checkpoint/restart baseline", a05::table),
        ("a06", "ablation: eviction policy", a06::table),
        ("a07", "ablation: workstation autonomy", a07::table),
    ]
}

/// The suite decomposed into parallel-runner experiments: E10 splits into
/// one unit per (size, architecture) cell and E11 into one unit per
/// replication; everything else runs as a single unit. Cost hints reflect
/// measured relative runtimes so longest-first dispatch keeps workers busy.
pub fn suite() -> Vec<Experiment> {
    all()
        .into_iter()
        .map(|(id, desc, table)| match id {
            "e10" => Experiment {
                id,
                desc,
                units: e10::FULL_SIZES
                    .iter()
                    .flat_map(|&hosts| {
                        e10::ARCHS.map(move |kind| Unit {
                            cost: hosts as u64,
                            run: Box::new(move || {
                                Partial::E10Row(e10::drive_kind(
                                    kind,
                                    hosts,
                                    SimDuration::from_secs(e10::FULL_DURATION_SECS),
                                    e10::FULL_SEED,
                                ))
                            }),
                        })
                    })
                    .collect(),
                merge: merge_e10,
            },
            "e11" => Experiment {
                id,
                desc,
                units: e11::replication_rngs(e11::FULL_SEED, e11::FULL_REPS)
                    .into_iter()
                    .map(|rng| Unit {
                        cost: 5_000,
                        run: Box::new(move || {
                            Partial::E11Report(e11::run_seeded(
                                e11::FULL_HOSTS,
                                e11::FULL_REP_DAYS,
                                rng,
                            ))
                        }),
                    })
                    .collect(),
                merge: merge_e11,
            },
            _ => Experiment {
                id,
                desc,
                units: vec![Unit {
                    cost: match id {
                        "e02" => 300,
                        "e08" => 150,
                        _ => 10,
                    },
                    run: Box::new(move || Partial::Rendered(table())),
                }],
                merge: merge_single,
            },
        })
        .collect()
}
