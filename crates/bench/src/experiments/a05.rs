//! A5 — Ablation: checkpoint/restart vs. true migration.
//!
//! The related-work baseline (Smith/Ioannidis \[SI89\], Alonso/Kyrimis
//! \[AK88\], Condor's batch model \[LLM88\]): dump the image to a file, start a
//! fresh process elsewhere, read it back. Costs roughly twice the image in
//! server traffic and — the thesis's real objection — breaks transparency:
//! new PID, severed family, dropped descriptors.

use sprite_core::checkpoint_restart;
use sprite_fs::{OpenMode, SpritePath};
use sprite_net::PAGE_SIZE;
use sprite_sim::SimDuration;
use sprite_vm::{SegmentKind, VirtAddr};

use crate::support::{h, pages_for_mb, secs, standard_cluster, standard_migrator, TableWriter};

/// One size point, both mechanisms.
#[derive(Debug, Clone)]
pub struct AlternativeRow {
    /// Image megabytes (dirty heap).
    pub image_mb: f64,
    /// True migration time.
    pub migration: SimDuration,
    /// Checkpoint/restart time.
    pub checkpoint: SimDuration,
    /// Checkpoint / migration cost ratio.
    pub ratio: f64,
    /// Descriptors the checkpointed process lost.
    pub descriptors_lost: usize,
    /// Whether the replacement kept the original PID.
    pub pid_preserved: bool,
}

/// Runs the comparison across image sizes.
pub fn run(sizes_mb: &[f64]) -> Vec<AlternativeRow> {
    let mut rows = Vec::new();
    for &mb in sizes_mb {
        let (mut cluster, t) = standard_cluster(5);
        let mut migrator = standard_migrator(5);
        let pages = pages_for_mb(mb);
        let dirty = vec![0x5cu8; (mb * 1024.0 * 1024.0) as usize];
        let make = |cluster: &mut sprite_kernel::Cluster, t, tag: usize| {
            let (pid, t) = cluster
                .spawn(t, h(1), &SpritePath::new("/bin/sim"), pages, 8)
                .expect("spawn");
            let path = SpritePath::new(format!("/a05/{mb}.{tag}"));
            cluster
                .fs
                .create(&mut cluster.net, t, h(1), path.clone())
                .expect("create");
            let (_, t) = cluster
                .open_fd(t, pid, path, OpenMode::ReadWrite)
                .expect("open");
            let mut sp = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
            let t = sp
                .write(
                    &mut cluster.fs,
                    &mut cluster.net,
                    t,
                    h(1),
                    VirtAddr::new(SegmentKind::Heap, 0),
                    &dirty,
                )
                .expect("dirty");
            cluster.pcb_mut(pid).unwrap().space = Some(sp);
            (pid, t)
        };
        let (a, t) = make(&mut cluster, t, 0);
        let (b, t) = make(&mut cluster, t, 1);
        let real = migrator.migrate(&mut cluster, t, a, h(2)).expect("migrate");
        let ckpt = checkpoint_restart(&mut cluster, real.resumed_at, b, h(3)).expect("ckpt");
        rows.push(AlternativeRow {
            image_mb: mb,
            migration: real.total_time,
            checkpoint: ckpt.total_time,
            ratio: ckpt.total_time.as_secs_f64() / real.total_time.as_secs_f64(),
            descriptors_lost: ckpt.descriptors_lost,
            pid_preserved: ckpt.new_pid == b,
        });
        let _ = PAGE_SIZE;
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[0.25, 1.0, 4.0]);
    let mut t = TableWriter::new(
        "A5 (ablation): checkpoint/restart vs transparent migration",
        &[
            "imageMB",
            "migration(s)",
            "checkpoint(s)",
            "ratio",
            "fds lost",
            "pid kept",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{:.2}", r.image_mb),
            secs(r.migration),
            secs(r.checkpoint),
            format!("{:.1}x", r.ratio),
            r.descriptors_lost.to_string(),
            if r.pid_preserved { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note("checkpoint/restart ships the image through the server twice and boots a");
    t.note("fresh process — and 'migration' this way loses the PID, the parent and");
    t.note("every open descriptor (the thesis's 'restricted' migration, Ch. 2.2)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointing_costs_more_and_breaks_transparency() {
        let rows = run(&[1.0]);
        let r = &rows[0];
        assert!(r.ratio > 1.3, "ratio {:.2}", r.ratio);
        assert_eq!(r.descriptors_lost, 1);
        assert!(!r.pid_preserved);
    }

    #[test]
    fn gap_grows_with_image_size() {
        let rows = run(&[0.25, 4.0]);
        let small_gap = rows[0].checkpoint.saturating_sub(rows[0].migration);
        let big_gap = rows[1].checkpoint.saturating_sub(rows[1].migration);
        assert!(big_gap > small_gap);
    }
}
