//! A2 — Ablation: hardware generations (Sun-3 vs. DECstation era).
//!
//! The thesis's future-work chapter asks how the trade-offs shift as
//! processors outpace networks (Ch. 9). The DECstation calibration has
//! ~4-5x the CPU but well under 2x the effective network bandwidth, so
//! CPU-bound costs (state packing, lookups) shrink faster than byte-moving
//! costs — forwarding gets *relatively* more expensive, and VM transfer
//! stays the bottleneck.

use sprite_fs::{FsConfig, SpritePath};
use sprite_kernel::KernelCall;
use sprite_net::CostModel;
use sprite_sim::SimDuration;

use crate::support::{
    cluster_with, dirty_heap, h, ms, pages_for_mb, standard_migrator, TableWriter,
};

/// Measurements for one hardware generation.
#[derive(Debug, Clone)]
pub struct GenerationRow {
    /// Generation label.
    pub generation: &'static str,
    /// Trivial-process migration time.
    pub trivial_migration: SimDuration,
    /// Migration with 1 MB dirty.
    pub migration_1mb: SimDuration,
    /// A local kernel call.
    pub local_call: SimDuration,
    /// A forwarded (foreign) gettimeofday.
    pub forwarded_call: SimDuration,
    /// Forwarded/local ratio.
    pub forwarding_ratio: f64,
}

fn measure(cost: CostModel, label: &'static str) -> GenerationRow {
    let (mut cluster, t) = cluster_with(cost, 4, FsConfig::default());
    let mut migrator = standard_migrator(4);
    // Trivial migration.
    let (pid, t) = cluster
        .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
        .expect("spawn");
    let r1 = migrator
        .migrate(&mut cluster, t, pid, h(2))
        .expect("migrate");
    // Kernel calls: local (at home h2? pid foreign now) — measure on a
    // fresh home process for the local number.
    let (home_pid, t2) = cluster
        .spawn(r1.resumed_at, h(1), &SpritePath::new("/bin/sim"), 16, 4)
        .expect("spawn");
    let local_done = cluster
        .kernel_call(t2, home_pid, KernelCall::GetTimeOfDay)
        .expect("call");
    let local_call = local_done.elapsed_since(t2);
    let fwd_done = cluster
        .kernel_call(local_done, pid, KernelCall::GetTimeOfDay)
        .expect("call");
    let forwarded_call = fwd_done.elapsed_since(local_done);
    // 1MB-dirty migration.
    let (big, t3) = cluster
        .spawn(
            fwd_done,
            h(1),
            &SpritePath::new("/bin/sim"),
            pages_for_mb(1.0),
            4,
        )
        .expect("spawn");
    let t3 = dirty_heap(&mut cluster, t3, big, 1.0);
    let r2 = migrator
        .migrate(&mut cluster, t3, big, h(3))
        .expect("migrate");
    GenerationRow {
        generation: label,
        trivial_migration: r1.total_time,
        migration_1mb: r2.total_time,
        local_call,
        forwarded_call,
        forwarding_ratio: forwarded_call.as_secs_f64() / local_call.as_secs_f64(),
    }
}

/// Runs both generations.
pub fn run() -> Vec<GenerationRow> {
    vec![
        measure(CostModel::sun3(), "sun-3"),
        measure(CostModel::decstation(), "decstation"),
    ]
}

/// Renders the table.
pub fn table() -> String {
    let rows = run();
    let mut t = TableWriter::new(
        "A2 (ablation): hardware generations",
        &[
            "generation",
            "trivial-mig(ms)",
            "1MB-mig(ms)",
            "local-call(us)",
            "fwd-call(us)",
            "fwd/local",
        ],
    );
    for r in &rows {
        t.row(&[
            r.generation.to_string(),
            ms(r.trivial_migration),
            ms(r.migration_1mb),
            r.local_call.as_micros().to_string(),
            r.forwarded_call.as_micros().to_string(),
            format!("{:.0}x", r.forwarding_ratio),
        ]);
    }
    t.note("CPUs sped up ~4-5x between generations, networks much less: byte-moving");
    t.note("costs (VM transfer) shrink slower, and forwarding grows relatively dearer");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_hardware_is_faster_but_forwarding_ratio_worsens() {
        let rows = run();
        let sun = &rows[0];
        let dec = &rows[1];
        assert!(dec.trivial_migration < sun.trivial_migration);
        assert!(dec.migration_1mb < sun.migration_1mb);
        assert!(dec.local_call < sun.local_call);
        // The CPU sped up more than the network: the relative price of a
        // forwarded call goes UP.
        assert!(
            dec.forwarding_ratio > sun.forwarding_ratio,
            "ratio should worsen: sun {:.0} dec {:.0}",
            sun.forwarding_ratio,
            dec.forwarding_ratio
        );
        // And the 1MB migration improves less than the trivial one.
        let trivial_gain =
            sun.trivial_migration.as_secs_f64() / dec.trivial_migration.as_secs_f64();
        let big_gain = sun.migration_1mb.as_secs_f64() / dec.migration_1mb.as_secs_f64();
        assert!(big_gain < trivial_gain);
    }
}
