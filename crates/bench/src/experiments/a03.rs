//! A3 — Ablation: pre-copy under rising dirtying rates.
//!
//! V's pre-copy converges only while the program dirties pages slower than
//! the network ships them; as the rates approach, rounds stop shrinking and
//! the final freeze balloons while total bytes multiply (Ch. 2.3's "pages
//! may be copied multiple times"). This sweep maps that breakdown.

use sprite_fs::SpritePath;
use sprite_sim::SimDuration;
use sprite_vm::{transfer, TransferParams, VmStrategy};

use crate::support::{
    dirty_heap, h, pages_for_mb, secs, standard_cluster, standard_migrator, TableWriter,
};

/// One dirty-rate measurement.
#[derive(Debug, Clone, Copy)]
pub struct PrecopyRow {
    /// Pages dirtied per second while pre-copy runs.
    pub dirty_rate: f64,
    /// Final freeze time.
    pub freeze: SimDuration,
    /// Total transfer wall time.
    pub total: SimDuration,
    /// Bytes moved / image bytes (1.0 = each page crossed once).
    pub copy_amplification: f64,
}

/// Runs the sweep for a 4 MB image. The wire moves ~120 pages/s, so rates
/// beyond that cannot converge.
pub fn run(rates: &[f64]) -> Vec<PrecopyRow> {
    let image_mb = 4.0;
    let image_bytes = (image_mb * 1024.0 * 1024.0) as u64;
    let mut rows = Vec::new();
    for &rate in rates {
        let (mut cluster, t) = standard_cluster(4);
        let _ = standard_migrator(4);
        let (pid, t) = cluster
            .spawn(
                t,
                h(1),
                &SpritePath::new("/bin/sim"),
                pages_for_mb(image_mb),
                8,
            )
            .expect("spawn");
        let t = dirty_heap(&mut cluster, t, pid, image_mb);
        let mut space = cluster.pcb_mut(pid).unwrap().space.take().unwrap();
        let params = TransferParams {
            dirty_rate_pages_per_sec: rate,
            ..TransferParams::default()
        };
        let report = transfer(
            &mut space,
            VmStrategy::PreCopy,
            &mut cluster.fs,
            &mut cluster.net,
            t,
            h(1),
            h(2),
            &params,
        )
        .expect("transfer");
        cluster.pcb_mut(pid).unwrap().space = Some(space);
        rows.push(PrecopyRow {
            dirty_rate: rate,
            freeze: report.freeze_time,
            total: report.total_time,
            copy_amplification: report.bytes_moved as f64 / image_bytes as f64,
        });
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[2.0, 10.0, 20.0, 50.0, 90.0, 110.0, 150.0]);
    let mut t = TableWriter::new(
        "A3 (ablation): pre-copy vs dirtying rate (4MB image, wire ~120 pages/s)",
        &[
            "dirty pages/s",
            "freeze(s)",
            "total(s)",
            "copy amplification",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{:.0}", r.dirty_rate),
            secs(r.freeze),
            secs(r.total),
            format!("{:.2}x", r.copy_amplification),
        ]);
    }
    t.note("below the wire rate pre-copy converges to a tiny freeze; approaching it,");
    t.note("rounds stop shrinking — the total bytes multiply and the freeze balloons");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precopy_degrades_as_dirtying_approaches_wire_speed() {
        let rows = run(&[5.0, 50.0, 140.0]);
        assert!(rows[0].freeze < rows[1].freeze);
        assert!(rows[1].freeze < rows[2].freeze);
        assert!(rows[0].copy_amplification < rows[2].copy_amplification);
        // Slow dirtying: nearly a single pass.
        assert!(rows[0].copy_amplification < 1.3);
        // Past the wire rate: serious amplification.
        assert!(rows[2].copy_amplification > 1.8);
    }
}
