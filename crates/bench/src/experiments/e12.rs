//! E12 — Residual dependencies: the cost of forwarding kernel calls home.
//!
//! Ablation of Sprite's central transparency decision. One design extreme
//! forwards *every* kernel call to the home machine (Remote UNIX \[Lit87\]);
//! Sprite instead transfers most state with the process so that only a few
//! calls forward. We sweep the forwarded fraction from 0 to 100% and
//! measure the slowdown of a syscall-heavy foreign process relative to
//! running at home — reproducing the argument of Ch. 4.3 that "an approach
//! based entirely on forwarding kernel calls ... will not work in
//! practice".

use sprite_fs::SpritePath;
use sprite_kernel::{Cluster, KernelCall, ProcessId};
use sprite_sim::{DetRng, SimTime};

use crate::support::{h, standard_cluster, standard_migrator, TableWriter};

/// One forwarded-fraction measurement.
#[derive(Debug, Clone, Copy)]
pub struct ResidualRow {
    /// Fraction of kernel calls that forward home.
    pub forwarded_fraction: f64,
    /// Elapsed time for the call mix at home (µs).
    pub home_us: u64,
    /// Elapsed foreign (µs).
    pub foreign_us: u64,
}

impl ResidualRow {
    /// Foreign/home slowdown.
    pub fn slowdown(&self) -> f64 {
        self.foreign_us as f64 / self.home_us.max(1) as f64
    }
}

fn run_mix(
    cluster: &mut Cluster,
    pid: ProcessId,
    start: SimTime,
    calls: usize,
    forwarded_fraction: f64,
    seed: u64,
) -> u64 {
    let mut rng = DetRng::seed_from(seed);
    let mut t = start;
    for _ in 0..calls {
        let call = if rng.chance(forwarded_fraction) {
            KernelCall::GetTimeOfDay
        } else {
            KernelCall::GetPid
        };
        t = cluster.kernel_call(t, pid, call).expect("call");
    }
    t.elapsed_since(start).as_micros()
}

/// Runs the sweep with `calls` kernel calls per measurement.
pub fn run(fractions: &[f64], calls: usize, seed: u64) -> Vec<ResidualRow> {
    let mut rows = Vec::new();
    for &f in fractions {
        let (mut cluster, t) = standard_cluster(4);
        let mut migrator = standard_migrator(4);
        let (pid, t) = cluster
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 8, 4)
            .expect("spawn");
        let home_us = run_mix(&mut cluster, pid, t, calls, f, seed);
        let report = migrator
            .migrate(&mut cluster, t, pid, h(2))
            .expect("migrate");
        let foreign_us = run_mix(&mut cluster, pid, report.resumed_at, calls, f, seed);
        rows.push(ResidualRow {
            forwarded_fraction: f,
            home_us,
            foreign_us,
        });
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0], 2_000, 47);
    let mut t = TableWriter::new(
        "E12: foreign-process slowdown vs fraction of calls forwarded home (2000 calls)",
        &["forwarded", "home(ms)", "foreign(ms)", "slowdown"],
    );
    for r in &rows {
        t.row(&[
            format!("{:.0}%", r.forwarded_fraction * 100.0),
            format!("{:.1}", r.home_us as f64 / 1e3),
            format!("{:.1}", r.foreign_us as f64 / 1e3),
            format!("{:.1}x", r.slowdown()),
        ]);
    }
    t.note("design points: Sprite transfers state so only a few % of calls forward;");
    t.note("Remote UNIX forwards everything (the 100% row) and pays ~26x per call");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_grows_with_forwarded_fraction() {
        let rows = run(&[0.0, 0.05, 1.0], 500, 3);
        assert!(
            (rows[0].slowdown() - 1.0).abs() < 0.01,
            "nothing forwarded => no slowdown, got {:.2}",
            rows[0].slowdown()
        );
        assert!(rows[1].slowdown() > 1.5, "5% mix {:.2}", rows[1].slowdown());
        assert!(
            rows[2].slowdown() > 15.0,
            "forward-everything should be crushing: {:.2}",
            rows[2].slowdown()
        );
        assert!(rows[1].slowdown() < rows[2].slowdown());
    }

    #[test]
    fn home_cost_is_independent_of_mix() {
        let rows = run(&[0.0, 1.0], 500, 5);
        assert_eq!(rows[0].home_us, rows[1].home_us);
    }
}
