//! E1 — Migration cost breakdown (the paper's cost-components table).
//!
//! Migrates a trivial process and reports where the time goes: negotiation,
//! virtual memory, open streams, process state, and commit/resume. Rows
//! vary the number of open files and the dirty heap size, and the last row
//! shows the exec-time path for contrast. The published result this
//! reproduces: a trivial migration costs tens to a few hundred
//! milliseconds, dominated by per-file and per-dirty-page costs, with
//! exec-time migration the cheapest way to move work.

use sprite_fs::{OpenMode, SpritePath};
use sprite_kernel::ProcessId;
use sprite_sim::SimTime;

use crate::support::{
    dirty_heap, h, ms, pages_for_mb, standard_cluster, standard_migrator, TableWriter,
};

/// One configuration's measurement.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Open files during the migration.
    pub open_files: usize,
    /// Dirty heap in megabytes.
    pub dirty_mb: f64,
    /// The migration report.
    pub report: sprite_core::MigrationReport,
}

fn spawn_with_files(
    cluster: &mut sprite_kernel::Cluster,
    t: SimTime,
    files: usize,
    dirty_mb: f64,
    tag: usize,
) -> (ProcessId, SimTime) {
    let (pid, mut t) = cluster
        .spawn(
            t,
            h(1),
            &SpritePath::new("/bin/sim"),
            pages_for_mb(dirty_mb),
            8,
        )
        .expect("spawn");
    for i in 0..files {
        let path = SpritePath::new(format!("/data/e01.{tag}.{i}"));
        cluster
            .fs
            .create(&mut cluster.net, t, h(1), path.clone())
            .expect("create");
        let (fd, t2) = cluster
            .open_fd(t, pid, path, OpenMode::ReadWrite)
            .expect("open");
        let t3 = cluster
            .write_fd(t2, pid, fd, &[0xe1u8; 2048])
            .expect("write");
        t = t3;
    }
    let t = dirty_heap(cluster, t, pid, dirty_mb);
    (pid, t)
}

/// Runs the experiment and returns the measured rows.
pub fn run() -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    for (tag, (files, dirty_mb)) in [
        (0usize, 0.0f64),
        (2, 0.0),
        (8, 0.0),
        (0, 0.25),
        (0, 1.0),
        (4, 1.0),
    ]
    .into_iter()
    .enumerate()
    {
        let (mut cluster, t) = standard_cluster(4);
        let mut migrator = standard_migrator(4);
        let (pid, t) = spawn_with_files(&mut cluster, t, files, dirty_mb, tag);
        let report = migrator
            .migrate(&mut cluster, t, pid, h(2))
            .expect("migrate");
        rows.push(BreakdownRow {
            open_files: files,
            dirty_mb,
            report,
        });
    }
    rows
}

/// Exec-time migration of an equivalent trivial process, for the last row.
pub fn run_exec_row() -> sprite_core::MigrationReport {
    let (mut cluster, t) = standard_cluster(4);
    let mut migrator = standard_migrator(4);
    let (pid, t) = spawn_with_files(&mut cluster, t, 2, 1.0, 99);
    migrator
        .exec_migrate(
            &mut cluster,
            t,
            pid,
            h(2),
            &SpritePath::new("/bin/sim"),
            64,
            8,
        )
        .expect("exec migrate")
}

/// Renders the table.
pub fn table() -> String {
    let rows = run();
    let exec = run_exec_row();
    let mut t = TableWriter::new(
        "E1: migration cost breakdown (ms)",
        &[
            "files",
            "dirtyMB",
            "negotiate",
            "vm",
            "streams",
            "state",
            "commit",
            "total",
            "freeze",
        ],
    );
    for r in &rows {
        let p = &r.report.phases;
        t.row(&[
            r.open_files.to_string(),
            format!("{:.2}", r.dirty_mb),
            ms(p.negotiate),
            ms(p.virtual_memory),
            ms(p.streams),
            ms(p.process_state),
            ms(p.commit),
            ms(r.report.total_time),
            ms(r.report.freeze_time),
        ]);
    }
    let p = &exec.phases;
    t.row(&[
        "2*".into(),
        "1.00*".into(),
        ms(p.negotiate),
        ms(p.virtual_memory),
        ms(p.streams),
        ms(p.process_state),
        ms(p.commit),
        ms(exec.total_time),
        ms(exec.freeze_time),
    ]);
    t.note("last row (*): exec-time migration — the old image is discarded, vm = 0");
    t.note("paper shape: base cost tens of ms; grows linearly with files and dirty pages");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shapes_match_the_paper() {
        let rows = run();
        // A trivial migration is fast (well under a second on Sun-3s).
        let trivial = &rows[0].report;
        assert!(trivial.total_time.as_millis_f64() < 300.0);
        // More open files => more stream-transfer time.
        assert!(rows[2].report.phases.streams > rows[0].report.phases.streams);
        // More dirty memory => more VM time.
        assert!(rows[4].report.phases.virtual_memory > rows[3].report.phases.virtual_memory);
        assert!(rows[3].report.phases.virtual_memory > rows[0].report.phases.virtual_memory);
        // Exec-time migration moves no VM and beats the 1MB active row.
        let exec = run_exec_row();
        assert!(exec.vm.is_none());
        assert!(exec.total_time < rows[4].report.total_time);
    }

    #[test]
    fn table_renders() {
        let s = table();
        assert!(s.contains("E1"));
        assert!(s.lines().count() > 8);
    }
}
