//! A6 — Ablation: eviction policy (straight home vs. re-selection).
//!
//! When an owner returns, Sprite sends foreign processes home. The thesis
//! (Ch. 8.3) discusses the alternative of moving them to *another* idle
//! host instead: the owner's reclaim takes the same time either way, but
//! the evicted jobs keep a whole machine to themselves instead of
//! competing with their owners at home. This ablation measures both
//! effects.

use sprite_fs::SpritePath;

use sprite_sim::SimDuration;

use crate::support::{
    dirty_heap, h, pages_for_mb, secs, standard_cluster, standard_migrator, TableWriter,
};

/// One policy's outcome.
#[derive(Debug, Clone)]
pub struct EvictionPolicyRow {
    /// Policy label.
    pub policy: &'static str,
    /// Time until the owner's machine is foreign-free.
    pub reclaim: SimDuration,
    /// Jobs that landed on a fresh idle host.
    pub resettled: usize,
    /// Time for every evicted job to finish a fixed 60s CPU slice after
    /// eviction (home machines are busy; idle hosts are not).
    pub work_completion: SimDuration,
}

/// Runs both policies on the same scenario: 3 users' jobs guesting on one
/// machine, owners busy at home, two spare idle hosts available.
pub fn run(dirty_mb: f64) -> Vec<EvictionPolicyRow> {
    let mut out = Vec::new();
    for resettle in [false, true] {
        let hosts = 8;
        let (mut cluster, mut t) = standard_cluster(hosts);
        let mut migrator = standard_migrator(hosts);
        let victim = h(1);
        let mut pids = Vec::new();
        for owner in 2..5u32 {
            let (pid, t1) = cluster
                .spawn(
                    t,
                    h(owner),
                    &SpritePath::new("/bin/sim"),
                    pages_for_mb(dirty_mb),
                    8,
                )
                .expect("spawn");
            let r = migrator
                .migrate(&mut cluster, t1, pid, victim)
                .expect("migrate");
            t = dirty_heap(&mut cluster, r.resumed_at, pid, dirty_mb);
            pids.push(pid);
        }
        // Owners are busy at home: each home machine has a 10-minute CPU
        // backlog the evicted job would queue behind.
        for owner in 2..5u32 {
            cluster
                .host_mut(h(owner))
                .cpu
                .acquire(t, SimDuration::from_secs(600));
        }
        cluster.host_mut(victim).console_active = true;
        let (reports, resettled) = if resettle {
            migrator
                .evict_all_reselecting(&mut cluster, t, victim, &[h(5), h(6), h(7)])
                .expect("evict")
        } else {
            (
                migrator.evict_all(&mut cluster, t, victim).expect("evict"),
                0,
            )
        };
        let reclaim = reports
            .last()
            .map(|r| r.resumed_at.elapsed_since(t))
            .unwrap_or(SimDuration::ZERO);
        // Each evicted job now runs a 60s CPU slice wherever it landed.
        let mut last_done = t;
        for (pid, r) in pids.iter().zip(&reports) {
            let done = cluster
                .run_cpu(r.resumed_at, *pid, SimDuration::from_secs(60))
                .expect("slice");
            last_done = last_done.max_of(done);
        }
        out.push(EvictionPolicyRow {
            policy: if resettle {
                "re-select idle host"
            } else {
                "straight home"
            },
            reclaim,
            resettled,
            work_completion: last_done.elapsed_since(t),
        });
    }
    out
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(0.5);
    let mut t = TableWriter::new(
        "A6 (ablation): eviction policy — 3 guests, busy homes, 3 spare idle hosts",
        &["policy", "reclaim(s)", "resettled", "60s-slice done in"],
    );
    for r in &rows {
        t.row(&[
            r.policy.to_string(),
            secs(r.reclaim),
            r.resettled.to_string(),
            secs(r.work_completion),
        ]);
    }
    t.note("the owner gets the machine back equally fast either way; the evicted jobs");
    t.note("finish far sooner on fresh idle hosts than queued behind their busy owners");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reselection_helps_the_jobs_not_the_reclaim() {
        let rows = run(0.25);
        let home = &rows[0];
        let resettle = &rows[1];
        assert_eq!(resettle.resettled, 3);
        assert_eq!(home.resettled, 0);
        // Reclaim times are in the same ballpark (within 2x).
        let ratio = resettle.reclaim.as_secs_f64() / home.reclaim.as_secs_f64();
        assert!((0.5..2.0).contains(&ratio), "reclaim ratio {ratio}");
        // But the evicted jobs' work completes much sooner when resettled
        // (the home machines had 10-minute backlogs).
        assert!(
            resettle.work_completion.as_secs_f64() * 3.0 < home.work_completion.as_secs_f64(),
            "resettled {} vs home {}",
            resettle.work_completion,
            home.work_completion
        );
    }
}
