//! A7 — Ablation: workstation autonomy (eviction vs. rsh-style squatting).
//!
//! The thesis's opening promise is that load sharing must "respect the
//! response-time demands of individual users" (Ch. 1.3). Remote-invocation
//! systems like rsh \[Com86\] place work on an idle machine and leave it
//! there; when the owner returns, the guests share the CPU for the rest of
//! their (possibly hour-long) lives — "the owner may be adversely affected
//! for a prolonged period of time" (Ch. 1). Sprite evicts instead. This
//! experiment measures the owner's interactive response time under both
//! policies.

use sprite_fs::SpritePath;
use sprite_sim::SimDuration;

use crate::support::{h, ms, secs, standard_cluster, standard_migrator, TableWriter};

/// One policy's outcome for the returning owner.
#[derive(Debug, Clone)]
pub struct AutonomyRow {
    /// Policy label.
    pub policy: &'static str,
    /// Foreign jobs on the machine when the owner returns.
    pub foreign_jobs: usize,
    /// Time to reclaim (zero when there is no eviction).
    pub reclaim: SimDuration,
    /// Mean response time of the owner's 200ms interactive bursts over the
    /// following minute.
    pub mean_response: SimDuration,
    /// Worst response.
    pub worst_response: SimDuration,
}

/// Runs the scenario: `foreign_jobs` CPU-bound guests, owner returns and
/// issues an interactive burst every second for a minute.
pub fn run(foreign_jobs: usize) -> Vec<AutonomyRow> {
    let mut out = Vec::new();
    for evict in [true, false] {
        let hosts = foreign_jobs + 3;
        let (mut cluster, mut t) = standard_cluster(hosts);
        let mut migrator = standard_migrator(hosts);
        let owner_host = h(1);
        let mut guests = Vec::new();
        for i in 0..foreign_jobs {
            let home = h(2 + i as u32);
            let (pid, t1) = cluster
                .spawn(t, home, &SpritePath::new("/bin/sim"), 16, 4)
                .expect("spawn");
            let r = migrator
                .migrate(&mut cluster, t1, pid, owner_host)
                .expect("migrate");
            t = r.resumed_at;
            guests.push(pid);
        }
        // The owner returns.
        cluster.host_mut(owner_host).console_active = true;
        let returned = t;
        let reclaim = if evict {
            let reports = migrator
                .evict_all(&mut cluster, t, owner_host)
                .expect("evict");
            let done = reports.last().map(|r| r.resumed_at).unwrap_or(t);
            done.elapsed_since(returned)
        } else {
            SimDuration::ZERO
        };
        // The owner types: a 200ms burst each second for a minute, measured
        // from the moment they sat down.
        let (owner_pid, _) = cluster
            .spawn(returned, owner_host, &SpritePath::new("/bin/sim"), 8, 4)
            .expect("owner shell");
        let (mean, worst) = if evict {
            // Clean machine: measure through the real (now idle) CPU.
            let mut responses = Vec::new();
            for i in 0..60u64 {
                let issue = returned + SimDuration::from_secs(i);
                let done = cluster
                    .run_cpu(issue, owner_pid, SimDuration::from_millis(200))
                    .expect("burst");
                responses.push(done.elapsed_since(issue));
            }
            let mean = responses.iter().copied().sum::<SimDuration>() / responses.len() as u64;
            (mean, responses.into_iter().max().unwrap())
        } else {
            // Guests stay and the CPU round-robins (our FCFS resource
            // cannot preempt, so model timesharing analytically): each
            // burst stretches by the competing-job count, and in the worst
            // case also waits out a full guest scheduling quantum.
            let slowdown = 1 + guests.len() as u64;
            let quantum = SimDuration::from_millis(100) * guests.len() as u64;
            let mean = SimDuration::from_millis(200) * slowdown;
            (mean, mean + quantum)
        };
        out.push(AutonomyRow {
            policy: if evict {
                "sprite (evict)"
            } else {
                "rsh-style (squat)"
            },
            foreign_jobs,
            reclaim,
            mean_response: mean,
            worst_response: worst,
        });
    }
    out
}

/// Renders the table.
pub fn table() -> String {
    let mut t = TableWriter::new(
        "A7 (ablation): owner's interactive response after returning",
        &[
            "policy",
            "guests",
            "reclaim(s)",
            "mean response(ms)",
            "worst(ms)",
        ],
    );
    for n in [1usize, 2, 4] {
        for r in run(n) {
            t.row(&[
                r.policy.to_string(),
                r.foreign_jobs.to_string(),
                secs(r.reclaim),
                ms(r.mean_response),
                ms(r.worst_response),
            ]);
        }
    }
    t.note("with eviction the owner types against an empty machine within a fraction");
    t.note("of a second; rsh-style squatters degrade every keystroke for their lifetime");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_protects_interactive_response() {
        let rows = run(3);
        let evict = &rows[0];
        let squat = &rows[1];
        // Evicted machine: essentially native response.
        assert!(
            evict.mean_response < SimDuration::from_millis(400),
            "evicted response {}",
            evict.mean_response
        );
        // Squatters: each keystroke queues behind guest CPU slices.
        assert!(
            squat.mean_response > evict.mean_response * 3,
            "squat {} vs evict {}",
            squat.mean_response,
            evict.mean_response
        );
        assert!(squat.worst_response > SimDuration::from_secs(1));
        // The price of autonomy: a short, bounded reclaim.
        assert!(evict.reclaim < SimDuration::from_secs(2));
    }
}
