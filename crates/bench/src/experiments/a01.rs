//! A1 — Ablation: client name caching.
//!
//! Nelson estimated that caching name-to-file translations at clients
//! "would reduce file server utilization by as much as a factor of two"
//! \[Nel88\], and the thesis concludes that "name caching is imperative if
//! the full benefits of migration are to be exploited" (Ch. 7). Sprite did
//! not have it; this ablation adds it and reruns the parallel-compilation
//! experiment to see how far the speedup ceiling moves.

use sprite_fs::FsConfig;
use sprite_net::CostModel;
use sprite_pmake::{prepare_sources, run_build, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::CompileWorkload;

use crate::support::{cluster_with, h, secs, standard_migrator, warmed_selector, TableWriter};

/// One configuration's build measurement.
#[derive(Debug, Clone)]
pub struct NameCacheRow {
    /// Whether client name caching was on.
    pub name_caching: bool,
    /// Hosts in the cluster.
    pub hosts: usize,
    /// Build makespan.
    pub makespan: SimDuration,
    /// Server lookups actually performed.
    pub lookups: u64,
    /// Opens served from client name caches.
    pub cache_hits: u64,
    /// File-server CPU utilization during the build.
    pub server_utilization: f64,
}

fn one(hosts: usize, name_caching: bool, seed: u64) -> NameCacheRow {
    let (mut cluster, t0) = cluster_with(
        CostModel::sun3(),
        hosts,
        FsConfig {
            client_name_caching: name_caching,
            ..FsConfig::default()
        },
    );
    let mut migrator = standard_migrator(hosts);
    let mut selector = warmed_selector(&mut cluster, hosts, 2);
    let graph = DepGraph::from_workload(
        &CompileWorkload {
            files: 24,
            mean_cpu: SimDuration::from_secs(10),
            link_cpu: SimDuration::from_secs(6),
            ..CompileWorkload::default()
        },
        &mut DetRng::seed_from(seed),
    );
    let t = prepare_sources(&mut cluster, &graph, h(1), t0).expect("prepare");
    cluster.fs.reset_stats();
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &graph,
        &PmakeConfig::default(),
        t,
    )
    .expect("build");
    let stats = cluster.fs.stats();
    let server = cluster.fs.server(h(0)).expect("server");
    NameCacheRow {
        name_caching,
        hosts,
        makespan: report.makespan,
        lookups: stats.lookups,
        cache_hits: stats.name_cache_hits,
        server_utilization: server.cpu.busy_time().as_secs_f64() / report.makespan.as_secs_f64(),
    }
}

/// Runs the ablation over cluster sizes.
pub fn run(host_counts: &[usize], seed: u64) -> Vec<NameCacheRow> {
    let mut rows = Vec::new();
    for &hosts in host_counts {
        rows.push(one(hosts, false, seed));
        rows.push(one(hosts, true, seed));
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[6, 12, 16], 61);
    let mut t = TableWriter::new(
        "A1 (ablation): client name caching during a 24-file pmake",
        &[
            "hosts",
            "name-cache",
            "makespan(s)",
            "lookups",
            "hits",
            "srv-util",
        ],
    );
    for r in &rows {
        t.row(&[
            r.hosts.to_string(),
            if r.name_caching { "on" } else { "off" }.to_string(),
            secs(r.makespan),
            r.lookups.to_string(),
            r.cache_hits.to_string(),
            format!("{:.1}%", r.server_utilization * 100.0),
        ]);
    }
    t.note("Nelson's prediction [Nel88]: name caching roughly halves server lookups;");
    t.note("Sprite shipped without it and the thesis calls it imperative at scale");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_caching_cuts_lookups_and_helps_the_build() {
        let rows = run(&[10], 3);
        let off = &rows[0];
        let on = &rows[1];
        assert!(on.cache_hits > 30, "hits {}", on.cache_hits);
        // Creates (object files, per-process swap files) still pay full
        // lookups, so the drop is on the open path only.
        assert!(
            (on.lookups as f64) < 0.85 * off.lookups as f64,
            "lookups {} vs {}",
            on.lookups,
            off.lookups
        );
        assert!(on.server_utilization < off.server_utilization);
        assert!(on.makespan <= off.makespan);
    }
}
