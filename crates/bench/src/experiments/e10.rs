//! E10 — Host-selection architectures head to head (Table 6.2).
//!
//! Drives the four architectures over the same synthetic cluster: periodic
//! load reports from every host, a stream of selection requests, and
//! releases when the borrowed hosts are done. Reported per architecture and
//! cluster size: selection latency, control messages per selection, grant
//! rate and staleness conflicts — the dimensions on which the thesis
//! concludes a central server wins (its measured select+release was 56 ms
//! \[DO91\]).

use sprite_hostsel::{
    AvailabilityPolicy, CentralServer, GossipDissemination, HostInfo, HostSelector, MulticastQuery,
    Probabilistic, ShardedCoordinator, SharedFileBoard,
};
use sprite_net::{CostModel, HostId, Transport};
use sprite_sim::{DetRng, OnlineStats, SimDuration, SimTime};
use sprite_workloads::{ActivityModel, ActivityTrace};

use crate::support::TableWriter;

/// One (architecture, cluster size) measurement.
#[derive(Debug, Clone)]
pub struct ArchRow {
    /// Architecture name.
    pub name: &'static str,
    /// Cluster size.
    pub hosts: usize,
    /// Selection requests issued.
    pub requests: u64,
    /// Fraction granted.
    pub grant_rate: f64,
    /// Staleness conflicts per request.
    pub conflicts_per_request: f64,
    /// Mean selection latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Control messages per request (updates + selection traffic).
    pub messages_per_request: f64,
    /// Mean age (seconds) of the cached entry each grant acted on; zero for
    /// architectures that consult the ground truth directly.
    pub staleness_s: f64,
    /// Placement quality: granted host's true idle time as a percentage of
    /// the best truly-available host's idle time at grant (100 = perfect).
    pub quality_pct: f64,
    /// Total host-selection wire bytes over the run (reports + queries).
    pub wire_bytes: u64,
}

/// Drives one selector for `duration` over `hosts` hosts.
pub fn drive(
    selector: &mut dyn HostSelector,
    hosts: usize,
    duration: SimDuration,
    seed: u64,
) -> ArchRow {
    let mut net = Transport::new(CostModel::sun3(), hosts);
    let mut rng = DetRng::seed_from(seed);
    let model = ActivityModel::default();
    // Start mid-morning on a weekday so ~1/3 of hosts are user-active.
    let start = SimTime::ZERO + SimDuration::from_secs(2 * 86_400 + 10 * 3_600);
    let traces: Vec<ActivityTrace> = (0..hosts)
        .map(|i| {
            ActivityTrace::generate(
                &mut rng,
                &model,
                HostId::new(i as u32),
                duration + SimDuration::from_secs(3 * 86_400 + 11 * 3_600),
            )
        })
        .collect();
    let truth_at = |t: SimTime, extra_load: &dyn Fn(HostId) -> f64| -> Vec<HostInfo> {
        traces
            .iter()
            .map(|tr| HostInfo {
                host: tr.host,
                load: extra_load(tr.host),
                idle: tr.idle_duration_at(t),
                console_active: tr.active_at(t),
            })
            .collect()
    };
    let mut held: Vec<(SimTime, HostId, HostId)> = Vec::new(); // (release_at, requester, host)
                                                               // Placement quality is judged against the same default policy every E10
                                                               // cell hands its selector.
    let policy = AvailabilityPolicy::default();
    let mut quality = OnlineStats::new();
    let report_every = SimDuration::from_secs(5);
    let request_every = SimDuration::from_secs(10);
    let mut t = start;
    let mut next_request = start + request_every;
    let end = start + duration;
    while t < end {
        // Periodic load-daemon reports.
        let held_hosts: Vec<HostId> = held.iter().map(|(_, _, hh)| *hh).collect();
        let loaded = move |hid: HostId| {
            if held_hosts.contains(&hid) {
                1.0
            } else {
                0.0
            }
        };
        let world = truth_at(t, &loaded);
        for info in &world {
            selector.report(&mut net, t, *info);
        }
        // Releases that came due.
        let due: Vec<(SimTime, HostId, HostId)> =
            held.iter().copied().filter(|(at, _, _)| *at <= t).collect();
        held.retain(|(at, _, _)| *at > t);
        for (at, req, hh) in due {
            selector.release(&mut net, at, req, hh);
        }
        // Selection requests from random user-active hosts.
        while next_request <= t {
            let requester = HostId::new(rng.uniform_u64(hosts as u64) as u32);
            let (granted, done) = selector.select(&mut net, next_request, requester, &world);
            if let Some(hh) = granted {
                // How good was the pick? Compare the granted host's true
                // idle time against the best truly-available host's (the
                // `world` snapshot already loads held hosts, so they are
                // ineligible on both sides of the ratio).
                let chosen_idle = world
                    .iter()
                    .find(|i| i.host == hh)
                    .map(|i| i.idle.as_secs_f64())
                    .unwrap_or(0.0);
                let best_idle = world
                    .iter()
                    .filter(|i| i.host != requester && policy.is_available(i))
                    .map(|i| i.idle.as_secs_f64())
                    .fold(0.0, f64::max);
                quality.record(if best_idle > 0.0 {
                    (chosen_idle / best_idle).min(1.0)
                } else {
                    1.0
                });
                let hold = rng.exponential(SimDuration::from_secs(60));
                held.push((done + hold, requester, hh));
            }
            next_request += request_every;
        }
        t += report_every;
    }
    let stats = selector.stats();
    ArchRow {
        name: selector.name(),
        hosts,
        requests: stats.requests,
        grant_rate: stats.granted as f64 / stats.requests.max(1) as f64,
        conflicts_per_request: stats.conflicts as f64 / stats.requests.max(1) as f64,
        mean_latency_ms: stats.select_latency.mean() * 1e3,
        messages_per_request: stats.messages as f64 / stats.requests.max(1) as f64,
        staleness_s: stats.info_age.mean(),
        quality_pct: quality.mean() * 100.0,
        wire_bytes: net.stats().bytes,
    }
}

/// The six architectures, in the table's canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// Central availability server (Sprite's winner).
    Central,
    /// Shared-file bulletin board.
    SharedFile,
    /// Probabilistic gossip.
    Probabilistic,
    /// Multicast query.
    Multicast,
    /// Hosts hashed across `c` coordinator daemons.
    Sharded,
    /// Batched load-vector gossip with local allocation-free selection.
    Gossip,
}

/// Canonical architecture order for the matrix.
pub const ARCHS: [ArchKind; 6] = [
    ArchKind::Central,
    ArchKind::SharedFile,
    ArchKind::Probabilistic,
    ArchKind::Multicast,
    ArchKind::Sharded,
    ArchKind::Gossip,
];

/// Coordinator-daemon count for a sharded cell: one per 64 hosts, at least
/// two (so sharding actually happens), at most 64, never more than hosts.
pub fn sharded_coordinators(hosts: usize) -> usize {
    (hosts / 64).clamp(2, 64).min(hosts)
}

/// Builds the gossip selector an E10 cell drives: fanout 2, batches of 8,
/// refresh floor every 6th report (reports arrive every 5 s, so an
/// unchanged host still re-gossips at least twice a minute).
pub fn gossip_selector(hosts: usize, policy: AvailabilityPolicy, seed: u64) -> GossipDissemination {
    let mut g = GossipDissemination::new(hosts, 2, 8, policy, seed ^ 0x71d3);
    g.set_refresh_every(6);
    g
}

/// Drives one `(architecture, cluster size)` cell. Each cell builds its own
/// selector and network from the seed, so cells are independent — the
/// parallel experiment runner executes them on separate threads and the
/// result is identical to the serial sweep.
pub fn drive_kind(kind: ArchKind, hosts: usize, duration: SimDuration, seed: u64) -> ArchRow {
    let policy = AvailabilityPolicy::default();
    let mut selector: Box<dyn HostSelector> = match kind {
        ArchKind::Central => Box::new(CentralServer::new(HostId::new(0), policy)),
        ArchKind::SharedFile => Box::new(SharedFileBoard::new(HostId::new(0), policy)),
        ArchKind::Probabilistic => Box::new(Probabilistic::new(hosts, 4, policy, seed ^ 0x9e37)),
        ArchKind::Multicast => Box::new(MulticastQuery::new(policy)),
        ArchKind::Sharded => Box::new(ShardedCoordinator::new(
            hosts,
            sharded_coordinators(hosts),
            policy,
        )),
        ArchKind::Gossip => Box::new(gossip_selector(hosts, policy, seed)),
    };
    drive(selector.as_mut(), hosts, duration, seed)
}

/// Runs the full matrix serially.
pub fn run(host_counts: &[usize], duration: SimDuration, seed: u64) -> Vec<ArchRow> {
    let mut rows = Vec::new();
    for &n in host_counts {
        for kind in ARCHS {
            rows.push(drive_kind(kind, n, duration, seed));
        }
    }
    rows
}

/// Cluster sizes in the full table.
pub const FULL_SIZES: [usize; 4] = [10, 50, 100, 200];
/// Simulated duration of each cell in the full table.
pub const FULL_DURATION_SECS: u64 = 1800;
/// Seed for the full table.
pub const FULL_SEED: u64 = 31;

/// Renders the table from the matrix rows (in canonical order).
pub fn render(rows: &[ArchRow]) -> String {
    let mut t = TableWriter::new(
        "E10: host-selection architectures (30 simulated minutes each)",
        &[
            "architecture",
            "hosts",
            "requests",
            "granted",
            "conflicts/req",
            "latency(ms)",
            "msgs/req",
        ],
    );
    for r in rows {
        t.row(&[
            r.name.to_string(),
            r.hosts.to_string(),
            r.requests.to_string(),
            format!("{:.0}%", r.grant_rate * 100.0),
            format!("{:.2}", r.conflicts_per_request),
            format!("{:.2}", r.mean_latency_ms),
            format!("{:.1}", r.messages_per_request),
        ]);
    }
    t.note("paper: central server selects in ~tens of ms and scales best; the shared file");
    t.note("hammers the file server as clusters grow; gossip is cheap but stale; multicast");
    t.note("replies scale with cluster size");
    t.render()
}

/// Renders the table (serial path).
pub fn table() -> String {
    let rows = run(
        &FULL_SIZES,
        SimDuration::from_secs(FULL_DURATION_SECS),
        FULL_SEED,
    );
    render(&rows)
}

/// Cluster sizes in the decentralization sweep (100 → 10 000 hosts).
pub const SWEEP_SIZES: [usize; 3] = [100, 1000, 10_000];
/// Architectures raced in the sweep: the thesis's winner against the two
/// decentralized designs that replace it at scale.
pub const SWEEP_ARCHS: [ArchKind; 3] = [ArchKind::Central, ArchKind::Sharded, ArchKind::Gossip];
/// Simulated duration of each sweep cell.
pub const SWEEP_DURATION_SECS: u64 = 1800;
/// Seed for the sweep.
pub const SWEEP_SEED: u64 = 31;

/// Runs the `sizes × SWEEP_ARCHS` sweep on up to `jobs` worker threads.
///
/// Cells are independent (each builds its own selector, transport and RNG
/// from the seed), so workers pull cell indices from a shared cursor and
/// write results back by index — the returned rows are in canonical order
/// and byte-identical to a serial run regardless of `jobs`.
pub fn run_sweep(sizes: &[usize], duration: SimDuration, seed: u64, jobs: usize) -> Vec<ArchRow> {
    let cells: Vec<(usize, ArchKind)> = sizes
        .iter()
        .flat_map(|&n| SWEEP_ARCHS.iter().map(move |&k| (n, k)))
        .collect();
    let workers = jobs.max(1).min(cells.len().max(1));
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<ArchRow>>> =
        cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(hosts, kind)) = cells.get(i) else {
                    break;
                };
                let row = drive_kind(kind, hosts, duration, seed);
                *slots[i].lock().expect("sweep slot poisoned") = Some(row);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep slot poisoned")
                .expect("sweep cell not driven")
        })
        .collect()
}

/// Renders the sweep table: staleness vs. placement quality vs. latency vs.
/// wire cost, the axes on which decentralization trades against the thesis's
/// central server.
pub fn render_sweep(rows: &[ArchRow]) -> String {
    let mut t = TableWriter::new(
        "E10 sweep: decentralized host selection at scale (30 simulated minutes each)",
        &[
            "architecture",
            "hosts",
            "requests",
            "granted",
            "staleness(s)",
            "quality",
            "latency(ms)",
            "msgs/req",
            "wire(KB)",
        ],
    );
    for r in rows {
        t.row(&[
            r.name.to_string(),
            r.hosts.to_string(),
            r.requests.to_string(),
            format!("{:.0}%", r.grant_rate * 100.0),
            format!("{:.1}", r.staleness_s),
            format!("{:.0}%", r.quality_pct),
            format!("{:.3}", r.mean_latency_ms),
            format!("{:.1}", r.messages_per_request),
            format!("{}", r.wire_bytes / 1024),
        ]);
    }
    t.note("gossip selects locally in microseconds on slightly staler state; the sharded");
    t.note("coordinators keep central-grade freshness while splitting the daemon's load;");
    t.note("the central server's queue is the scaling wall the thesis never had to hit");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_server_is_fast_and_scales() {
        let rows = run(&[20, 80], SimDuration::from_secs(300), 3);
        let central: Vec<&ArchRow> = rows.iter().filter(|r| r.name == "central-server").collect();
        let shared: Vec<&ArchRow> = rows.iter().filter(|r| r.name == "shared-file").collect();
        // Central select latency is tens of ms and roughly size-independent.
        for c in &central {
            assert!(
                c.mean_latency_ms < 60.0,
                "central latency {}",
                c.mean_latency_ms
            );
        }
        // The shared file slows down with cluster size and is slower than
        // the central server at scale.
        assert!(shared[1].mean_latency_ms > shared[0].mean_latency_ms);
        assert!(shared[1].mean_latency_ms > central[1].mean_latency_ms);
    }

    #[test]
    fn multicast_traffic_grows_with_cluster() {
        let rows = run(&[20, 80], SimDuration::from_secs(300), 5);
        let mc: Vec<&ArchRow> = rows.iter().filter(|r| r.name == "multicast").collect();
        assert!(mc[1].messages_per_request > 2.0 * mc[0].messages_per_request);
    }

    #[test]
    fn gossip_selects_fastest_but_floods_updates() {
        let rows = run(&[40], SimDuration::from_secs(300), 7);
        let prob = rows.iter().find(|r| r.name == "probabilistic").unwrap();
        let central = rows.iter().find(|r| r.name == "central-server").unwrap();
        // Local selection beats a server round trip...
        assert!(prob.mean_latency_ms < central.mean_latency_ms);
        // ...but the gossip fabric pays continuous per-host update traffic,
        // where the central server only hears about idle/busy transitions
        // [TL88]. This is Table 6.2's core trade-off.
        assert!(
            prob.messages_per_request > 3.0 * central.messages_per_request,
            "gossip {} msgs/req vs central {}",
            prob.messages_per_request,
            central.messages_per_request
        );
    }

    #[test]
    fn decentralized_archs_kill_the_central_round_trip() {
        let rows = run(&[60], SimDuration::from_secs(300), 11);
        let central = rows.iter().find(|r| r.name == "central-server").unwrap();
        let sharded = rows.iter().find(|r| r.name == "sharded").unwrap();
        let gossip = rows.iter().find(|r| r.name == "gossip").unwrap();
        // Gossip selection is a local cache scan — no round trip at all.
        assert!(
            gossip.mean_latency_ms < 0.1 * central.mean_latency_ms,
            "gossip {} ms vs central {} ms",
            gossip.mean_latency_ms,
            central.mean_latency_ms
        );
        // The price is acting on older information than the server's
        // freshly-reported table.
        assert!(
            gossip.staleness_s > central.staleness_s,
            "gossip staleness {} s vs central {} s",
            gossip.staleness_s,
            central.staleness_s
        );
        // Sharded keeps server-grade freshness while splitting the queue,
        // so its round trip stays in the central server's ballpark.
        assert!(
            sharded.mean_latency_ms < 1.5 * central.mean_latency_ms,
            "sharded {} ms vs central {} ms",
            sharded.mean_latency_ms,
            central.mean_latency_ms
        );
        // Both decentralized designs still place well.
        assert!(
            sharded.quality_pct > 50.0,
            "sharded quality {}",
            sharded.quality_pct
        );
        assert!(
            gossip.quality_pct > 30.0,
            "gossip quality {}",
            gossip.quality_pct
        );
    }

    #[test]
    fn sweep_rows_are_jobs_invariant() {
        let d = SimDuration::from_secs(300);
        let serial = run_sweep(&[50], d, 13, 1);
        let par = run_sweep(&[50], d, 13, 4);
        assert_eq!(render_sweep(&serial), render_sweep(&par));
    }

    #[test]
    fn everyone_grants_most_requests_in_an_idle_cluster() {
        let rows = run(&[30], SimDuration::from_secs(300), 9);
        for r in &rows {
            assert!(
                r.grant_rate > 0.5,
                "{} grant rate {:.2} too low",
                r.name,
                r.grant_rate
            );
        }
    }
}
