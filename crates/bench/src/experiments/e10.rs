//! E10 — Host-selection architectures head to head (Table 6.2).
//!
//! Drives the four architectures over the same synthetic cluster: periodic
//! load reports from every host, a stream of selection requests, and
//! releases when the borrowed hosts are done. Reported per architecture and
//! cluster size: selection latency, control messages per selection, grant
//! rate and staleness conflicts — the dimensions on which the thesis
//! concludes a central server wins (its measured select+release was 56 ms
//! \[DO91\]).

use sprite_hostsel::{
    AvailabilityPolicy, CentralServer, HostInfo, HostSelector, MulticastQuery, Probabilistic,
    SharedFileBoard,
};
use sprite_net::{CostModel, HostId, Transport};
use sprite_sim::{DetRng, SimDuration, SimTime};
use sprite_workloads::{ActivityModel, ActivityTrace};

use crate::support::TableWriter;

/// One (architecture, cluster size) measurement.
#[derive(Debug, Clone)]
pub struct ArchRow {
    /// Architecture name.
    pub name: &'static str,
    /// Cluster size.
    pub hosts: usize,
    /// Selection requests issued.
    pub requests: u64,
    /// Fraction granted.
    pub grant_rate: f64,
    /// Staleness conflicts per request.
    pub conflicts_per_request: f64,
    /// Mean selection latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Control messages per request (updates + selection traffic).
    pub messages_per_request: f64,
}

/// Drives one selector for `duration` over `hosts` hosts.
pub fn drive(
    selector: &mut dyn HostSelector,
    hosts: usize,
    duration: SimDuration,
    seed: u64,
) -> ArchRow {
    let mut net = Transport::new(CostModel::sun3(), hosts);
    let mut rng = DetRng::seed_from(seed);
    let model = ActivityModel::default();
    // Start mid-morning on a weekday so ~1/3 of hosts are user-active.
    let start = SimTime::ZERO + SimDuration::from_secs(2 * 86_400 + 10 * 3_600);
    let traces: Vec<ActivityTrace> = (0..hosts)
        .map(|i| {
            ActivityTrace::generate(
                &mut rng,
                &model,
                HostId::new(i as u32),
                duration + SimDuration::from_secs(3 * 86_400 + 11 * 3_600),
            )
        })
        .collect();
    let truth_at = |t: SimTime, extra_load: &dyn Fn(HostId) -> f64| -> Vec<HostInfo> {
        traces
            .iter()
            .map(|tr| HostInfo {
                host: tr.host,
                load: extra_load(tr.host),
                idle: tr.idle_duration_at(t),
                console_active: tr.active_at(t),
            })
            .collect()
    };
    let mut held: Vec<(SimTime, HostId, HostId)> = Vec::new(); // (release_at, requester, host)
    let report_every = SimDuration::from_secs(5);
    let request_every = SimDuration::from_secs(10);
    let mut t = start;
    let mut next_request = start + request_every;
    let end = start + duration;
    while t < end {
        // Periodic load-daemon reports.
        let held_hosts: Vec<HostId> = held.iter().map(|(_, _, hh)| *hh).collect();
        let loaded = move |hid: HostId| {
            if held_hosts.contains(&hid) {
                1.0
            } else {
                0.0
            }
        };
        let world = truth_at(t, &loaded);
        for info in &world {
            selector.report(&mut net, t, *info);
        }
        // Releases that came due.
        let due: Vec<(SimTime, HostId, HostId)> =
            held.iter().copied().filter(|(at, _, _)| *at <= t).collect();
        held.retain(|(at, _, _)| *at > t);
        for (at, req, hh) in due {
            selector.release(&mut net, at, req, hh);
        }
        // Selection requests from random user-active hosts.
        while next_request <= t {
            let requester = HostId::new(rng.uniform_u64(hosts as u64) as u32);
            let (granted, done) = selector.select(&mut net, next_request, requester, &world);
            if let Some(hh) = granted {
                let hold = rng.exponential(SimDuration::from_secs(60));
                held.push((done + hold, requester, hh));
            }
            next_request += request_every;
        }
        t += report_every;
    }
    let stats = selector.stats();
    ArchRow {
        name: selector.name(),
        hosts,
        requests: stats.requests,
        grant_rate: stats.granted as f64 / stats.requests.max(1) as f64,
        conflicts_per_request: stats.conflicts as f64 / stats.requests.max(1) as f64,
        mean_latency_ms: stats.select_latency.mean() * 1e3,
        messages_per_request: stats.messages as f64 / stats.requests.max(1) as f64,
    }
}

/// The four architectures, in the table's canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// Central availability server (Sprite's winner).
    Central,
    /// Shared-file bulletin board.
    SharedFile,
    /// Probabilistic gossip.
    Probabilistic,
    /// Multicast query.
    Multicast,
}

/// Canonical architecture order for the matrix.
pub const ARCHS: [ArchKind; 4] = [
    ArchKind::Central,
    ArchKind::SharedFile,
    ArchKind::Probabilistic,
    ArchKind::Multicast,
];

/// Drives one `(architecture, cluster size)` cell. Each cell builds its own
/// selector and network from the seed, so cells are independent — the
/// parallel experiment runner executes them on separate threads and the
/// result is identical to the serial sweep.
pub fn drive_kind(kind: ArchKind, hosts: usize, duration: SimDuration, seed: u64) -> ArchRow {
    let policy = AvailabilityPolicy::default();
    let mut selector: Box<dyn HostSelector> = match kind {
        ArchKind::Central => Box::new(CentralServer::new(HostId::new(0), policy)),
        ArchKind::SharedFile => Box::new(SharedFileBoard::new(HostId::new(0), policy)),
        ArchKind::Probabilistic => Box::new(Probabilistic::new(hosts, 4, policy, seed ^ 0x9e37)),
        ArchKind::Multicast => Box::new(MulticastQuery::new(policy)),
    };
    drive(selector.as_mut(), hosts, duration, seed)
}

/// Runs the full matrix serially.
pub fn run(host_counts: &[usize], duration: SimDuration, seed: u64) -> Vec<ArchRow> {
    let mut rows = Vec::new();
    for &n in host_counts {
        for kind in ARCHS {
            rows.push(drive_kind(kind, n, duration, seed));
        }
    }
    rows
}

/// Cluster sizes in the full table.
pub const FULL_SIZES: [usize; 4] = [10, 50, 100, 200];
/// Simulated duration of each cell in the full table.
pub const FULL_DURATION_SECS: u64 = 1800;
/// Seed for the full table.
pub const FULL_SEED: u64 = 31;

/// Renders the table from the matrix rows (in canonical order).
pub fn render(rows: &[ArchRow]) -> String {
    let mut t = TableWriter::new(
        "E10: host-selection architectures (30 simulated minutes each)",
        &[
            "architecture",
            "hosts",
            "requests",
            "granted",
            "conflicts/req",
            "latency(ms)",
            "msgs/req",
        ],
    );
    for r in rows {
        t.row(&[
            r.name.to_string(),
            r.hosts.to_string(),
            r.requests.to_string(),
            format!("{:.0}%", r.grant_rate * 100.0),
            format!("{:.2}", r.conflicts_per_request),
            format!("{:.2}", r.mean_latency_ms),
            format!("{:.1}", r.messages_per_request),
        ]);
    }
    t.note("paper: central server selects in ~tens of ms and scales best; the shared file");
    t.note("hammers the file server as clusters grow; gossip is cheap but stale; multicast");
    t.note("replies scale with cluster size");
    t.render()
}

/// Renders the table (serial path).
pub fn table() -> String {
    let rows = run(
        &FULL_SIZES,
        SimDuration::from_secs(FULL_DURATION_SECS),
        FULL_SEED,
    );
    render(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_server_is_fast_and_scales() {
        let rows = run(&[20, 80], SimDuration::from_secs(300), 3);
        let central: Vec<&ArchRow> = rows.iter().filter(|r| r.name == "central-server").collect();
        let shared: Vec<&ArchRow> = rows.iter().filter(|r| r.name == "shared-file").collect();
        // Central select latency is tens of ms and roughly size-independent.
        for c in &central {
            assert!(
                c.mean_latency_ms < 60.0,
                "central latency {}",
                c.mean_latency_ms
            );
        }
        // The shared file slows down with cluster size and is slower than
        // the central server at scale.
        assert!(shared[1].mean_latency_ms > shared[0].mean_latency_ms);
        assert!(shared[1].mean_latency_ms > central[1].mean_latency_ms);
    }

    #[test]
    fn multicast_traffic_grows_with_cluster() {
        let rows = run(&[20, 80], SimDuration::from_secs(300), 5);
        let mc: Vec<&ArchRow> = rows.iter().filter(|r| r.name == "multicast").collect();
        assert!(mc[1].messages_per_request > 2.0 * mc[0].messages_per_request);
    }

    #[test]
    fn gossip_selects_fastest_but_floods_updates() {
        let rows = run(&[40], SimDuration::from_secs(300), 7);
        let prob = rows.iter().find(|r| r.name == "probabilistic").unwrap();
        let central = rows.iter().find(|r| r.name == "central-server").unwrap();
        // Local selection beats a server round trip...
        assert!(prob.mean_latency_ms < central.mean_latency_ms);
        // ...but the gossip fabric pays continuous per-host update traffic,
        // where the central server only hears about idle/busy transitions
        // [TL88]. This is Table 6.2's core trade-off.
        assert!(
            prob.messages_per_request > 3.0 * central.messages_per_request,
            "gossip {} msgs/req vs central {}",
            prob.messages_per_request,
            central.messages_per_request
        );
    }

    #[test]
    fn everyone_grants_most_requests_in_an_idle_cluster() {
        let rows = run(&[30], SimDuration::from_secs(300), 9);
        for r in &rows {
            assert!(
                r.grant_rate > 0.5,
                "{} grant rate {:.2} too low",
                r.name,
                r.grant_rate
            );
        }
    }
}
