//! E11 — A month in the life of the cluster (Ch. 8 production study).
//!
//! Thirty simulated days on a 50-workstation cluster: users come and go by
//! the diurnal activity traces; while at the console they launch jobs,
//! which the system exec-migrates to idle hosts chosen by the central
//! server; when an owner returns to a machine harbouring foreign work,
//! eviction kicks in. The thesis's month-long numbers this mirrors: total
//! processor utilization around 2.3%, most remote execution at exec time,
//! evictions rare but prompt.
//!
//! Jobs execute as one-minute CPU bursts so eviction can interrupt them —
//! the remaining bursts simply continue on the home machine.
//!
//! The driver is the event engine: one `schedule_periodic` minute tick
//! carries the whole study (the periodic path re-arms a single boxed
//! handler instead of allocating one closure per simulated minute). The
//! month is split into independent replications with [`DetRng::fork`]ed
//! seeds so the experiment runner can execute them on separate threads and
//! [`merge`] the reports deterministically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sprite_fs::SpritePath;
use sprite_hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
use sprite_kernel::{Cluster, ProcessId};
use sprite_net::HostId;
use sprite_sim::{Checkpoint, DetRng, Engine, SimDuration, SimTime};
use sprite_workloads::{ActivityModel, ActivityTrace, DAY};

use crate::support::{h, standard_cluster, standard_migrator, TableWriter};

/// Outcome of the month-long run (or of one replication of it).
#[derive(Debug, Clone, Default)]
pub struct MonthReport {
    /// Hosts simulated.
    pub hosts: usize,
    /// Simulated days.
    pub days: u64,
    /// Jobs launched.
    pub jobs: u64,
    /// Jobs placed on a remote host at exec time.
    pub remote_jobs: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Eviction latency average (seconds).
    pub mean_eviction_secs: f64,
    /// Total CPU consumed by jobs (seconds).
    pub cpu_seconds: f64,
    /// Overall processor utilization across the cluster.
    pub utilization: f64,
    /// Migrations of every kind (from the migration engine).
    pub migrations: u64,
    /// Events the simulation engine executed to drive this run.
    pub sim_events: u64,
    /// Peak live processes in the cluster's PCB slab.
    pub proc_slab_high_water: u64,
    /// Peak live streams in the FS stream table.
    pub stream_slab_high_water: u64,
    /// Slab lookups rejected for a stale generation (should stay 0).
    pub stale_handle_lookups: u64,
    /// Per-op RPC traffic recorded by the typed transport.
    pub rpc: sprite_net::RpcTable,
    /// Raw network message total (equals `rpc.total_messages()`).
    pub net_messages: u64,
    /// Raw network byte total (equals `rpc.total_bytes()`).
    pub net_bytes: u64,
    /// Host selections requested (one per job launch).
    pub hostsel_requests: u64,
    /// Mean host-selection latency in milliseconds — the round trip for
    /// server architectures, the local cache scan for gossip.
    pub hostsel_select_mean_ms: f64,
    /// Wire bytes spent on host selection (all `hostsel-*` ops combined).
    pub hostsel_bytes: u64,
}

struct ActiveJob {
    pid: ProcessId,
    remaining: SimDuration,
    granted_host: Option<HostId>,
}

/// Everything a replication mutates, owned by the event engine's state.
struct World {
    cluster: Cluster,
    migrator: sprite_core::Migrator,
    selector: Box<dyn HostSelector>,
    rng: DetRng,
    traces: Vec<ActivityTrace>,
    jobs: Vec<ActiveJob>,
    // (completion, job index) for in-flight bursts.
    bursts: BinaryHeap<Reverse<(SimTime, usize)>>,
    was_active: Vec<bool>,
    burst: SimDuration,
    report: MonthReport,
    eviction_latency_total: f64,
}

/// One simulated minute: selector reports, owner-return evictions, burst
/// completions, and new job launches — the same order the thesis's trace
/// replay applies them.
fn minute_tick(w: &mut World, t: SimTime) {
    // Console state + selector reports.
    let world: Vec<HostInfo> = w
        .traces
        .iter()
        .map(|tr| HostInfo {
            host: tr.host,
            load: w.cluster.host(tr.host).resident().len() as f64,
            idle: tr.idle_duration_at(t),
            console_active: tr.active_at(t),
        })
        .collect();
    for info in &world {
        w.cluster.host_mut(info.host).console_active = info.console_active;
        w.selector.report(&mut w.cluster.net, t, *info);
    }
    // Owners returning to hosts with foreign processes trigger eviction.
    for i in 0..w.traces.len() {
        let active = w.traces[i].active_at(t);
        if active && !w.was_active[i] && w.cluster.foreign_on(h(i as u32)).next().is_some() {
            let reports = w
                .migrator
                .evict_all(&mut w.cluster, t, h(i as u32))
                .expect("evict");
            for r in &reports {
                w.eviction_latency_total += r.total_time.as_secs_f64();
                w.report.evictions += 1;
            }
        }
        w.was_active[i] = active;
    }
    // Burst completions due by now.
    while let Some(&Reverse((done, idx))) = w.bursts.peek() {
        if done > t {
            break;
        }
        w.bursts.pop();
        let job = &mut w.jobs[idx];
        if job.remaining.is_zero() {
            // Job finished: exit and release its host.
            let t2 = w.cluster.exit(done, job.pid, 0).expect("exit");
            if let Some(gh) = job.granted_host.take() {
                w.selector
                    .release(&mut w.cluster.net, t2, job.pid.home(), gh);
            }
        } else {
            let chunk = job.remaining.min(w.burst);
            job.remaining -= chunk;
            w.report.cpu_seconds += chunk.as_secs_f64();
            let done2 = w.cluster.run_cpu(done, job.pid, chunk).expect("burst");
            w.bursts.push(Reverse((done2, idx)));
        }
    }
    // Active users launch jobs now and then (~a few per hour).
    for ti in 0..w.traces.len() {
        if w.traces[ti].active_at(t) && w.rng.chance(0.04) {
            let home = w.traces[ti].host;
            let (pid, t1) = w
                .cluster
                .spawn(t, home, &SpritePath::new("/bin/sim"), 32, 8)
                .expect("spawn");
            w.report.jobs += 1;
            // Exec-time placement through the central server.
            let (choice, t2) = w.selector.select(&mut w.cluster.net, t1, home, &world);
            let (start_at, granted) = match choice {
                Some(target) => {
                    let r = w
                        .migrator
                        .exec_migrate(
                            &mut w.cluster,
                            t2,
                            pid,
                            target,
                            &SpritePath::new("/bin/sim"),
                            32,
                            8,
                        )
                        .expect("exec migrate");
                    w.report.remote_jobs += 1;
                    (r.resumed_at, Some(target))
                }
                None => (t2, None),
            };
            let cpu = w
                .rng
                .jittered(SimDuration::from_secs(100), SimDuration::from_secs(40))
                .max(SimDuration::from_secs(10));
            w.jobs.push(ActiveJob {
                pid,
                remaining: cpu,
                granted_host: granted,
            });
            let idx = w.jobs.len() - 1;
            w.bursts.push(Reverse((start_at, idx)));
        }
    }
}

/// Runs one replication from an explicit RNG (forked by the caller for
/// parallel replications). Keep `hosts`/`days` small in tests; the full
/// table merges five 6-day replications over 50 hosts.
pub fn run_seeded(hosts: usize, days: u64, rng: DetRng) -> MonthReport {
    run_inner(hosts, days, rng, None, default_selector()).0
}

/// The selector the golden month uses: the thesis's central server on host 0.
pub fn default_selector() -> Box<dyn HostSelector> {
    Box::new(CentralServer::new(h(0), AvailabilityPolicy::default()))
}

/// Runs one replication through an arbitrary selection architecture — the
/// macrobench drives the same month through gossip dissemination to price
/// the central server out of the hot path.
pub fn run_seeded_with(
    hosts: usize,
    days: u64,
    rng: DetRng,
    selector: Box<dyn HostSelector>,
) -> MonthReport {
    run_inner(hosts, days, rng, None, selector).0
}

/// Runs one replication with the engine's audit hook armed: every `every`
/// executed events the cluster's [`Cluster::digest`] is checkpointed. The
/// returned stream is what `experiments --audit` compares across `--jobs`
/// values — identical replication, identical stream, regardless of which
/// thread ran it.
pub fn run_audited(
    hosts: usize,
    days: u64,
    rng: DetRng,
    every: u64,
) -> (MonthReport, Vec<Checkpoint>) {
    run_inner(hosts, days, rng, Some(every), default_selector())
}

/// [`run_audited`] through an arbitrary selection architecture.
pub fn run_audited_with(
    hosts: usize,
    days: u64,
    rng: DetRng,
    every: u64,
    selector: Box<dyn HostSelector>,
) -> (MonthReport, Vec<Checkpoint>) {
    run_inner(hosts, days, rng, Some(every), selector)
}

fn run_inner(
    hosts: usize,
    days: u64,
    mut rng: DetRng,
    audit_every: Option<u64>,
    selector: Box<dyn HostSelector>,
) -> (MonthReport, Vec<Checkpoint>) {
    let (cluster, setup_done) = standard_cluster(hosts);
    let model = ActivityModel::default();
    let horizon = SimDuration::from_secs(days * DAY);
    let traces: Vec<ActivityTrace> = (0..hosts)
        .map(|i| ActivityTrace::generate(&mut rng, &model, h(i as u32), horizon))
        .collect();

    let mut world = World {
        cluster,
        migrator: standard_migrator(hosts),
        selector,
        rng,
        traces,
        jobs: Vec::new(),
        bursts: BinaryHeap::new(),
        was_active: vec![false; hosts],
        burst: SimDuration::from_secs(60),
        report: MonthReport {
            hosts,
            days,
            ..MonthReport::default()
        },
        eviction_latency_total: 0.0,
    };

    let step = SimDuration::from_secs(60);
    let start = SimTime::ZERO.max_of(setup_done);
    let end = SimTime::ZERO + horizon;
    let mut engine: Engine<World> = Engine::new();
    if let Some(every) = audit_every {
        engine.audit_every(every, |w: &World| w.cluster.digest());
    }
    engine.schedule_periodic_at(start, step, move |w: &mut World, e: &mut Engine<World>| {
        let t = e.now();
        minute_tick(w, t);
        t + step < end
    });
    engine.run(&mut world);
    let audit_stream = engine.take_audit_stream();

    let mut report = world.report;
    report.utilization = report.cpu_seconds / (hosts as f64 * horizon.as_secs_f64());
    report.mean_eviction_secs = if report.evictions == 0 {
        0.0
    } else {
        world.eviction_latency_total / report.evictions as f64
    };
    report.migrations = world.migrator.totals().migrations;
    report.sim_events = engine.events_executed();
    let sel = world.selector.stats();
    report.hostsel_requests = sel.requests;
    report.hostsel_select_mean_ms = sel.select_latency.mean() * 1e3;
    report.rpc = world.cluster.net.rpc_table().clone();
    report.hostsel_bytes = [
        sprite_net::RpcOp::HostselQuery,
        sprite_net::RpcOp::HostselReport,
        sprite_net::RpcOp::HostselRelease,
        sprite_net::RpcOp::HostselGossip,
        sprite_net::RpcOp::HostselShardQuery,
    ]
    .iter()
    .map(|&op| report.rpc.get(op).bytes)
    .sum();
    let net = world.cluster.net.stats();
    report.net_messages = net.messages;
    report.net_bytes = net.bytes;
    let slab = world.cluster.proc_slab_stats();
    report.proc_slab_high_water = slab.high_water as u64;
    report.stale_handle_lookups = slab.stale_lookups + world.cluster.fs.streams().stale_lookups();
    report.stream_slab_high_water = world.cluster.fs.streams().high_water() as u64;
    (report, audit_stream)
}

/// Runs the study from a bare seed (single replication).
pub fn run(hosts: usize, days: u64, seed: u64) -> MonthReport {
    run_seeded(hosts, days, DetRng::seed_from(seed))
}

/// Per-replication RNGs, forked *serially* from the master seed so the set
/// of replication streams is identical no matter how many threads later
/// execute them — this is the determinism contract of the parallel runner.
pub fn replication_rngs(seed: u64, reps: usize) -> Vec<DetRng> {
    let mut master = DetRng::seed_from(seed);
    (0..reps).map(|_| master.fork()).collect()
}

/// Merges replication reports: counts add, latency averages weight by
/// eviction count, and utilization renormalizes over the combined horizon.
pub fn merge(reports: &[MonthReport]) -> MonthReport {
    let mut out = MonthReport::default();
    let mut latency_total = 0.0;
    let mut select_total = 0.0;
    for r in reports {
        out.hosts = r.hosts;
        out.days += r.days;
        out.jobs += r.jobs;
        out.remote_jobs += r.remote_jobs;
        out.evictions += r.evictions;
        out.cpu_seconds += r.cpu_seconds;
        out.migrations += r.migrations;
        out.sim_events += r.sim_events;
        out.proc_slab_high_water = out.proc_slab_high_water.max(r.proc_slab_high_water);
        out.stream_slab_high_water = out.stream_slab_high_water.max(r.stream_slab_high_water);
        out.stale_handle_lookups += r.stale_handle_lookups;
        out.rpc.merge(&r.rpc);
        out.net_messages += r.net_messages;
        out.net_bytes += r.net_bytes;
        out.hostsel_requests += r.hostsel_requests;
        out.hostsel_bytes += r.hostsel_bytes;
        select_total += r.hostsel_select_mean_ms * r.hostsel_requests as f64;
        latency_total += r.mean_eviction_secs * r.evictions as f64;
    }
    out.utilization =
        out.cpu_seconds / (out.hosts.max(1) as f64 * (out.days * DAY) as f64).max(1.0);
    out.mean_eviction_secs = if out.evictions == 0 {
        0.0
    } else {
        latency_total / out.evictions as f64
    };
    out.hostsel_select_mean_ms = if out.hostsel_requests == 0 {
        0.0
    } else {
        select_total / out.hostsel_requests as f64
    };
    out
}

/// Replication plan for the full table: 5 × 6 days = 30 simulated days.
pub const FULL_HOSTS: usize = 50;
/// Days per replication in the full table.
pub const FULL_REP_DAYS: u64 = 6;
/// Replications in the full table.
pub const FULL_REPS: usize = 5;
/// Master seed for the full table.
pub const FULL_SEED: u64 = 41;

/// Renders the table from a report merged over `reps` replications.
pub fn render(r: &MonthReport, reps: usize) -> String {
    let mut t = TableWriter::new(
        &format!(
            "E11: a month in the life ({} hosts, {} days; {} replications)",
            r.hosts, r.days, reps
        ),
        &["metric", "value"],
    );
    t.row(&["jobs launched".into(), r.jobs.to_string()]);
    t.row(&[
        "remote (exec-time placed)".into(),
        format!(
            "{} ({:.0}%)",
            r.remote_jobs,
            100.0 * r.remote_jobs as f64 / r.jobs.max(1) as f64
        ),
    ]);
    t.row(&["migrations (all kinds)".into(), r.migrations.to_string()]);
    t.row(&["evictions".into(), r.evictions.to_string()]);
    t.row(&[
        "mean eviction latency".into(),
        format!("{:.2}s", r.mean_eviction_secs),
    ]);
    t.row(&[
        "cluster CPU utilization".into(),
        format!("{:.2}%", r.utilization * 100.0),
    ]);
    t.note("paper: month-long utilization ~2.3%; most remote execution happens at exec");
    t.note("time; evictions are rare and fast relative to the owner's session");
    t.render()
}

/// Renders the table (serial path: runs every replication in order).
pub fn table() -> String {
    let reports: Vec<MonthReport> = replication_rngs(FULL_SEED, FULL_REPS)
        .into_iter()
        .map(|rng| run_seeded(FULL_HOSTS, FULL_REP_DAYS, rng))
        .collect();
    render(&merge(&reports), FULL_REPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_study_shapes() {
        // Small but real: 8 hosts, 2 days.
        let r = run(8, 2, 3);
        assert!(r.jobs > 10, "jobs {}", r.jobs);
        assert!(
            r.remote_jobs as f64 >= 0.5 * r.jobs as f64,
            "most jobs should place remotely: {}/{}",
            r.remote_jobs,
            r.jobs
        );
        // Utilization is low single digits of percent, as in the thesis.
        assert!(
            r.utilization > 0.001 && r.utilization < 0.15,
            "utilization {:.4}",
            r.utilization
        );
        assert_eq!(r.migrations, r.remote_jobs + r.evictions);
        // The engine drove one tick per simulated minute.
        assert!(r.sim_events >= 2 * 24 * 60 - 2, "events {}", r.sim_events);
        // Every wire byte is attributed to a typed op.
        assert!(!r.rpc.is_empty());
        assert_eq!(r.rpc.total_messages(), r.net_messages);
        assert_eq!(r.rpc.total_bytes(), r.net_bytes);
    }

    #[test]
    fn evictions_happen_and_are_fast() {
        let r = run(6, 4, 13);
        if r.evictions > 0 {
            assert!(
                r.mean_eviction_secs < 5.0,
                "evictions should be fast: {}s",
                r.mean_eviction_secs
            );
        }
    }

    #[test]
    fn merged_replications_preserve_invariants() {
        let reports: Vec<MonthReport> = replication_rngs(7, 3)
            .into_iter()
            .map(|rng| run_seeded(6, 1, rng))
            .collect();
        let m = merge(&reports);
        assert_eq!(m.days, 3);
        assert_eq!(m.jobs, reports.iter().map(|r| r.jobs).sum::<u64>());
        assert_eq!(m.migrations, m.remote_jobs + m.evictions);
        let cpu: f64 = reports.iter().map(|r| r.cpu_seconds).sum();
        assert!((m.cpu_seconds - cpu).abs() < 1e-9);
        assert!(m.utilization > 0.0);
    }

    #[test]
    fn audited_runs_match_unaudited_reports_and_each_other() {
        let rngs = replication_rngs(41, 2);
        let plain = run_seeded(4, 1, rngs[0].clone());
        let (audited, stream_a) = run_audited(4, 1, rngs[0].clone(), 100);
        let (_, stream_b) = run_audited(4, 1, rngs[1].clone(), 100);
        // Auditing observes the run without perturbing it.
        assert_eq!(plain.jobs, audited.jobs);
        assert_eq!(plain.sim_events, audited.sim_events);
        assert!(
            !stream_a.is_empty(),
            "a day of minutes must hit checkpoints"
        );
        for (i, cp) in stream_a.iter().enumerate() {
            assert_eq!(cp.events, 100 * (i as u64 + 1));
        }
        // Re-running the same forked RNG reproduces the stream exactly.
        let (_, again) = run_audited(4, 1, rngs[0].clone(), 100);
        assert_eq!(stream_a, again);
        // Different replication RNGs diverge somewhere in their digests.
        assert_ne!(stream_a, stream_b);
    }

    #[test]
    fn replication_rngs_are_independent_of_thread_count() {
        // Forking is serial on the master stream: calling it twice gives the
        // same streams, which is what makes parallel execution repeatable.
        let a: Vec<MonthReport> = replication_rngs(41, 3)
            .into_iter()
            .map(|rng| run_seeded(4, 1, rng))
            .collect();
        let b: Vec<MonthReport> = replication_rngs(41, 3)
            .into_iter()
            .map(|rng| run_seeded(4, 1, rng))
            .collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.jobs, y.jobs);
            assert_eq!(x.remote_jobs, y.remote_jobs);
            assert_eq!(x.evictions, y.evictions);
            assert_eq!(x.sim_events, y.sim_events);
        }
    }
}
