//! E11 — A month in the life of the cluster (Ch. 8 production study).
//!
//! Thirty simulated days on a 50-workstation cluster: users come and go by
//! the diurnal activity traces; while at the console they launch jobs,
//! which the system exec-migrates to idle hosts chosen by the central
//! server; when an owner returns to a machine harbouring foreign work,
//! eviction kicks in. The thesis's month-long numbers this mirrors: total
//! processor utilization around 2.3%, most remote execution at exec time,
//! evictions rare but prompt.
//!
//! Jobs execute as one-minute CPU bursts so eviction can interrupt them —
//! the remaining bursts simply continue on the home machine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;


use sprite_fs::SpritePath;
use sprite_hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
use sprite_kernel::ProcessId;
use sprite_net::HostId;
use sprite_sim::{DetRng, SimDuration, SimTime};
use sprite_workloads::{ActivityModel, ActivityTrace, DAY};

use crate::support::{h, standard_cluster, standard_migrator, TableWriter};

/// Outcome of the month-long run.
#[derive(Debug, Clone, Default)]
pub struct MonthReport {
    /// Hosts simulated.
    pub hosts: usize,
    /// Simulated days.
    pub days: u64,
    /// Jobs launched.
    pub jobs: u64,
    /// Jobs placed on a remote host at exec time.
    pub remote_jobs: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Eviction latency average (seconds).
    pub mean_eviction_secs: f64,
    /// Total CPU consumed by jobs (seconds).
    pub cpu_seconds: f64,
    /// Overall processor utilization across the cluster.
    pub utilization: f64,
    /// Migrations of every kind (from the migration engine).
    pub migrations: u64,
}

struct ActiveJob {
    pid: ProcessId,
    remaining: SimDuration,
    granted_host: Option<HostId>,
}

/// Runs the study. Keep `hosts`/`days` small in tests; the full table uses
/// 50 hosts for 30 days.
pub fn run(hosts: usize, days: u64, seed: u64) -> MonthReport {
    let burst = SimDuration::from_secs(60);
    let (mut cluster, setup_done) = standard_cluster(hosts);
    let mut migrator = standard_migrator(hosts);
    let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
    let mut rng = DetRng::seed_from(seed);
    let model = ActivityModel::default();
    let horizon = SimDuration::from_secs(days * DAY);
    let traces: Vec<ActivityTrace> = (0..hosts)
        .map(|i| ActivityTrace::generate(&mut rng, &model, h(i as u32), horizon))
        .collect();

    let mut report = MonthReport {
        hosts,
        days,
        ..MonthReport::default()
    };
    let mut jobs: Vec<ActiveJob> = Vec::new();
    // (completion, job index) for in-flight bursts.
    let mut bursts: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    let mut eviction_latency_total = 0.0f64;

    let step = SimDuration::from_secs(60);
    let mut t = SimTime::ZERO.max_of(setup_done);
    let end = SimTime::ZERO + horizon;
    let mut was_active = vec![false; hosts];

    while t < end {
        // Console state + selector reports.
        let world: Vec<HostInfo> = traces
            .iter()
            .map(|tr| HostInfo {
                host: tr.host,
                load: cluster.host(tr.host).resident().len() as f64,
                idle: tr.idle_duration_at(t),
                console_active: tr.active_at(t),
            })
            .collect();
        for info in &world {
            cluster.host_mut(info.host).console_active = info.console_active;
            selector.report(&mut cluster.net, t, *info);
        }
        // Owners returning to hosts with foreign processes trigger eviction.
        for (i, tr) in traces.iter().enumerate() {
            let active = tr.active_at(t);
            if active && !was_active[i] && !cluster.foreign_on(h(i as u32)).is_empty() {
                let reports = migrator
                    .evict_all(&mut cluster, t, h(i as u32))
                    .expect("evict");
                for r in &reports {
                    eviction_latency_total += r.total_time.as_secs_f64();
                    report.evictions += 1;
                }
            }
            was_active[i] = active;
        }
        // Burst completions due by now.
        while let Some(&Reverse((done, idx))) = bursts.peek() {
            if done > t {
                break;
            }
            bursts.pop();
            let job = &mut jobs[idx];
            if job.remaining.is_zero() {
                // Job finished: exit and release its host.
                let t2 = cluster.exit(done, job.pid, 0).expect("exit");
                if let Some(gh) = job.granted_host.take() {
                    selector.release(&mut cluster.net, t2, job.pid.home(), gh);
                }
            } else {
                let chunk = job.remaining.min(burst);
                job.remaining -= chunk;
                report.cpu_seconds += chunk.as_secs_f64();
                let done2 = cluster.run_cpu(done, job.pid, chunk).expect("burst");
                bursts.push(Reverse((done2, idx)));
            }
        }
        // Active users launch jobs now and then (~a few per hour).
        for tr in &traces {
            if tr.active_at(t) && rng.chance(0.04) {
                let home = tr.host;
                let (pid, t1) = cluster
                    .spawn(t, home, &SpritePath::new("/bin/sim"), 32, 8)
                    .expect("spawn");
                report.jobs += 1;
                // Exec-time placement through the central server.
                let (choice, t2) = selector.select(&mut cluster.net, t1, home, &world);
                let (start_at, granted) = match choice {
                    Some(target) => {
                        let r = migrator
                            .exec_migrate(
                                &mut cluster,
                                t2,
                                pid,
                                target,
                                &SpritePath::new("/bin/sim"),
                                32,
                                8,
                            )
                            .expect("exec migrate");
                        report.remote_jobs += 1;
                        (r.resumed_at, Some(target))
                    }
                    None => (t2, None),
                };
                let cpu = rng
                    .jittered(SimDuration::from_secs(100), SimDuration::from_secs(40))
                    .max(SimDuration::from_secs(10));
                jobs.push(ActiveJob {
                    pid,
                    remaining: cpu,
                    granted_host: granted,
                });
                let idx = jobs.len() - 1;
                bursts.push(Reverse((start_at, idx)));
            }
        }
        t += step;
    }
    report.utilization =
        report.cpu_seconds / (hosts as f64 * horizon.as_secs_f64());
    report.mean_eviction_secs = if report.evictions == 0 {
        0.0
    } else {
        eviction_latency_total / report.evictions as f64
    };
    report.migrations = migrator.totals().migrations;
    report
}

/// Renders the table.
pub fn table() -> String {
    let r = run(50, 30, 41);
    let mut t = TableWriter::new(
        "E11: a month in the life (50 hosts, 30 days)",
        &["metric", "value"],
    );
    t.row(&["jobs launched".into(), r.jobs.to_string()]);
    t.row(&[
        "remote (exec-time placed)".into(),
        format!(
            "{} ({:.0}%)",
            r.remote_jobs,
            100.0 * r.remote_jobs as f64 / r.jobs.max(1) as f64
        ),
    ]);
    t.row(&["migrations (all kinds)".into(), r.migrations.to_string()]);
    t.row(&["evictions".into(), r.evictions.to_string()]);
    t.row(&[
        "mean eviction latency".into(),
        format!("{:.2}s", r.mean_eviction_secs),
    ]);
    t.row(&[
        "cluster CPU utilization".into(),
        format!("{:.2}%", r.utilization * 100.0),
    ]);
    t.note("paper: month-long utilization ~2.3%; most remote execution happens at exec");
    t.note("time; evictions are rare and fast relative to the owner's session");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_study_shapes() {
        // Small but real: 8 hosts, 2 days.
        let r = run(8, 2, 3);
        assert!(r.jobs > 10, "jobs {}", r.jobs);
        assert!(
            r.remote_jobs as f64 >= 0.5 * r.jobs as f64,
            "most jobs should place remotely: {}/{}",
            r.remote_jobs,
            r.jobs
        );
        // Utilization is low single digits of percent, as in the thesis.
        assert!(
            r.utilization > 0.001 && r.utilization < 0.15,
            "utilization {:.4}",
            r.utilization
        );
        assert_eq!(r.migrations, r.remote_jobs + r.evictions);
    }

    #[test]
    fn evictions_happen_and_are_fast() {
        let r = run(6, 4, 13);
        if r.evictions > 0 {
            assert!(
                r.mean_eviction_secs < 5.0,
                "evictions should be fast: {}s",
                r.mean_eviction_secs
            );
        }
    }
}
