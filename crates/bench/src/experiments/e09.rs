//! E9 — Process lifetimes and the placement-vs-migration question.
//!
//! Zhou's traces \[Zho87\] (mean 1.5 s, σ 19.1 s) imply almost every process
//! dies before migration could pay for itself, which is why Sprite
//! concentrates on exec-time *placement* and reserves active migration for
//! long-running jobs and eviction (Ch. 3). We reproduce the distribution
//! and then ask, for each policy overhead, what fraction of processes would
//! benefit from moving to an idle host that runs them twice as fast as
//! their loaded home.

use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::LifetimeModel;

use crate::support::TableWriter;

/// Lifetime distribution summary.
#[derive(Debug, Clone, Copy)]
pub struct LifetimeSummary {
    /// Mean lifetime in seconds.
    pub mean: f64,
    /// Standard deviation in seconds.
    pub std_dev: f64,
    /// Fraction of processes living under one second.
    pub under_1s: f64,
    /// Median in seconds.
    pub median: f64,
    /// 95th percentile in seconds.
    pub p95: f64,
}

/// Policy evaluation: processes that gain from moving given an overhead.
#[derive(Debug, Clone, Copy)]
pub struct PolicyRow {
    /// Cost paid to move the process.
    pub overhead: SimDuration,
    /// Fraction of processes whose remaining work amortizes the move
    /// (lifetime on a loaded home > lifetime/speedup + overhead).
    pub fraction_benefiting: f64,
    /// Mean completion-time saving per process (seconds, over all
    /// processes including the ones that do not move).
    pub mean_saving: f64,
}

/// Samples the lifetime distribution.
pub fn lifetimes(samples: usize, seed: u64) -> (LifetimeSummary, Vec<f64>) {
    let model = LifetimeModel::default();
    let mut rng = DetRng::seed_from(seed);
    let mut xs: Vec<f64> = (0..samples)
        .map(|_| model.sample(&mut rng).as_secs_f64())
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    let summary = LifetimeSummary {
        mean,
        std_dev: var.sqrt(),
        under_1s: xs.iter().filter(|&&x| x < 1.0).count() as f64 / xs.len() as f64,
        median: xs[xs.len() / 2],
        p95: xs[(xs.len() as f64 * 0.95) as usize],
    };
    (summary, xs)
}

/// Evaluates move-or-stay for each overhead. The home host is assumed to
/// run the process at half speed (one competing job); an idle host runs it
/// at full speed after paying `overhead`.
pub fn policy(xs: &[f64], overheads: &[SimDuration]) -> Vec<PolicyRow> {
    const HOME_SLOWDOWN: f64 = 2.0;
    overheads
        .iter()
        .map(|&o| {
            let ov = o.as_secs_f64();
            let mut benefiting = 0usize;
            let mut saving = 0.0f64;
            for &life in xs {
                let at_home = life * HOME_SLOWDOWN;
                let moved = life + ov;
                if moved < at_home {
                    benefiting += 1;
                    saving += at_home - moved;
                }
            }
            PolicyRow {
                overhead: o,
                fraction_benefiting: benefiting as f64 / xs.len() as f64,
                mean_saving: saving / xs.len() as f64,
            }
        })
        .collect()
}

/// Renders both tables.
pub fn table() -> String {
    let (summary, xs) = lifetimes(100_000, 13);
    let mut t = TableWriter::new(
        "E9a: process lifetime distribution (100k samples)",
        &["metric", "value"],
    );
    t.row(&["mean (s)".into(), format!("{:.2}", summary.mean)]);
    t.row(&["std dev (s)".into(), format!("{:.2}", summary.std_dev)]);
    t.row(&["median (s)".into(), format!("{:.2}", summary.median)]);
    t.row(&["95th pct (s)".into(), format!("{:.2}", summary.p95)]);
    t.row(&[
        "under 1 s".into(),
        format!("{:.0}%", summary.under_1s * 100.0),
    ]);
    t.note("Zhou's traces: mean 1.5s, sd 19.1s, >78% of processes under one second");
    let mut out = t.render();

    let rows = policy(
        &xs,
        &[
            SimDuration::from_millis(100),
            SimDuration::from_millis(330),
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
            SimDuration::from_secs(10),
        ],
    );
    let mut t2 = TableWriter::new(
        "E9b: fraction of processes that benefit from moving (idle host 2x faster)",
        &["move overhead", "benefiting", "mean saving (s)"],
    );
    for r in &rows {
        t2.row(&[
            r.overhead.to_string(),
            format!("{:.0}%", r.fraction_benefiting * 100.0),
            format!("{:.2}", r.mean_saving),
        ]);
    }
    t2.note("paper conclusion: active migration pays only if overhead is a few hundred ms");
    t2.note("or restricted to known-long-running processes; exec-time placement is the default");
    out.push('\n');
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_zhou_like() {
        let (s, _) = lifetimes(50_000, 3);
        assert!((0.8..3.0).contains(&s.mean), "mean {}", s.mean);
        assert!(s.std_dev > 5.0 * s.mean, "sd {} mean {}", s.std_dev, s.mean);
        assert!(s.under_1s > 0.70);
        assert!(s.median < s.mean, "heavy tail: median below mean");
    }

    #[test]
    fn higher_overhead_helps_fewer_processes() {
        let (_, xs) = lifetimes(50_000, 5);
        let rows = policy(
            &xs,
            &[
                SimDuration::from_millis(100),
                SimDuration::from_secs(1),
                SimDuration::from_secs(10),
            ],
        );
        assert!(rows[0].fraction_benefiting > rows[1].fraction_benefiting);
        assert!(rows[1].fraction_benefiting > rows[2].fraction_benefiting);
        // At 100ms overhead most processes *still* do not benefit much —
        // they are simply too short; at 10s almost none do.
        assert!(rows[2].fraction_benefiting < 0.10);
    }
}
