//! A4 — Ablation: a second file server.
//!
//! Welch's thesis asks how Sprite scales when servers handle many more
//! clients \[Wel90\], and the migration thesis names the file server as the
//! resource migration stresses first. Splitting the swap/paging domain
//! onto its own server offloads the root server and lifts the parallel
//! build's ceiling.

use sprite_fs::SpritePath;
use sprite_net::HostId;
use sprite_pmake::{prepare_sources, run_build, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::CompileWorkload;

use crate::support::{h, secs, standard_cluster, standard_migrator, warmed_selector, TableWriter};

/// One topology's measurement.
#[derive(Debug, Clone)]
pub struct ServerSplitRow {
    /// Topology label.
    pub topology: &'static str,
    /// Build makespan.
    pub makespan: SimDuration,
    /// Root server CPU utilization during the build.
    pub root_util: f64,
    /// Swap server utilization (zero when there is no second server).
    pub swap_util: f64,
}

fn one(split_swap: bool, hosts: usize, seed: u64) -> ServerSplitRow {
    let (mut cluster, t0) = standard_cluster(hosts);
    let swap_server = HostId::new(hosts as u32 - 1);
    if split_swap {
        cluster.add_file_server(swap_server, SpritePath::new("/swap"));
    }
    let mut migrator = standard_migrator(hosts);
    // Reserve the servers and home from selection; the last host is kept
    // out of the worker pool in BOTH topologies so the comparison holds
    // the compile-host count constant.
    let mut selector = warmed_selector(&mut cluster, hosts - 1, 2);
    let graph = DepGraph::from_workload(
        &CompileWorkload {
            files: 24,
            mean_cpu: SimDuration::from_secs(10),
            link_cpu: SimDuration::from_secs(6),
            ..CompileWorkload::default()
        },
        &mut DetRng::seed_from(seed),
    );
    let t = prepare_sources(&mut cluster, &graph, h(1), t0).expect("prepare");
    let report = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        h(1),
        &graph,
        &PmakeConfig::default(),
        t,
    )
    .expect("build");
    let root = cluster.fs.server(h(0)).expect("root server");
    let root_util = root.cpu.busy_time().as_secs_f64() / report.makespan.as_secs_f64();
    let swap_util = if split_swap {
        let swap = cluster.fs.server(swap_server).expect("swap server");
        swap.cpu.busy_time().as_secs_f64() / report.makespan.as_secs_f64()
    } else {
        0.0
    };
    ServerSplitRow {
        topology: if split_swap {
            "root + swap server"
        } else {
            "single server"
        },
        makespan: report.makespan,
        root_util,
        swap_util,
    }
}

/// Runs both topologies.
pub fn run(hosts: usize, seed: u64) -> Vec<ServerSplitRow> {
    vec![one(false, hosts, seed), one(true, hosts, seed)]
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(14, 71);
    let mut t = TableWriter::new(
        "A4 (ablation): splitting /swap onto a second file server (24-file pmake)",
        &["topology", "makespan(s)", "root-util", "swap-util"],
    );
    for r in &rows {
        t.row(&[
            r.topology.to_string(),
            secs(r.makespan),
            format!("{:.1}%", r.root_util * 100.0),
            format!("{:.1}%", r.swap_util * 100.0),
        ]);
    }
    t.note("exec-time migration pages programs and swap through /swap; moving that");
    t.note("domain off the root server sheds load exactly where migration adds it");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_server_offloads_the_root() {
        let rows = run(12, 5);
        let single = &rows[0];
        let split = &rows[1];
        assert!(
            split.root_util < single.root_util,
            "root util should drop: {} vs {}",
            split.root_util,
            single.root_util
        );
        assert!(split.swap_util > 0.0);
        assert!(split.makespan <= single.makespan + SimDuration::from_secs(1));
    }
}
