//! E8 — Eviction: reclaiming a workstation for its returning owner.
//!
//! When a user comes back, every foreign process must leave (Ch. 8.3) —
//! Sprite's autonomy guarantee. We park N foreign processes with varying
//! dirty images on a host, have the owner return, and measure how long
//! until the machine is foreign-free. Sprite's flush strategy makes this
//! scale with dirty data, not image size.

use sprite_fs::SpritePath;
use sprite_sim::SimDuration;

use crate::support::{
    dirty_heap, h, pages_for_mb, secs, standard_cluster, standard_migrator, TableWriter,
};

/// One eviction scenario's measurement.
#[derive(Debug, Clone, Copy)]
pub struct EvictionRow {
    /// Foreign processes on the workstation.
    pub foreign: usize,
    /// Dirty megabytes per process.
    pub dirty_mb: f64,
    /// Time from the owner's return until the host is foreign-free.
    pub reclaim_time: SimDuration,
    /// Mean per-process eviction time.
    pub per_process: SimDuration,
}

/// Runs the eviction matrix.
pub fn run(foreign_counts: &[usize], dirty_mbs: &[f64]) -> Vec<EvictionRow> {
    let mut rows = Vec::new();
    for &n in foreign_counts {
        for &mb in dirty_mbs {
            let hosts = n + 3;
            let (mut cluster, mut t) = standard_cluster(hosts);
            let mut migrator = standard_migrator(hosts);
            // Home hosts 2..2+n each send one process to host 1.
            let victim = h(1);
            for i in 0..n {
                let home = h(2 + i as u32);
                let (pid, t1) = cluster
                    .spawn(t, home, &SpritePath::new("/bin/sim"), pages_for_mb(mb), 8)
                    .expect("spawn");
                let r = migrator
                    .migrate(&mut cluster, t1, pid, victim)
                    .expect("migrate");
                let t2 = dirty_heap(&mut cluster, r.resumed_at, pid, mb);
                t = t2;
            }
            assert_eq!(cluster.foreign_on(victim).count(), n);
            // The owner returns.
            cluster.host_mut(victim).console_active = true;
            let reports = migrator.evict_all(&mut cluster, t, victim).expect("evict");
            assert!(cluster.foreign_on(victim).next().is_none());
            let reclaim = reports
                .last()
                .map(|r| r.resumed_at.elapsed_since(t))
                .unwrap_or(SimDuration::ZERO);
            let per = if n == 0 {
                SimDuration::ZERO
            } else {
                reclaim / n as u64
            };
            rows.push(EvictionRow {
                foreign: n,
                dirty_mb: mb,
                reclaim_time: reclaim,
                per_process: per,
            });
        }
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[1, 2, 4, 8], &[0.0, 1.0, 4.0]);
    let mut t = TableWriter::new(
        "E8: workstation reclaim time on owner return",
        &["foreign", "dirtyMB/proc", "reclaim(s)", "per-proc(s)"],
    );
    for r in &rows {
        t.row(&[
            r.foreign.to_string(),
            format!("{:.1}", r.dirty_mb),
            secs(r.reclaim_time),
            secs(r.per_process),
        ]);
    }
    t.note("paper shape: reclaim grows with foreign count and dirty data;");
    t.note("clean processes evict in well under a second each with the flush strategy");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaim_scales_with_processes_and_dirt() {
        let rows = run(&[1, 4], &[0.0, 2.0]);
        let find = |n: usize, mb: f64| {
            *rows
                .iter()
                .find(|r| r.foreign == n && (r.dirty_mb - mb).abs() < 1e-9)
                .unwrap()
        };
        assert!(find(4, 0.0).reclaim_time > find(1, 0.0).reclaim_time);
        assert!(find(1, 2.0).reclaim_time > find(1, 0.0).reclaim_time);
        // A clean process evicts in under a second.
        assert!(find(1, 0.0).reclaim_time < SimDuration::from_secs(1));
    }

    #[test]
    fn eviction_lands_processes_back_home() {
        // Covered structurally in run() via assertions; exercise one case.
        let rows = run(&[2], &[0.5]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].reclaim_time > SimDuration::ZERO);
    }
}
