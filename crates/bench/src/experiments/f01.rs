//! F1 — fault sweep: migration under an unreliable network.
//!
//! The paper's mechanism chapters assume the network delivers; Chapter 3.6
//! and the DEMOS/MP comparison \[PM83\] discuss what happens when it does
//! not: an in-flight migration must abort cleanly back to its source, and a
//! process whose home (or residual-dependency) host dies is killed rather
//! than left half-alive. This sweep drives a fixed migration workload
//! through a [`FaultPlan`] at increasing drop rates — plus, once faults are
//! on at all, a timed partition and one host crash — and tabulates the
//! outcomes. The plan is seeded, so the whole sweep (including the rendered
//! table and the per-op fault breakdown) is a pure function of
//! `(seed, rate)` and replays byte-identically at any `--jobs` value.

use sprite_fs::SpritePath;
use sprite_net::{FaultPlan, FaultStats, HostId};
use sprite_sim::{SimDuration, SimTime};

use crate::support::{h, pages_for_mb, standard_cluster, standard_migrator, TableWriter};

/// Hosts in the fault cluster (host 0 is the file server).
pub const HOSTS: usize = 8;
/// Migration attempts driven per sweep point.
pub const ATTEMPTS: usize = 12;
/// The host a nonzero-rate plan partitions away for a while.
pub const PARTITIONED_HOST: u32 = 5;
/// The host a nonzero-rate plan crashes mid-drive.
pub const CRASHED_HOST: u32 = 7;

/// One sweep point's outcome counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSweepRow {
    /// Random per-attempt drop probability.
    pub rate: f64,
    /// Migration attempts driven (spawns that failed outright are skipped).
    pub attempts: u64,
    /// Migrations that completed at the target.
    pub completed: u64,
    /// Migrations aborted after the freeze point and rolled back runnable
    /// at the source (a subset of `failures`).
    pub aborts: u64,
    /// Attempts that failed or were refused, including the aborts.
    pub failures: u64,
    /// Wire attempts lost (each charged a timeout at the sender).
    pub drops: u64,
    /// Retries performed after lost attempts.
    pub retries: u64,
    /// Sends that exhausted every attempt and surfaced an error.
    pub giveups: u64,
    /// Processes killed because a host they depended on crashed.
    pub fault_kills: u64,
    /// Processes still alive at the end — each verified resident on
    /// exactly one host.
    pub survivors: u64,
}

/// The whole sweep: rows per rate plus the merged per-op fault breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepReport {
    /// Seed every [`FaultPlan`] in the sweep was built from.
    pub seed: u64,
    /// One row per swept rate, in sweep order.
    pub rows: Vec<FaultSweepRow>,
    /// Per-op fault events merged across the whole sweep.
    pub faults: FaultStats,
}

/// Drives the migration workload once under `FaultPlan::new(seed, rate)`.
///
/// At `rate == 0` the plan is empty and every attempt must complete; at any
/// nonzero rate the plan also partitions host [`PARTITIONED_HOST`] for four
/// seconds and crashes host [`CRASHED_HOST`] mid-drive (the crash is applied
/// to the cluster with [`Cluster::crash_host`] at its scheduled instant, the
/// fail-stop model of Ch. 3.6).
///
/// [`Cluster::crash_host`]: sprite_kernel::Cluster::crash_host
pub fn run(seed: u64, rate: f64) -> (FaultSweepRow, FaultStats) {
    let (mut cluster, start) = standard_cluster(HOSTS);
    let mut migrator = standard_migrator(HOSTS);

    let mut plan = FaultPlan::new(seed, rate);
    if rate > 0.0 {
        plan = plan
            .with_partition(
                vec![h(PARTITIONED_HOST)],
                start + SimDuration::from_secs(2),
                start + SimDuration::from_secs(6),
            )
            .with_crash(h(CRASHED_HOST), start + SimDuration::from_secs(8));
    }
    let mut crashes: Vec<(HostId, SimTime)> = plan.crash_schedule().entries().to_vec();
    cluster.net.set_policy(Box::new(plan));

    let mut row = FaultSweepRow {
        rate,
        attempts: 0,
        completed: 0,
        aborts: 0,
        failures: 0,
        drops: 0,
        retries: 0,
        giveups: 0,
        fault_kills: 0,
        survivors: 0,
    };
    let mut t = start;
    for i in 0..ATTEMPTS {
        // One attempt per simulated second, so the partition window and the
        // crash instant both land inside the drive.
        t = t.max(start + SimDuration::from_secs(i as u64));
        while let Some(&(dead, at)) = crashes.first() {
            if at > t {
                break;
            }
            cluster.crash_host(at, dead);
            crashes.remove(0);
        }
        let home = h(1 + (i as u32 % 6));
        let mut target = h(1 + ((i as u32 + 3) % 7));
        if target == home {
            target = h(7);
        }
        let Ok((pid, spawned)) =
            cluster.spawn(t, home, &SpritePath::new("/bin/sim"), pages_for_mb(0.1), 8)
        else {
            // The spawn itself died on the wire; nothing to migrate.
            continue;
        };
        row.attempts += 1;
        match migrator.migrate(&mut cluster, spawned, pid, target) {
            Ok(report) => {
                row.completed += 1;
                t = report.resumed_at;
            }
            Err(e) => {
                if let Some(rpc) = e.rpc_failure() {
                    t = rpc.at();
                }
            }
        }
    }
    // Apply any crash the loop did not reach.
    for (dead, at) in crashes {
        cluster.crash_host(at.max(t), dead);
    }
    // A returning owner reclaims host 2: eviction retries transient drops
    // (and, past the retry limit, surfaces the failure we swallow here —
    // the sweep only tallies what the counters saw).
    cluster.host_mut(h(2)).console_active = true;
    let _ = migrator.evict_all(&mut cluster, t, h(2));

    let totals = migrator.totals();
    row.aborts = totals.aborts;
    row.failures = totals.failures;
    let faults = cluster.net.fault_stats().clone();
    row.drops = faults.total_drops();
    row.retries = faults.total_retries();
    row.giveups = faults.total_giveups();
    row.fault_kills = cluster.stats().fault_kills;

    // The chaos invariant: every surviving process is runnable on exactly
    // one host, and the cluster's residency lists agree with its PCBs.
    for p in cluster.processes() {
        if p.state == sprite_kernel::ProcState::Zombie {
            continue;
        }
        row.survivors += 1;
        let residencies = (0..HOSTS as u32)
            .filter(|&i| cluster.host(h(i)).resident().contains(&p.pid))
            .count();
        assert_eq!(residencies, 1, "{} resident on {residencies} hosts", p.pid);
        assert_eq!(cluster.locate(p.pid), Some(p.current), "{} lost", p.pid);
    }
    (row, faults)
}

/// Sweeps drop rates up to `max_rate`: `{0}` when `max_rate` is zero,
/// otherwise `{0, max_rate/10, max_rate/2, max_rate}`.
pub fn sweep(seed: u64, max_rate: f64) -> FaultSweepReport {
    let rates: Vec<f64> = if max_rate > 0.0 {
        vec![0.0, max_rate / 10.0, max_rate / 2.0, max_rate]
    } else {
        vec![0.0]
    };
    let mut rows = Vec::with_capacity(rates.len());
    let mut faults = FaultStats::new();
    for rate in rates {
        let (row, f) = run(seed, rate);
        faults.merge(&f);
        rows.push(row);
    }
    FaultSweepReport { seed, rows, faults }
}

/// Renders the sweep table.
pub fn render(report: &FaultSweepReport) -> String {
    let mut t = TableWriter::new(
        &format!(
            "F1: migration outcomes under injected faults (seed {})",
            report.seed
        ),
        &[
            "rate",
            "attempts",
            "completed",
            "aborts",
            "failures",
            "drops",
            "retries",
            "giveups",
            "crash-kills",
            "survivors",
        ],
    );
    for r in &report.rows {
        t.row(&[
            format!("{:.3}", r.rate),
            r.attempts.to_string(),
            r.completed.to_string(),
            r.aborts.to_string(),
            r.failures.to_string(),
            r.drops.to_string(),
            r.retries.to_string(),
            r.giveups.to_string(),
            r.fault_kills.to_string(),
            r.survivors.to_string(),
        ]);
    }
    t.note("every failed migration rolled back runnable at its source;");
    t.note("survivors are each resident on exactly one host (checked per run)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_fault_free_and_complete() {
        let (row, faults) = run(42, 0.0);
        assert_eq!(row.attempts, ATTEMPTS as u64);
        assert_eq!(row.completed, row.attempts);
        assert_eq!((row.aborts, row.failures, row.fault_kills), (0, 0, 0));
        assert!(faults.is_empty(), "rate 0 must inject nothing");
    }

    #[test]
    fn sweep_replays_identically_from_its_seed() {
        let a = sweep(7, 0.1);
        let b = sweep(7, 0.1);
        assert_eq!(a, b, "same seed, same sweep — rows and fault table");
    }

    #[test]
    fn faults_show_up_at_nonzero_rates() {
        let report = sweep(42, 0.1);
        let top = report.rows.last().unwrap();
        assert!(top.drops > 0, "10% drop rate must lose something");
        assert!(
            top.retries > 0,
            "lost round-trip attempts must have been retried"
        );
        assert!(
            top.fault_kills > 0,
            "the scheduled crash must kill its residents/dependents"
        );
        assert!(
            top.completed + top.failures >= top.attempts,
            "every attempt is accounted for (evictions add failures only)"
        );
    }
}
