//! M1 — cluster-scale macrobench for the slab-arena data plane.
//!
//! Two production-shaped workloads at more than double the thesis's
//! cluster size (120 hosts vs. the 50-workstation Sprite cluster):
//!
//! 1. an E11-style "month in the life" — diurnal console activity,
//!    exec-time placement through the central server, owner-return
//!    evictions — run as serial replications;
//! 2. an E6-style batch of 100 independent simulations fanned out over
//!    the borrowed machines by the pmake engine.
//!
//! The point is scale: process and stream churn at 120 hosts exercises
//! the generational PCB/stream slabs, the interned path table and the
//! deterministic hash maps hard enough that their occupancy counters mean
//! something. The table reports those data-plane counters next to the
//! workload results; `experiments --macro --json` records them in the
//! `macrobench` block of `BENCH_experiments.json`.
//!
//! Not part of the default suite: the golden `experiments_output.txt`
//! covers E1-A7, and this table only prints when `--macro` (or the id
//! `m01`) is requested.

use sprite_hostsel::{AvailabilityPolicy, GossipDissemination, HostSelector};
use sprite_pmake::{prepare_sources, run_build, Action, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration};
use sprite_workloads::simulation_batch;

use crate::experiments::e11;
use crate::support::{
    h, secs, sharded_cluster, standard_migrator, warmed_sharded_selector, TableWriter,
};

/// Hosts in the macrobench cluster (the thesis cluster was ~50).
pub const MACRO_HOSTS: usize = 120;
/// Days per month replication.
pub const MACRO_REP_DAYS: u64 = 3;
/// Month replications.
pub const MACRO_REPS: usize = 2;
/// Independent simulations in the batch workload.
pub const MACRO_SIM_JOBS: usize = 100;
/// Master seed.
pub const MACRO_SEED: u64 = 47;
/// Coordinator daemons the batch workload shards its hosts across.
pub const MACRO_COORDINATORS: usize = 4;
/// File-server daemons striping the batch workload's root domain.
pub const MACRO_FS_SHARDS: usize = 2;

/// The month's selection architecture: gossip dissemination tuned for the
/// driver's one-minute report cadence — fanout 1, batches of 4 entries, a
/// refresh floor every 30th report (an unchanged host still re-gossips
/// twice an hour) and entries trusted for 45 minutes. This replaces the
/// central server whose 500 µs service queue cost 615 ms per selection at
/// 120 hosts.
pub fn month_selector(rep: usize) -> Box<dyn HostSelector> {
    let mut g = GossipDissemination::new(
        MACRO_HOSTS,
        1,
        4,
        AvailabilityPolicy::default(),
        MACRO_SEED ^ 0x6055 ^ (rep as u64).wrapping_mul(0x9e37),
    );
    g.set_refresh_every(30);
    g.set_max_age(SimDuration::from_secs(45 * 60));
    Box::new(g)
}

/// Everything the macrobench measured, for the table and the JSON sidecar.
#[derive(Debug, Clone)]
pub struct MacroReport {
    /// Cluster size.
    pub hosts: usize,
    /// The merged month-in-the-life report.
    pub month: e11::MonthReport,
    /// Simulation-batch job count.
    pub sim_jobs: usize,
    /// Simulation-batch makespan.
    pub sim_makespan: SimDuration,
    /// Simulation-batch effective utilization (%).
    pub sim_utilization_pct: f64,
    /// Peak live PCBs across both workloads' clusters.
    pub proc_slab_high_water: u64,
    /// PCB slots ever allocated (peak table footprint).
    pub proc_slab_capacity: u64,
    /// Peak live streams across both workloads' clusters.
    pub stream_slab_high_water: u64,
    /// Generation-mismatch lookups across both workloads (must be 0: the
    /// simulation never dereferences a dead process on purpose).
    pub stale_handle_lookups: u64,
    /// Per-op RPC traffic across both workloads (month + batch).
    pub rpc: sprite_net::RpcTable,
    /// Raw network message total across both workloads.
    pub net_messages: u64,
    /// Raw network byte total across both workloads.
    pub net_bytes: u64,
    /// Host selections requested across both workloads.
    pub hostsel_requests: u64,
    /// Mean host-selection latency across both workloads (milliseconds).
    pub hostsel_select_mean_ms: f64,
    /// Wire bytes spent on host selection (all `hostsel-*` ops, both
    /// workloads).
    pub hostsel_bytes: u64,
    /// File-server daemons striping the batch workload's root domain.
    pub fs_shards: usize,
    /// Block fetches the batch workload served from replica peers.
    pub fs_replica_hits: u64,
    /// Busy time of the batch workload's worst-loaded file-server daemon.
    pub fs_server_busy_max: SimDuration,
}

fn simulation_graph(count: usize, mean_cpu: SimDuration, seed: u64) -> DepGraph {
    let jobs = simulation_batch(&mut DetRng::seed_from(seed), count, mean_cpu);
    let mut g = DepGraph::new();
    for j in &jobs {
        g.add_target(
            &format!("/sim/run{}.out", j.index),
            Action::Compile(sprite_workloads::CompileJob {
                src: format!("/sim/params{}.in", j.index),
                headers: Vec::new(),
                obj: format!("/sim/run{}.out", j.index),
                src_bytes: 2 * 1024,
                obj_bytes: j.result_bytes,
                cpu: j.cpu,
            }),
            &[],
        );
    }
    g
}

/// Runs both workloads serially and returns the combined report.
pub fn run() -> MacroReport {
    // Part 1: the month, as serial replications of the E11 world, placed
    // through gossip dissemination instead of the central server.
    let month_reports: Vec<e11::MonthReport> = e11::replication_rngs(MACRO_SEED, MACRO_REPS)
        .into_iter()
        .enumerate()
        .map(|(rep, rng)| {
            e11::run_seeded_with(MACRO_HOSTS, MACRO_REP_DAYS, rng, month_selector(rep))
        })
        .collect();
    let month = e11::merge(&month_reports);

    // Part 2: 100 independent simulations over the borrowed machines, with
    // the root domain striped across MACRO_FS_SHARDS server daemons. The
    // home host sits just past the server group.
    let graph = simulation_graph(
        MACRO_SIM_JOBS,
        SimDuration::from_secs(400),
        MACRO_SEED ^ 0xa5,
    );
    let home = h(MACRO_FS_SHARDS as u32);
    let (mut cluster, t0) = sharded_cluster(MACRO_HOSTS, MACRO_FS_SHARDS);
    let mut migrator = standard_migrator(MACRO_HOSTS);
    let mut selector = warmed_sharded_selector(
        &mut cluster,
        MACRO_HOSTS,
        MACRO_COORDINATORS,
        MACRO_FS_SHARDS as u32 + 1,
    );
    let t = prepare_sources(&mut cluster, &graph, home, t0).expect("prepare");
    let build = run_build(
        &mut cluster,
        &mut migrator,
        &mut selector,
        home,
        &graph,
        &PmakeConfig::default(),
        t,
    )
    .expect("build");
    let procs = cluster.proc_slab_stats();
    let streams = cluster.fs.streams();
    let mut rpc = month.rpc.clone();
    rpc.merge(cluster.net.rpc_table());
    let batch_net = cluster.net.stats();

    // Host-selection totals: the month's gossip placements plus the batch's
    // sharded-coordinator queries, latency weighted by request count.
    let batch_sel = selector.stats();
    let hostsel_requests = month.hostsel_requests + batch_sel.requests;
    let hostsel_select_mean_ms = if hostsel_requests == 0 {
        0.0
    } else {
        (month.hostsel_select_mean_ms * month.hostsel_requests as f64
            + batch_sel.select_latency.mean() * 1e3 * batch_sel.requests as f64)
            / hostsel_requests as f64
    };
    let hostsel_bytes = month.hostsel_bytes
        + [
            sprite_net::RpcOp::HostselQuery,
            sprite_net::RpcOp::HostselReport,
            sprite_net::RpcOp::HostselRelease,
            sprite_net::RpcOp::HostselGossip,
            sprite_net::RpcOp::HostselShardQuery,
        ]
        .iter()
        .map(|&op| cluster.net.rpc_table().get(op).bytes)
        .sum::<u64>();

    MacroReport {
        rpc,
        hostsel_requests,
        hostsel_select_mean_ms,
        hostsel_bytes,
        fs_shards: cluster.fs.fs_shards(),
        fs_replica_hits: cluster.fs.stats().replica_hits,
        fs_server_busy_max: cluster.fs.server_busy_max(),
        net_messages: month.net_messages + batch_net.messages,
        net_bytes: month.net_bytes + batch_net.bytes,
        hosts: MACRO_HOSTS,
        sim_jobs: graph.len(),
        sim_makespan: build.makespan,
        sim_utilization_pct: build.effective_parallelism * 100.0,
        proc_slab_high_water: month.proc_slab_high_water.max(procs.high_water as u64),
        proc_slab_capacity: procs.capacity as u64,
        stream_slab_high_water: month
            .stream_slab_high_water
            .max(streams.high_water() as u64),
        stale_handle_lookups: month.stale_handle_lookups
            + procs.stale_lookups
            + streams.stale_lookups(),
        month,
    }
}

/// Renders the macrobench table.
pub fn render(r: &MacroReport) -> String {
    let mut t = TableWriter::new(
        &format!(
            "M1: cluster-scale macrobench ({} hosts; {}-day month x{} + {} simulations)",
            r.hosts, MACRO_REP_DAYS, MACRO_REPS, r.sim_jobs
        ),
        &["metric", "value"],
    );
    t.row(&["month: jobs launched".into(), r.month.jobs.to_string()]);
    t.row(&[
        "month: remote (exec-time placed)".into(),
        format!(
            "{} ({:.0}%)",
            r.month.remote_jobs,
            100.0 * r.month.remote_jobs as f64 / r.month.jobs.max(1) as f64
        ),
    ]);
    t.row(&["month: evictions".into(), r.month.evictions.to_string()]);
    t.row(&[
        "month: cluster CPU utilization".into(),
        format!("{:.2}%", r.month.utilization * 100.0),
    ]);
    t.row(&[
        "month: engine events".into(),
        r.month.sim_events.to_string(),
    ]);
    t.row(&["sims: makespan".into(), secs(r.sim_makespan)]);
    t.row(&[
        "sims: effective utilization".into(),
        format!("{:.0}%", r.sim_utilization_pct),
    ]);
    t.row(&[
        "data plane: PCB slab high-water".into(),
        r.proc_slab_high_water.to_string(),
    ]);
    t.row(&[
        "data plane: PCB slots allocated".into(),
        r.proc_slab_capacity.to_string(),
    ]);
    t.row(&[
        "data plane: stream slab high-water".into(),
        r.stream_slab_high_water.to_string(),
    ]);
    t.row(&[
        "data plane: stale handle lookups".into(),
        r.stale_handle_lookups.to_string(),
    ]);
    t.row(&[
        "rpc: typed ops seen".into(),
        r.rpc.rows().count().to_string(),
    ]);
    t.row(&["rpc: messages".into(), r.rpc.total_messages().to_string()]);
    t.row(&["rpc: bytes".into(), r.rpc.total_bytes().to_string()]);
    t.row(&["hostsel: selections".into(), r.hostsel_requests.to_string()]);
    t.row(&[
        "hostsel: mean select latency".into(),
        format!("{:.3}ms", r.hostsel_select_mean_ms),
    ]);
    t.row(&["hostsel: wire bytes".into(), r.hostsel_bytes.to_string()]);
    t.row(&["fs: server shards (batch)".into(), r.fs_shards.to_string()]);
    t.row(&[
        "fs: replica hits (batch)".into(),
        r.fs_replica_hits.to_string(),
    ]);
    t.row(&[
        "fs: worst server busy (batch)".into(),
        secs(r.fs_server_busy_max),
    ]);
    t.note("slab slots are reused through free lists: the table footprint is the");
    t.note("high-water mark, not the process count; stale lookups must stay 0;");
    t.note("rpc totals equal the raw NetStats counters (every byte is typed)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_macro_run_is_clean() {
        // A scaled-down pass through the same code path: slabs populated,
        // no stale dereferences, simulations all complete.
        let graph = simulation_graph(8, SimDuration::from_secs(40), 7);
        let (mut cluster, t0) = sharded_cluster(10, MACRO_FS_SHARDS);
        let mut migrator = standard_migrator(10);
        let mut selector = warmed_sharded_selector(&mut cluster, 10, 2, MACRO_FS_SHARDS as u32 + 1);
        let home = h(MACRO_FS_SHARDS as u32);
        let t = prepare_sources(&mut cluster, &graph, home, t0).expect("prepare");
        let build = run_build(
            &mut cluster,
            &mut migrator,
            &mut selector,
            home,
            &graph,
            &PmakeConfig::default(),
            t,
        )
        .expect("build");
        assert_eq!(build.targets_built, graph.len());
        assert_eq!(cluster.fs.fs_shards(), MACRO_FS_SHARDS);
        let procs = cluster.proc_slab_stats();
        assert!(procs.high_water > 0, "slab saw live processes");
        assert_eq!(procs.stale_lookups, 0, "no stale PCB handles");
        assert_eq!(cluster.fs.streams().stale_lookups(), 0);
    }
}
