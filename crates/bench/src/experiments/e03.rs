//! E3 — Migration time vs. number of open files.
//!
//! Each open stream must be moved through its I/O server (flush dirty
//! blocks, update open records, possibly grow a shadow stream), so
//! migration cost grows linearly with the open-file count — one of the
//! per-unit costs in the paper's breakdown table. Dirty cached data makes
//! each file more expensive than a clean one.

use sprite_fs::{OpenMode, SpritePath};
use sprite_sim::SimDuration;

use crate::support::{h, ms, standard_cluster, standard_migrator, TableWriter};

/// One measurement.
#[derive(Debug, Clone, Copy)]
pub struct FilesRow {
    /// Open files at migration time.
    pub files: usize,
    /// Whether each file had a dirty cached block.
    pub dirty: bool,
    /// Stream-transfer phase time.
    pub streams_phase: SimDuration,
    /// Whole-migration time.
    pub total: SimDuration,
}

/// Runs the sweep.
pub fn run(counts: &[usize]) -> Vec<FilesRow> {
    let mut rows = Vec::new();
    for &files in counts {
        for dirty in [false, true] {
            let (mut cluster, t) = standard_cluster(4);
            let mut migrator = standard_migrator(4);
            let (pid, mut t) = cluster
                .spawn(t, h(1), &SpritePath::new("/bin/sim"), 8, 4)
                .expect("spawn");
            for i in 0..files {
                let path = SpritePath::new(format!("/data/e03.{i}"));
                cluster
                    .fs
                    .create(&mut cluster.net, t, h(1), path.clone())
                    .expect("create");
                let (fd, t2) = cluster
                    .open_fd(t, pid, path, OpenMode::ReadWrite)
                    .expect("open");
                t = t2;
                if dirty {
                    t = cluster.write_fd(t, pid, fd, &[3u8; 4096]).expect("write");
                }
            }
            let report = migrator
                .migrate(&mut cluster, t, pid, h(2))
                .expect("migrate");
            rows.push(FilesRow {
                files,
                dirty,
                streams_phase: report.phases.streams,
                total: report.total_time,
            });
        }
    }
    rows
}

/// Renders the table.
pub fn table() -> String {
    let rows = run(&[0, 1, 2, 4, 8, 16, 32, 64]);
    let mut t = TableWriter::new(
        "E3: migration cost vs open files",
        &[
            "files",
            "cached-dirty",
            "streams(ms)",
            "total(ms)",
            "ms/file",
        ],
    );
    for r in &rows {
        let per_file = if r.files == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", r.streams_phase.as_millis_f64() / r.files as f64)
        };
        t.row(&[
            r.files.to_string(),
            if r.dirty { "yes" } else { "no" }.to_string(),
            ms(r.streams_phase),
            ms(r.total),
            per_file,
        ]);
    }
    t.note("paper shape: linear in open files (an I/O-server update per stream),");
    t.note("with a higher per-file constant when dirty cached blocks must flush first");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_linearly_with_files() {
        let rows = run(&[4, 16]);
        let clean4 = rows.iter().find(|r| r.files == 4 && !r.dirty).unwrap();
        let clean16 = rows.iter().find(|r| r.files == 16 && !r.dirty).unwrap();
        let ratio = clean16.streams_phase.as_secs_f64() / clean4.streams_phase.as_secs_f64();
        assert!((3.0..5.5).contains(&ratio), "expected ~4x, got {ratio}");
    }

    #[test]
    fn dirty_files_cost_more() {
        let rows = run(&[8]);
        let clean = rows.iter().find(|r| !r.dirty).unwrap();
        let dirty = rows.iter().find(|r| r.dirty).unwrap();
        assert!(dirty.streams_phase > clean.streams_phase);
    }

    #[test]
    fn zero_files_has_zero_stream_phase() {
        let rows = run(&[0]);
        assert!(rows.iter().all(|r| r.streams_phase == SimDuration::ZERO));
    }
}
