//! Benchmark harness for the Sprite migration reproduction.
//!
//! Every table and figure of the paper's evaluation has an experiment
//! module under [`experiments`] (E1-E12; see DESIGN.md for the index).
//! `cargo run -p sprite-bench --release --bin experiments` prints all the
//! reproduction tables — add `--jobs N` to spread the independent units
//! (whole experiments, E10 cells, E11 replications) over worker threads
//! with byte-identical output, and `--json` for a machine-readable timing
//! sidecar. `cargo bench -p sprite-bench` runs the std-only microbenches
//! over the core operations and the event engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod experiments;
pub mod runner;
pub mod support;
