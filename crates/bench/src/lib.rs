//! Benchmark harness for the Sprite migration reproduction.
//!
//! Every table and figure of the paper's evaluation has an experiment
//! module under [`experiments`] (E1-E12; see DESIGN.md for the index).
//! `cargo run -p sprite-bench --release --bin experiments` prints all the
//! reproduction tables; `cargo bench -p sprite-bench` runs the Criterion
//! microbenches over the core operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod support;
