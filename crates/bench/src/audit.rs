//! The determinism auditor behind `experiments --audit`.
//!
//! The suite's stdout is byte-identical for every `--jobs` value, but that
//! only proves the *rendered tables* agree. The auditor checks something
//! much stronger: it re-runs the E11 replications with the engine's state
//! checkpoint hook armed, collecting a stream of whole-cluster digests
//! (kernel + process table + file system + network) every N executed
//! events — once across `jobs` worker threads and once serially in-process
//! — and demands the streams match checkpoint for checkpoint. A scheduling
//! leak that happens to cancel out in the final tables cannot cancel out
//! in every intermediate digest.
//!
//! On divergence the auditor bisects: it re-runs the offending replication
//! pair at successively halved checkpoint intervals until the first
//! disagreeing digest is bracketed by a one-event window, then names that
//! window (`events (lo, hi]`, simulated time) in its report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sprite_sim::{Checkpoint, SimTime};

use crate::experiments::e11;

/// Checkpoint interval (executed events) for the audit drive. E11 executes
/// roughly one event per simulated minute, so a multi-day replication
/// yields a handful of checkpoints per day — enough stream to compare,
/// cheap enough to hash.
pub const AUDIT_EVERY: u64 = 1_000;

/// Hosts in the audit drive (smaller than the full table: the auditor runs
/// the scenario twice, so it uses a reduced but still multi-day cluster).
pub const AUDIT_HOSTS: usize = 8;
/// Simulated days per audited replication.
pub const AUDIT_DAYS: u64 = 2;
/// Audited replications (forked serially from [`AUDIT_SEED`]).
pub const AUDIT_REPS: usize = 4;
/// Master seed for the audit drive.
pub const AUDIT_SEED: u64 = 41;

/// Where two checkpoint streams first disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the replication whose streams disagree.
    pub rep: usize,
    /// First disagreeing event window: digests agree at `start_events`
    /// (0 = initial state) and disagree at `end_events`.
    pub start_events: u64,
    /// Event count of the first disagreeing checkpoint.
    pub end_events: u64,
    /// Simulated time of the first disagreeing checkpoint, if either
    /// stream still had one there.
    pub at: Option<SimTime>,
}

/// Outcome of a full audit: the per-replication streams collected across
/// worker threads, plus the verdict against the serial reference.
pub struct AuditOutcome {
    /// Hosts per replication.
    pub hosts: usize,
    /// Days per replication.
    pub days: u64,
    /// Checkpoint interval in executed events.
    pub every: u64,
    /// One digest stream per replication, in replication order.
    pub streams: Vec<Vec<Checkpoint>>,
    /// First divergence between the threaded and serial streams, if any,
    /// bisected down to its tightest event window.
    pub divergence: Option<Divergence>,
}

/// Runs the audited replications across `jobs` worker threads (an atomic
/// cursor over replication indices; results land in replication order, so
/// the output is independent of which thread ran what).
pub fn collect_streams(
    hosts: usize,
    days: u64,
    seed: u64,
    reps: usize,
    every: u64,
    jobs: usize,
) -> Vec<Vec<Checkpoint>> {
    let rngs = e11::replication_rngs(seed, reps);
    if jobs <= 1 {
        return rngs
            .into_iter()
            .map(|rng| e11::run_audited(hosts, days, rng, every).1)
            .collect();
    }
    let results: Vec<Mutex<Option<Vec<Checkpoint>>>> =
        (0..reps).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(reps.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= reps {
                    break;
                }
                let stream = e11::run_audited(hosts, days, rngs[i].clone(), every).1;
                *results[i].lock().unwrap() = Some(stream);
            });
        }
    });
    results
        .into_iter()
        .map(|cell| cell.into_inner().unwrap().expect("every replication ran"))
        .collect()
}

/// First index at which two checkpoint streams disagree (a length mismatch
/// counts as disagreement at the shorter length).
pub fn first_mismatch(a: &[Checkpoint], b: &[Checkpoint]) -> Option<usize> {
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] != b[i] {
            return Some(i);
        }
    }
    if a.len() != b.len() {
        Some(n)
    } else {
        None
    }
}

/// Narrows a divergence between two runnable stream producers to its
/// tightest event window by halving the checkpoint interval. `run_a` and
/// `run_b` rebuild their streams at a given interval; the window returned
/// is `(start_events, end_events]` — the digests agree at `start_events`
/// and first disagree at `end_events`. If a refinement pass suddenly
/// agrees (a non-reproducible divergence), the last disagreeing window is
/// reported as-is.
pub fn bisect_window<FA, FB>(
    mut every: u64,
    run_a: FA,
    run_b: FB,
) -> Option<(u64, u64, Option<SimTime>)>
where
    FA: Fn(u64) -> Vec<Checkpoint>,
    FB: Fn(u64) -> Vec<Checkpoint>,
{
    let (mut a, mut b) = (run_a(every), run_b(every));
    let mut idx = first_mismatch(&a, &b)?;
    loop {
        let end = every * (idx as u64 + 1);
        let at = a.get(idx).or_else(|| b.get(idx)).map(|cp| cp.at);
        if every == 1 {
            return Some((end - 1, end, at));
        }
        let finer = (every / 2).max(1);
        let (fa, fb) = (run_a(finer), run_b(finer));
        match first_mismatch(&fa, &fb) {
            Some(fi) => {
                every = finer;
                idx = fi;
                a = fa;
                b = fb;
            }
            // The divergence did not reproduce at the finer interval
            // (e.g. genuine nondeterminism): report the coarse window.
            None => return Some((end - every, end, at)),
        }
    }
}

/// Runs the full audit: threaded collection, serial reference, comparison,
/// and — on mismatch — a bisected divergence report.
pub fn run(jobs: usize) -> AuditOutcome {
    let threaded = collect_streams(
        AUDIT_HOSTS,
        AUDIT_DAYS,
        AUDIT_SEED,
        AUDIT_REPS,
        AUDIT_EVERY,
        jobs,
    );
    let serial = collect_streams(
        AUDIT_HOSTS,
        AUDIT_DAYS,
        AUDIT_SEED,
        AUDIT_REPS,
        AUDIT_EVERY,
        1,
    );
    let mut divergence = None;
    for (rep, (t, s)) in threaded.iter().zip(&serial).enumerate() {
        if first_mismatch(t, s).is_some() {
            let rng = e11::replication_rngs(AUDIT_SEED, AUDIT_REPS)[rep].clone();
            let rng2 = rng.clone();
            let run_rep =
                move |every: u64| e11::run_audited(AUDIT_HOSTS, AUDIT_DAYS, rng.clone(), every).1;
            let run_rep2 =
                move |every: u64| e11::run_audited(AUDIT_HOSTS, AUDIT_DAYS, rng2.clone(), every).1;
            divergence = Some(match bisect_window(AUDIT_EVERY, run_rep, run_rep2) {
                Some((start, end, at)) => Divergence {
                    rep,
                    start_events: start,
                    end_events: end,
                    at,
                },
                // The in-process replay agrees with itself: the divergence
                // came from cross-thread interference, not from the
                // replication's own event stream. Report the coarse window
                // of the original mismatch.
                None => {
                    let (start, end) = first_window(t, s);
                    Divergence {
                        rep,
                        start_events: start,
                        end_events: end,
                        at: None,
                    }
                }
            });
            break;
        }
    }
    AuditOutcome {
        hosts: AUDIT_HOSTS,
        days: AUDIT_DAYS,
        every: AUDIT_EVERY,
        streams: threaded,
        divergence,
    }
}

/// Coarse event window of the first mismatch between two streams.
fn first_window(a: &[Checkpoint], b: &[Checkpoint]) -> (u64, u64) {
    let idx = first_mismatch(a, b).unwrap_or(0) as u64;
    (idx * AUDIT_EVERY, (idx + 1) * AUDIT_EVERY)
}

/// Total checkpoints across all streams.
pub fn total_checkpoints(streams: &[Vec<Checkpoint>]) -> usize {
    streams.iter().map(Vec::len).sum()
}

/// Renders the audit block. Deterministic: digests depend only on the
/// seeded replications, never on `jobs`, so this block is byte-identical
/// across thread counts — which is exactly what the CI digest gate diffs.
pub fn render(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Determinism audit ({} hosts x {} days x {} replications, checkpoint every {} events)\n",
        outcome.hosts,
        outcome.days,
        outcome.streams.len(),
        outcome.every
    ));
    out.push_str("  rep  checkpoints  first-digest        last-digest\n");
    for (i, stream) in outcome.streams.iter().enumerate() {
        let first = stream.first().map(|c| c.digest).unwrap_or(0);
        let last = stream.last().map(|c| c.digest).unwrap_or(0);
        out.push_str(&format!(
            "  {:<3}  {:<11}  0x{:016x}  0x{:016x}\n",
            i,
            stream.len(),
            first,
            last
        ));
    }
    match &outcome.divergence {
        None => out.push_str(&format!(
            "  verdict: all {} replication digest streams identical across thread schedules\n",
            outcome.streams.len()
        )),
        Some(d) => {
            out.push_str(&format!(
                "  verdict: DIVERGENCE in replication {} — first disagreeing digest in event window ({}, {}]",
                d.rep, d.start_events, d.end_events
            ));
            if let Some(at) = d.at {
                out.push_str(&format!(" at t={}us", at.as_micros()));
            }
            out.push('\n');
        }
    }
    out
}

/// A small audited drive for tests: real E11 replications, tiny scale.
#[cfg(test)]
fn tiny_streams(jobs: usize) -> Vec<Vec<Checkpoint>> {
    collect_streams(4, 1, 41, 3, 200, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_sim::SimDuration;

    #[test]
    fn threaded_collection_matches_serial() {
        let serial = tiny_streams(1);
        let threaded = tiny_streams(4);
        assert_eq!(serial, threaded);
        assert!(total_checkpoints(&serial) > 0);
    }

    #[test]
    fn first_mismatch_finds_index_and_length_skew() {
        let cp = |events, digest| Checkpoint {
            events,
            at: SimTime::ZERO + SimDuration::from_secs(events),
            digest,
        };
        let a = vec![cp(10, 1), cp(20, 2), cp(30, 3)];
        assert_eq!(first_mismatch(&a, &a), None);
        let mut b = a.clone();
        b[1].digest = 99;
        assert_eq!(first_mismatch(&a, &b), Some(1));
        assert_eq!(first_mismatch(&a, &a[..2]), Some(2));
    }

    #[test]
    fn bisect_refines_a_synthetic_divergence_to_one_event() {
        // Two synthetic "runs" that agree up to event 137 and disagree
        // after it, at any checkpoint interval.
        let stream_for = |every: u64, diverge_after: u64| -> Vec<Checkpoint> {
            (1..=(400 / every))
                .map(|k| {
                    let events = k * every;
                    Checkpoint {
                        events,
                        at: SimTime::ZERO + SimDuration::from_secs(events),
                        digest: if events > diverge_after {
                            events * 7 + 1
                        } else {
                            events * 7
                        },
                    }
                })
                .collect()
        };
        let w = bisect_window(
            100,
            move |every| stream_for(every, u64::MAX),
            move |every| stream_for(every, 137),
        )
        .expect("streams diverge");
        assert_eq!((w.0, w.1), (137, 138));
    }

    #[test]
    fn bisect_returns_none_when_streams_agree() {
        let stream = |every: u64| -> Vec<Checkpoint> {
            (1..=(300 / every))
                .map(|k| Checkpoint {
                    events: k * every,
                    at: SimTime::ZERO,
                    digest: k * every,
                })
                .collect()
        };
        assert_eq!(bisect_window(50, stream, stream), None);
    }

    #[test]
    fn render_is_deterministic_and_names_divergences() {
        let outcome = AuditOutcome {
            hosts: 4,
            days: 1,
            every: 200,
            streams: tiny_streams(1),
            divergence: None,
        };
        let a = render(&outcome);
        assert!(a.contains("verdict: all"));
        let diverged = AuditOutcome {
            divergence: Some(Divergence {
                rep: 2,
                start_events: 137,
                end_events: 138,
                at: Some(SimTime::ZERO + SimDuration::from_secs(5)),
            }),
            ..outcome
        };
        let b = render(&diverged);
        assert!(b.contains("DIVERGENCE in replication 2"));
        assert!(b.contains("(137, 138]"));
        assert!(b.contains("t=5000000us"));
    }
}
