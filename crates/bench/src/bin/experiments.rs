//! Prints the reproduction tables for every experiment (or a subset).
//!
//! ```text
//! cargo run -p sprite-bench --release --bin experiments             # all
//! cargo run -p sprite-bench --release --bin experiments -- e05      # one
//! cargo run -p sprite-bench --release --bin experiments -- list     # index
//! cargo run -p sprite-bench --release --bin experiments -- --jobs 4 # parallel
//! cargo run -p sprite-bench --release --bin experiments -- --json   # sidecar
//! cargo run -p sprite-bench --release --bin experiments -- --faults 42:0.1
//! cargo run -p sprite-bench --release --bin experiments -- --audit   # digest audit
//! cargo run -p sprite-bench --release --bin experiments -- --e10-sweep # 100..10k hosts
//! ```
//!
//! Tables go to stdout and are byte-identical for every `--jobs` value
//! (see `runner`'s determinism contract); wall-clock timings go to stderr
//! and, with `--json`, to `BENCH_experiments.json`.

#![forbid(unsafe_code)]

use std::time::Instant;

use sprite_bench::experiments::{e05, e10, e11, f01, m01, m02};
use sprite_bench::support::{fault_table_text, rpc_table_text};
use sprite_bench::{audit, runner};
use sprite_fs::SpritePath;
use sprite_sim::SimDuration;

struct Options {
    ids: Vec<String>,
    jobs: usize,
    json: bool,
    list: bool,
    macrobench: bool,
    rpc_table: bool,
    /// `--faults seed:rate` — run the F1 fault sweep after the suite.
    faults: Option<(u64, f64)>,
    /// `--audit` — replay the audit drive with state-digest checkpoints
    /// across `--jobs` threads and verify the streams against a serial
    /// in-process reference. Exits 1 on divergence.
    audit: bool,
    /// `--shards N` — logical shard count for the partitioned-parallel
    /// macrobench (0 = auto-detect from the machine, like `--jobs 0`
    /// would; default 1).
    shards: usize,
    /// `--m02[=HOSTS:DAYS]` — run the partitioned-parallel determinism
    /// macrobench after the suite (serial + sharded drives, stream
    /// comparison). Without operands it runs the full 5000-host month.
    m02: Option<m02::M02Params>,
    /// `--e10-sweep[=SIZES]` — run the decentralized host-selection sweep
    /// (central vs sharded vs gossip) after the suite. SIZES is a
    /// comma-separated host-count list; without operands it runs
    /// 100/1000/10000. Cells run on `--jobs` threads; stdout is identical
    /// for every thread count.
    e10_sweep: Option<Vec<usize>>,
}

/// Parses the `--e10-sweep` operand: comma-separated positive host counts.
fn parse_sweep_sizes(v: &str) -> Option<Vec<usize>> {
    let sizes: Vec<usize> = v
        .split(',')
        .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n >= 2))
        .collect::<Option<_>>()?;
    (!sizes.is_empty()).then_some(sizes)
}

/// Parses the `--m02` operand: `<hosts>:<days>`, both positive.
fn parse_m02(v: &str) -> Option<m02::M02Params> {
    let (hosts, days) = v.split_once(':')?;
    let hosts = hosts.parse::<u32>().ok().filter(|&h| h >= 1)?;
    let days = days.parse::<u64>().ok().filter(|&d| d >= 1)?;
    Some(m02::M02Params { hosts, days })
}

/// Parses the `--faults` operand: `<seed>:<rate>` with an integer seed and
/// a drop rate in `[0, 1]`.
fn parse_faults(v: &str) -> Option<(u64, f64)> {
    let (seed, rate) = v.split_once(':')?;
    let seed = seed.parse::<u64>().ok()?;
    let rate = rate.parse::<f64>().ok()?;
    (0.0..=1.0).contains(&rate).then_some((seed, rate))
}

fn parse_args() -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        jobs: std::thread::available_parallelism().map_or(1, |p| p.get()),
        json: false,
        list: false,
        macrobench: false,
        rpc_table: false,
        faults: None,
        audit: false,
        shards: 1,
        m02: None,
        e10_sweep: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => opts.jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => opts.json = true,
            "--macro" => opts.macrobench = true,
            "--rpc-table" => opts.rpc_table = true,
            "--audit" => opts.audit = true,
            "--m02" => opts.m02 = Some(m02::FULL),
            "--e10-sweep" => opts.e10_sweep = Some(e10::SWEEP_SIZES.to_vec()),
            "--shards" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(0) => {
                        opts.shards = std::thread::available_parallelism().map_or(1, |p| p.get());
                    }
                    Ok(n) => opts.shards = n,
                    _ => {
                        eprintln!("--shards needs a non-negative integer (0 = auto), got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                let v = args.next().unwrap_or_default();
                match parse_faults(&v) {
                    Some(f) => opts.faults = Some(f),
                    None => {
                        eprintln!("--faults needs <seed>:<rate> with rate in [0,1], got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "list" => opts.list = true,
            _ if arg.starts_with("--jobs=") => match arg["--jobs=".len()..].parse::<usize>() {
                Ok(n) if n >= 1 => opts.jobs = n,
                _ => {
                    eprintln!("bad {arg:?}");
                    std::process::exit(2);
                }
            },
            _ if arg.starts_with("--faults=") => match parse_faults(&arg["--faults=".len()..]) {
                Some(f) => opts.faults = Some(f),
                None => {
                    eprintln!("bad {arg:?}; --faults needs <seed>:<rate> with rate in [0,1]");
                    std::process::exit(2);
                }
            },
            _ if arg.starts_with("--shards=") => match arg["--shards=".len()..].parse::<usize>() {
                Ok(0) => {
                    opts.shards = std::thread::available_parallelism().map_or(1, |p| p.get());
                }
                Ok(n) => opts.shards = n,
                _ => {
                    eprintln!("bad {arg:?}; --shards needs a non-negative integer (0 = auto)");
                    std::process::exit(2);
                }
            },
            _ if arg.starts_with("--m02=") => match parse_m02(&arg["--m02=".len()..]) {
                Some(p) => opts.m02 = Some(p),
                None => {
                    eprintln!("bad {arg:?}; --m02 takes <hosts>:<days>, both positive");
                    std::process::exit(2);
                }
            },
            _ if arg.starts_with("--e10-sweep=") => {
                match parse_sweep_sizes(&arg["--e10-sweep=".len()..]) {
                    Some(sizes) => opts.e10_sweep = Some(sizes),
                    None => {
                        eprintln!(
                            "bad {arg:?}; --e10-sweep takes comma-separated host counts >= 2"
                        );
                        std::process::exit(2);
                    }
                }
            }
            _ if arg.starts_with('-') => {
                eprintln!(
                    "unknown flag {arg:?}; flags: --jobs N, --json, --macro, --rpc-table, --faults SEED:RATE, --audit, --shards N, --m02[=HOSTS:DAYS], --e10-sweep[=SIZES], list"
                );
                std::process::exit(2);
            }
            _ => opts.ids.push(arg),
        }
    }
    opts
}

/// Minimal JSON string escape (ids and descriptions are plain ASCII, but
/// stay correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let opts = parse_args();
    let suite = sprite_bench::experiments::suite();
    if opts.list {
        for exp in &suite {
            println!("{}  {}", exp.id, exp.desc);
        }
        return;
    }
    let selected: Vec<runner::Experiment> = if opts.ids.is_empty() {
        suite
    } else {
        suite
            .into_iter()
            .filter(|exp| opts.ids.iter().any(|a| a == exp.id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; try `list`");
        std::process::exit(1);
    }

    let wall = Instant::now();
    let results = runner::run_suite(selected, opts.jobs);
    let total_wall = wall.elapsed().as_secs_f64();

    // The macrobench runs serially outside the suite (it is a data-plane
    // stress, not a reproduction table) with its own timing; the golden
    // stdout of a plain run is untouched.
    let macro_run = opts.macrobench.then(|| {
        let started = Instant::now();
        let report = m01::run();
        (report, started.elapsed().as_secs_f64())
    });

    // Like the macrobench, the per-op RPC breakdown runs a dedicated serial
    // drive (one E11 day) after the suite so the golden stdout of a plain
    // run stays untouched.
    let rpc_run = opts.rpc_table.then(|| e11::run(8, 1, e11::FULL_SEED));

    // The fault sweep is a pure function of (seed, rate) and runs serially
    // after the suite, so the golden stdout of a plain run stays untouched
    // and the appended block is identical for every --jobs value.
    let fault_run = opts.faults.map(|(seed, rate)| {
        let started = Instant::now();
        let report = f01::sweep(seed, rate);
        (report, started.elapsed().as_secs_f64())
    });

    // The determinism audit replays the audit drive twice — once across
    // the worker pool, once serially in-process — and compares the digest
    // streams. Its stdout block depends only on the seeded replications,
    // never on --jobs, so the CI gate can diff it across thread counts.
    let audit_run = opts.audit.then(|| {
        let started = Instant::now();
        let outcome = audit::run(opts.jobs);
        (outcome, started.elapsed().as_secs_f64())
    });

    // The decentralization sweep runs after the suite; its cells fan out
    // over --jobs threads but results merge by canonical index, so the
    // appended stdout block is identical for every --jobs value.
    let sweep_run = opts.e10_sweep.as_ref().map(|sizes| {
        let started = Instant::now();
        let rows = e10::run_sweep(
            sizes,
            SimDuration::from_secs(e10::SWEEP_DURATION_SECS),
            e10::SWEEP_SEED,
            opts.jobs,
        );
        (rows, started.elapsed().as_secs_f64())
    });

    // The partitioned-parallel macrobench drives the sharded cluster
    // workload serial and sharded and compares digest streams. Its stdout
    // block is partition-invariant so the CI gate can diff it across
    // --shards values; partition-dependent numbers go to stderr/JSON.
    let m02_run = opts.m02.map(|params| {
        let started = Instant::now();
        let report = m02::run(params, opts.shards);
        (report, started.elapsed().as_secs_f64())
    });

    println!("# Sprite process migration — reproduction tables\n");
    for r in &results {
        println!("{}", r.rendered);
        println!("  [{}: {}]\n", r.id, r.desc);
    }
    if let Some((report, _)) = &macro_run {
        println!("{}", m01::render(report));
        println!("  [m01: cluster-scale data-plane macrobench]\n");
    }
    if let Some(report) = &rpc_run {
        println!(
            "{}",
            rpc_table_text(
                "Per-op RPC traffic (serial drive: E11 month, 8 hosts x 1 day)",
                &report.rpc
            )
        );
        println!(
            "  [rpc-table: NetStats saw {} messages / {} bytes]\n",
            report.net_messages, report.net_bytes
        );
    }
    if let Some((report, _)) = &fault_run {
        println!("{}", f01::render(report));
        println!("  [f01: fault-injection sweep]\n");
        println!(
            "{}",
            fault_table_text(
                "Per-op fault events (merged across the sweep)",
                &report.faults
            )
        );
        println!(
            "  [fault-table: {} drops, {} retries, {} giveups]\n",
            report.faults.total_drops(),
            report.faults.total_retries(),
            report.faults.total_giveups()
        );
    }
    if let Some((outcome, _)) = &audit_run {
        println!("{}", audit::render(outcome));
        println!(
            "  [audit: {} checkpoints across {} replications]\n",
            audit::total_checkpoints(&outcome.streams),
            outcome.streams.len()
        );
    }
    if let Some((rows, _)) = &sweep_run {
        println!("{}", e10::render_sweep(rows));
        println!("  [e10-sweep: decentralized host selection at scale]\n");
    }
    if let Some((report, _)) = &m02_run {
        println!("{}", m02::render(report));
        println!(
            "  [m02: {} digest checkpoints, serial vs sharded]\n",
            report.serial.audit.len()
        );
    }
    for r in &results {
        eprintln!(
            "[timing] {}: {:.2}s cpu across {} unit{}",
            r.id,
            r.cpu.as_secs_f64(),
            r.units,
            if r.units == 1 { "" } else { "s" }
        );
    }
    eprintln!(
        "[timing] total: {total_wall:.2}s wall with {} job{}",
        opts.jobs,
        if opts.jobs == 1 { "" } else { "s" }
    );
    if let Some((report, macro_wall)) = &macro_run {
        eprintln!(
            "[timing] m01: {macro_wall:.2}s wall serial at {} hosts",
            report.hosts
        );
    }
    if let Some((report, fault_wall)) = &fault_run {
        eprintln!(
            "[timing] f01: {fault_wall:.2}s wall serial across {} rates (seed {})",
            report.rows.len(),
            report.seed
        );
    }
    if let Some((outcome, audit_wall)) = &audit_run {
        eprintln!(
            "[timing] audit: {audit_wall:.2}s wall over {} replications ({} jobs + serial reference)",
            outcome.streams.len(),
            opts.jobs
        );
    }
    if let Some((rows, sweep_wall)) = &sweep_run {
        eprintln!(
            "[timing] e10-sweep: {sweep_wall:.2}s wall over {} cells with {} job{}",
            rows.len(),
            opts.jobs,
            if opts.jobs == 1 { "" } else { "s" }
        );
    }
    if let Some((r, m02_wall)) = &m02_run {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        eprintln!(
            "[timing] m02: {m02_wall:.2}s wall total; serial {:.2}s, sharded {:.2}s \
             ({} shards on {} workers, {cores} cores), speedup {:.2}x",
            r.serial.wall_seconds,
            r.sharded.wall_seconds,
            r.sharded.shards,
            r.sharded.workers,
            r.serial.wall_seconds / r.sharded.wall_seconds.max(1e-9),
        );
        eprintln!(
            "[timing] m02: wall per simulated day: serial {:.3}s, sharded {:.3}s",
            r.serial.wall_seconds / r.params.days as f64,
            r.sharded.wall_seconds / r.params.days as f64,
        );
        eprintln!(
            "[counters] m02: {} cross-shard of {} messages, barrier stall {:.3}s across {} workers",
            r.sharded.cross_messages,
            r.sharded.messages,
            m02::total_stall_ns(&r.sharded) as f64 / 1e9,
            r.sharded.workers,
        );
        for s in &r.sharded.shard_counters {
            eprintln!(
                "[counters] m02 shard {}: {} cells, {} events, {} timers, {} sent, {} in",
                s.shard, s.cells, s.events, s.timers_set, s.messages_sent, s.messages_in
            );
        }
        if !r.digest_match {
            eprintln!("m02 FAILED: sharded digest stream diverged from serial");
        }
    }
    eprintln!(
        "[counters] interned paths: {}, hash probes: {}",
        SpritePath::interned_count(),
        runner::hash_probes_total()
    );
    if let Some((report, _)) = &macro_run {
        eprintln!(
            "[counters] m01 slabs: pcb high-water {}, stream high-water {}, stale lookups {}",
            report.proc_slab_high_water, report.stream_slab_high_water, report.stale_handle_lookups
        );
    }

    if opts.json {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
        json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.3},\n"));
        json.push_str("  \"experiments\": [\n");
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"description\": \"{}\", \"units\": {}, \"cpu_seconds\": {:.3}}}{}\n",
                json_escape(r.id),
                json_escape(r.desc),
                r.units,
                r.cpu.as_secs_f64(),
                if i + 1 == results.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]");
        if let Some((r, macro_wall)) = &macro_run {
            json.push_str(",\n  \"macrobench\": {\n");
            json.push_str("    \"id\": \"m01\",\n");
            json.push_str(
                "    \"description\": \"cluster-scale data-plane macrobench (month + 100 simulations)\",\n",
            );
            json.push_str(&format!("    \"hosts\": {},\n", r.hosts));
            json.push_str(&format!("    \"wall_seconds\": {macro_wall:.3},\n"));
            json.push_str(&format!(
                "    \"proc_slab_high_water\": {},\n",
                r.proc_slab_high_water
            ));
            json.push_str(&format!(
                "    \"stream_slab_high_water\": {},\n",
                r.stream_slab_high_water
            ));
            json.push_str(&format!(
                "    \"stale_handle_lookups\": {},\n",
                r.stale_handle_lookups
            ));
            json.push_str(&format!(
                "    \"interned_paths\": {},\n",
                SpritePath::interned_count()
            ));
            json.push_str(&format!(
                "    \"hash_probes\": {},\n",
                runner::hash_probes_total()
            ));
            json.push_str(&format!(
                "    \"rpc_total_messages\": {},\n",
                r.rpc.total_messages()
            ));
            json.push_str(&format!(
                "    \"rpc_total_bytes\": {},\n",
                r.rpc.total_bytes()
            ));
            json.push_str(&format!("    \"net_messages\": {},\n", r.net_messages));
            json.push_str(&format!("    \"net_bytes\": {},\n", r.net_bytes));
            json.push_str(&format!(
                "    \"hostsel_requests\": {},\n",
                r.hostsel_requests
            ));
            json.push_str(&format!(
                "    \"hostsel_select_mean_ms\": {:.3},\n",
                r.hostsel_select_mean_ms
            ));
            json.push_str(&format!("    \"hostsel_bytes\": {},\n", r.hostsel_bytes));
            json.push_str(&format!("    \"fs_shards\": {},\n", r.fs_shards));
            json.push_str(&format!(
                "    \"fs_replica_hits\": {},\n",
                r.fs_replica_hits
            ));
            json.push_str(&format!(
                "    \"fs_server_busy_max_seconds\": {:.3},\n",
                r.fs_server_busy_max.as_secs_f64()
            ));
            json.push_str("    \"rpc_table\": [\n");
            let rows: Vec<_> = r.rpc.rows().collect();
            for (i, (op, row)) in rows.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"op\": \"{}\", \"calls\": {}, \"messages\": {}, \"bytes\": {}, \"mean_rtt_ms\": {:.3}}}{}\n",
                    op.label(),
                    row.calls,
                    row.messages,
                    row.bytes,
                    row.rtt.mean() * 1e3,
                    if i + 1 == rows.len() { "" } else { "," }
                ));
            }
            json.push_str("    ]\n");
            json.push_str("  }");
        }
        {
            // The sharded-FS speedup sweep is a pure function of its
            // constants and cheap enough to recompute under --json, so the
            // gate script always has the per-shard saturation crossover.
            let sweeps = e05::run_table_sweep();
            json.push_str(",\n  \"e05_sharding\": {\n");
            json.push_str(
                "    \"description\": \"pmake speedup vs hosts and FS shards; saturation crossover per shard count\",\n",
            );
            json.push_str(&format!("    \"files\": {},\n", e05::TABLE_FILES));
            json.push_str(&format!("    \"seed\": {},\n", e05::TABLE_SEED));
            json.push_str(&format!(
                "    \"crossover_threshold\": {},\n",
                e05::CROSSOVER_THRESHOLD
            ));
            json.push_str("    \"sweeps\": [\n");
            for (i, rows) in sweeps.iter().enumerate() {
                let shards = rows.first().map_or(0, |r| r.fs_shards);
                json.push_str(&format!(
                    "      {{\"fs_shards\": {}, \"crossover_hosts\": {}, \"rows\": [\n",
                    shards,
                    e05::crossover(rows, e05::CROSSOVER_THRESHOLD)
                ));
                for (j, r) in rows.iter().enumerate() {
                    json.push_str(&format!(
                        "        {{\"hosts\": {}, \"speedup\": {:.3}, \"worst_server_utilization\": {:.4}, \"server_busy_max_seconds\": {:.3}, \"replica_hits\": {}}}{}\n",
                        r.hosts,
                        r.speedup,
                        r.server_utilization,
                        r.server_busy_max.as_secs_f64(),
                        r.replica_hits,
                        if j + 1 == rows.len() { "" } else { "," }
                    ));
                }
                json.push_str(&format!(
                    "      ]}}{}\n",
                    if i + 1 == sweeps.len() { "" } else { "," }
                ));
            }
            json.push_str("    ]\n");
            json.push_str("  }");
        }
        if let Some((r, fault_wall)) = &fault_run {
            json.push_str(",\n  \"faults\": {\n");
            json.push_str("    \"id\": \"f01\",\n");
            json.push_str("    \"description\": \"fault-injection sweep: migration outcomes vs drop rate\",\n");
            json.push_str(&format!("    \"seed\": {},\n", r.seed));
            json.push_str(&format!("    \"wall_seconds\": {fault_wall:.3},\n"));
            json.push_str("    \"rows\": [\n");
            for (i, row) in r.rows.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"rate\": {:.6}, \"attempts\": {}, \"completed\": {}, \"aborts\": {}, \"failures\": {}, \"drops\": {}, \"retries\": {}, \"giveups\": {}, \"crash_kills\": {}, \"survivors\": {}}}{}\n",
                    row.rate,
                    row.attempts,
                    row.completed,
                    row.aborts,
                    row.failures,
                    row.drops,
                    row.retries,
                    row.giveups,
                    row.fault_kills,
                    row.survivors,
                    if i + 1 == r.rows.len() { "" } else { "," }
                ));
            }
            json.push_str("    ],\n");
            json.push_str("    \"fault_table\": [\n");
            let rows: Vec<_> = r.faults.rows().collect();
            for (i, (op, row)) in rows.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"op\": \"{}\", \"drops\": {}, \"delays\": {}, \"partitions\": {}, \"crashes\": {}, \"retries\": {}, \"giveups\": {}}}{}\n",
                    op.label(),
                    row.drops,
                    row.delays,
                    row.partitions,
                    row.crashes,
                    row.retries,
                    row.giveups,
                    if i + 1 == rows.len() { "" } else { "," }
                ));
            }
            json.push_str("    ]\n");
            json.push_str("  }");
        }
        if let Some((outcome, audit_wall)) = &audit_run {
            json.push_str(",\n  \"audit\": {\n");
            json.push_str(
                "    \"description\": \"state-digest determinism audit (threaded vs serial)\",\n",
            );
            json.push_str(&format!("    \"hosts\": {},\n", outcome.hosts));
            json.push_str(&format!("    \"days\": {},\n", outcome.days));
            json.push_str(&format!(
                "    \"replications\": {},\n",
                outcome.streams.len()
            ));
            json.push_str(&format!(
                "    \"checkpoint_every_events\": {},\n",
                outcome.every
            ));
            json.push_str(&format!(
                "    \"checkpoints\": {},\n",
                audit::total_checkpoints(&outcome.streams)
            ));
            json.push_str(&format!("    \"wall_seconds\": {audit_wall:.3},\n"));
            json.push_str(&format!(
                "    \"divergent\": {}\n",
                outcome.divergence.is_some()
            ));
            json.push_str("  }");
        }
        if let Some((rows, sweep_wall)) = &sweep_run {
            json.push_str(",\n  \"e10_sweep\": {\n");
            json.push_str(
                "    \"description\": \"decentralized host selection at scale: central vs sharded vs gossip\",\n",
            );
            json.push_str(&format!(
                "    \"duration_secs\": {},\n",
                e10::SWEEP_DURATION_SECS
            ));
            json.push_str(&format!("    \"seed\": {},\n", e10::SWEEP_SEED));
            json.push_str(&format!("    \"wall_seconds\": {sweep_wall:.3},\n"));
            json.push_str("    \"rows\": [\n");
            for (i, r) in rows.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"architecture\": \"{}\", \"hosts\": {}, \"requests\": {}, \"grant_rate\": {:.4}, \"conflicts_per_request\": {:.4}, \"staleness_s\": {:.3}, \"quality_pct\": {:.1}, \"mean_latency_ms\": {:.4}, \"messages_per_request\": {:.2}, \"wire_bytes\": {}}}{}\n",
                    r.name,
                    r.hosts,
                    r.requests,
                    r.grant_rate,
                    r.conflicts_per_request,
                    r.staleness_s,
                    r.quality_pct,
                    r.mean_latency_ms,
                    r.messages_per_request,
                    r.wire_bytes,
                    if i + 1 == rows.len() { "" } else { "," }
                ));
            }
            json.push_str("    ]\n");
            json.push_str("  }");
        }
        if let Some((r, m02_wall)) = &m02_run {
            let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
            json.push_str(",\n  \"m02\": {\n");
            json.push_str(
                "    \"description\": \"partitioned-parallel determinism macrobench (sharded month)\",\n",
            );
            json.push_str(&format!("    \"hosts\": {},\n", r.params.hosts));
            json.push_str(&format!("    \"days\": {},\n", r.params.days));
            json.push_str(&format!("    \"seed\": {},\n", m02::FULL_SEED));
            json.push_str(&format!("    \"shards\": {},\n", r.sharded.shards));
            json.push_str(&format!("    \"workers\": {},\n", r.sharded.workers));
            json.push_str(&format!("    \"cores\": {cores},\n"));
            json.push_str(&format!("    \"wall_seconds\": {m02_wall:.3},\n"));
            json.push_str(&format!(
                "    \"serial_wall_seconds\": {:.3},\n",
                r.serial.wall_seconds
            ));
            json.push_str(&format!(
                "    \"sharded_wall_seconds\": {:.3},\n",
                r.sharded.wall_seconds
            ));
            json.push_str(&format!(
                "    \"serial_wall_per_sim_day_seconds\": {:.4},\n",
                r.serial.wall_seconds / r.params.days as f64
            ));
            json.push_str(&format!(
                "    \"sharded_wall_per_sim_day_seconds\": {:.4},\n",
                r.sharded.wall_seconds / r.params.days as f64
            ));
            json.push_str(&format!(
                "    \"speedup\": {:.3},\n",
                r.serial.wall_seconds / r.sharded.wall_seconds.max(1e-9)
            ));
            json.push_str(&format!("    \"windows\": {},\n", r.serial.windows));
            json.push_str(&format!("    \"events\": {},\n", r.serial.events));
            json.push_str(&format!("    \"messages\": {},\n", r.serial.messages));
            json.push_str(&format!(
                "    \"cross_shard_messages\": {},\n",
                r.sharded.cross_messages
            ));
            json.push_str(&format!(
                "    \"barrier_stall_seconds\": {:.3},\n",
                m02::total_stall_ns(&r.sharded) as f64 / 1e9
            ));
            json.push_str(&format!(
                "    \"jobs_spawned\": {},\n",
                r.serial.jobs.spawned
            ));
            json.push_str(&format!(
                "    \"jobs_completed\": {},\n",
                r.serial.jobs.completed
            ));
            json.push_str(&format!(
                "    \"jobs_migrated\": {},\n",
                r.serial.jobs.migrated
            ));
            json.push_str(&format!(
                "    \"jobs_evicted\": {},\n",
                r.serial.jobs.evicted
            ));
            json.push_str(&format!(
                "    \"digest_checkpoints\": {},\n",
                r.serial.audit.len()
            ));
            json.push_str(&format!(
                "    \"digest_stream\": \"{:016x}\",\n",
                m02::stream_digest(&r.serial.audit)
            ));
            json.push_str(&format!("    \"digest_match\": {},\n", r.digest_match));
            json.push_str("    \"shard_counters\": [\n");
            for (i, s) in r.sharded.shard_counters.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"shard\": {}, \"cells\": {}, \"events\": {}, \"timers_set\": {}, \"messages_sent\": {}, \"messages_in\": {}}}{}\n",
                    s.shard,
                    s.cells,
                    s.events,
                    s.timers_set,
                    s.messages_sent,
                    s.messages_in,
                    if i + 1 == r.sharded.shard_counters.len() { "" } else { "," }
                ));
            }
            json.push_str("    ],\n");
            json.push_str("    \"worker_stalls\": [\n");
            for (i, w) in r.sharded.worker_stalls.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"worker\": {}, \"stall_ns\": {}}}{}\n",
                    w.worker,
                    w.stall_ns,
                    if i + 1 == r.sharded.worker_stalls.len() {
                        ""
                    } else {
                        ","
                    }
                ));
            }
            json.push_str("    ]\n");
            json.push_str("  }");
        }
        json.push_str("\n}\n");
        let path = "BENCH_experiments.json";
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[timing] wrote {path}");
    }

    if let Some((outcome, _)) = &audit_run {
        if let Some(d) = &outcome.divergence {
            eprintln!(
                "audit FAILED: replication {} diverged in event window ({}, {}]",
                d.rep, d.start_events, d.end_events
            );
            std::process::exit(1);
        }
    }
    if let Some((r, _)) = &m02_run {
        if !r.digest_match {
            std::process::exit(1);
        }
    }
}
