//! Prints the reproduction tables for every experiment (or a subset).
//!
//! ```text
//! cargo run -p sprite-bench --release --bin experiments          # all
//! cargo run -p sprite-bench --release --bin experiments -- e05   # one
//! cargo run -p sprite-bench --release --bin experiments -- list  # index
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = sprite_bench::experiments::all();
    if args.first().map(String::as_str) == Some("list") {
        for (id, desc, _) in &suite {
            println!("{id}  {desc}");
        }
        return;
    }
    let selected: Vec<_> = if args.is_empty() {
        suite
    } else {
        suite
            .into_iter()
            .filter(|(id, _, _)| args.iter().any(|a| a == id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; try `list`");
        std::process::exit(1);
    }
    println!("# Sprite process migration — reproduction tables\n");
    for (id, desc, table) in selected {
        let wall = Instant::now();
        let rendered = table();
        println!("{rendered}");
        println!(
            "  [{id}: {desc}; generated in {:.1}s wall]\n",
            wall.elapsed().as_secs_f64()
        );
    }
}
