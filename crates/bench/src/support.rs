//! Shared scaffolding for the experiment harness.

use sprite_core::{MigrationConfig, Migrator};
use sprite_fs::SpritePath;
use sprite_hostsel::{
    AvailabilityPolicy, CentralServer, HostInfo, HostSelector, ShardedCoordinator,
};
use sprite_kernel::Cluster;
use sprite_net::{CostModel, HostId, PAGE_SIZE};
use sprite_sim::{SimDuration, SimTime};
use sprite_vm::{SegmentKind, VirtAddr};

/// Host index shorthand.
pub fn h(i: u32) -> HostId {
    HostId::new(i)
}

/// A standard experiment cluster: `hosts` machines, file server on host 0,
/// `/bin/sim` and `/bin/cc` installed. Returns the cluster and the time at
/// which setup finished.
pub fn standard_cluster(hosts: usize) -> (Cluster, SimTime) {
    cluster_with(CostModel::sun3(), hosts, sprite_fs::FsConfig::default())
}

/// Like [`standard_cluster`] but with an explicit hardware generation and
/// file-system configuration — the ablations sweep these.
pub fn cluster_with(
    cost: CostModel,
    hosts: usize,
    fs_config: sprite_fs::FsConfig,
) -> (Cluster, SimTime) {
    let mut c = Cluster::with_fs_config(cost, hosts, fs_config);
    c.add_file_server(h(0), SpritePath::new("/"));
    let t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/sim"), 32 * 1024)
        .expect("install /bin/sim");
    let t = c
        .install_program(t, SpritePath::new("/bin/cc"), 48 * 1024)
        .expect("install /bin/cc");
    (c, t)
}

/// Like [`standard_cluster`] but the root domain is exported by a striped
/// group of `fs_shards` server daemons on hosts `0..fs_shards` (clamped to
/// `[1, hosts-1]`). At one shard this is exactly [`standard_cluster`]'s
/// layout; at N the namespace, replica serving and paging stripes spread
/// across N server CPUs.
pub fn sharded_cluster(hosts: usize, fs_shards: usize) -> (Cluster, SimTime) {
    let shards = fs_shards.clamp(1, hosts.saturating_sub(1).max(1));
    let mut c = Cluster::with_fs_config(CostModel::sun3(), hosts, sprite_fs::FsConfig::default());
    let servers: Vec<HostId> = (0..shards as u32).map(h).collect();
    c.add_sharded_file_service(&servers, SpritePath::new("/"));
    let t = c
        .install_program(SimTime::ZERO, SpritePath::new("/bin/sim"), 32 * 1024)
        .expect("install /bin/sim");
    let t = c
        .install_program(t, SpritePath::new("/bin/cc"), 48 * 1024)
        .expect("install /bin/cc");
    (c, t)
}

/// A default migrator for `hosts`.
pub fn standard_migrator(hosts: usize) -> Migrator {
    Migrator::new(MigrationConfig::default(), hosts)
}

/// A central-server selector already told that hosts `first..hosts` are
/// idle (hosts below `first` are reserved: server, home, ...).
pub fn warmed_selector(cluster: &mut Cluster, hosts: usize, first: u32) -> CentralServer {
    let mut sel = CentralServer::new(h(0), AvailabilityPolicy::default());
    for i in 0..hosts as u32 {
        let info = if i < first {
            HostInfo {
                host: h(i),
                load: 2.0,
                idle: SimDuration::ZERO,
                console_active: true,
            }
        } else {
            HostInfo::idle_host(h(i), SimDuration::from_secs(3600))
        };
        sel.report(&mut cluster.net, SimTime::ZERO, info);
    }
    sel
}

/// A sharded-coordinator selector (hosts hashed across `coordinators`
/// daemons) warmed the same way as [`warmed_selector`]: hosts below `first`
/// reported busy, the rest idle for an hour.
pub fn warmed_sharded_selector(
    cluster: &mut Cluster,
    hosts: usize,
    coordinators: usize,
    first: u32,
) -> ShardedCoordinator {
    let mut sel = ShardedCoordinator::new(hosts, coordinators, AvailabilityPolicy::default());
    for i in 0..hosts as u32 {
        let info = if i < first {
            HostInfo {
                host: h(i),
                load: 2.0,
                idle: SimDuration::ZERO,
                console_active: true,
            }
        } else {
            HostInfo::idle_host(h(i), SimDuration::from_secs(3600))
        };
        sel.report(&mut cluster.net, SimTime::ZERO, info);
    }
    sel
}

/// Dirties `megabytes` of a process's heap so migration has something to
/// move. Returns the completion time.
pub fn dirty_heap(
    cluster: &mut Cluster,
    now: SimTime,
    pid: sprite_kernel::ProcessId,
    megabytes: f64,
) -> SimTime {
    let bytes = (megabytes * 1024.0 * 1024.0) as u64;
    if bytes == 0 {
        return now;
    }
    let host = cluster.pcb(pid).expect("pid exists").current;
    let mut space = cluster
        .pcb_mut(pid)
        .expect("pid exists")
        .space
        .take()
        .expect("process has a space");
    let data = vec![0xd7u8; bytes as usize];
    let t = space
        .write(
            &mut cluster.fs,
            &mut cluster.net,
            now,
            host,
            VirtAddr::new(SegmentKind::Heap, 0),
            &data,
        )
        .expect("heap write");
    cluster.pcb_mut(pid).expect("pid exists").space = Some(space);
    t
}

/// Pages needed for `megabytes` of heap (plus slack).
pub fn pages_for_mb(megabytes: f64) -> u64 {
    ((megabytes * 1024.0 * 1024.0) as u64).div_ceil(PAGE_SIZE) + 4
}

/// Fixed-width table writer so every experiment prints the same way.
#[derive(Debug, Clone)]
pub struct TableWriter {
    title: String,
    header: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl TableWriter {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TableWriter {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            widths: header.iter().map(|s| s.len()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        for (i, c) in cells.iter().enumerate() {
            self.widths[i] = self.widths[i].max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Adds a footnote printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &self.widths));
        let rule: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        for r in &self.rows {
            out.push_str(&line(r, &self.widths));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Renders a transport's per-op traffic table ([`sprite_net::RpcTable`])
/// with a trailing totals row; the totals equal the raw [`NetStats`]
/// counters because every wire byte is attributed to a typed op.
///
/// [`NetStats`]: sprite_net::NetStats
pub fn rpc_table_text(title: &str, table: &sprite_net::RpcTable) -> String {
    let mut t = TableWriter::new(title, &["op", "calls", "messages", "bytes", "mean rtt"]);
    for (op, row) in table.rows() {
        t.row(&[
            op.label().into(),
            row.calls.to_string(),
            row.messages.to_string(),
            row.bytes.to_string(),
            format!("{:.2}ms", row.rtt.mean() * 1e3),
        ]);
    }
    t.row(&[
        "total".into(),
        table.total_calls().to_string(),
        table.total_messages().to_string(),
        table.total_bytes().to_string(),
        "".into(),
    ]);
    t.render()
}

/// Renders a per-op fault breakdown ([`sprite_net::FaultStats`]): only ops
/// that saw at least one fault event appear, in table order.
pub fn fault_table_text(title: &str, table: &sprite_net::FaultStats) -> String {
    let mut t = TableWriter::new(
        title,
        &[
            "op",
            "drops",
            "delays",
            "partitions",
            "crashes",
            "retries",
            "giveups",
        ],
    );
    for (op, row) in table.rows() {
        t.row(&[
            op.label().into(),
            row.drops.to_string(),
            row.delays.to_string(),
            row.partitions.to_string(),
            row.crashes.to_string(),
            row.retries.to_string(),
            row.giveups.to_string(),
        ]);
    }
    if table.is_empty() {
        t.note("no fault events recorded");
    }
    t.render()
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: SimDuration) -> String {
    format!("{:.2}", d.as_millis_f64())
}

/// Formats a duration in seconds with two decimals.
pub fn secs(d: SimDuration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableWriter::new("demo", &["col", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("note: a note"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn standard_cluster_is_usable() {
        let (mut c, t) = standard_cluster(4);
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let t2 = dirty_heap(&mut c, t, pid, 0.05);
        assert!(t2 > t);
        assert!(c.pcb(pid).unwrap().space.as_ref().unwrap().dirty_pages() > 0);
    }

    #[test]
    fn sharded_cluster_reduces_to_standard_at_one_shard() {
        let (_c1, t1) = standard_cluster(4);
        let (c2, t2) = sharded_cluster(4, 1);
        assert_eq!(t1, t2, "one shard is byte-for-byte the classic layout");
        assert_eq!(c2.fs.fs_shards(), 1);
        let (c3, _) = sharded_cluster(6, 2);
        assert_eq!(c3.fs.fs_shards(), 2);
    }

    #[test]
    fn pages_for_mb_covers_request() {
        assert!(pages_for_mb(1.0) >= 256);
        assert!(pages_for_mb(0.0) >= 1);
    }
}
