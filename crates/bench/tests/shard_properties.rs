//! Property test for the conservative-parallel engine's headline claim:
//! the digest stream of a sharded run is **byte-identical** to the serial
//! run's, for every seed and every shard count.
//!
//! The m02 macrobench checks one workload at one seed; this test sweeps
//! seeds × shard counts over the same host-cell cluster model, so a
//! partition-dependence bug that only shows under some RNG history has
//! forty chances per `cargo test -q` to surface. Worker counts are varied
//! too (serial reference runs single-threaded, sharded runs auto-detect),
//! so the thread schedule itself is exercised where the machine allows.

use sprite_kernel::build_cluster_cells;
use sprite_net::{CostModel, ShardLink};
use sprite_sim::{Checkpoint, ShardedEngine, SimTime};

const HOSTS: u32 = 31;
const SIM_MINUTES: u64 = 10 * 60; // ten simulated hours
const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn drive(seed: u64, nshards: usize, workers: usize) -> (Vec<Checkpoint>, u64, u64) {
    let link = ShardLink::new(CostModel::sun3(), sprite_sim::SimDuration::from_secs(60));
    let cells = build_cluster_cells(HOSTS, seed);
    let mut eng = ShardedEngine::new(cells, nshards, link.lookahead());
    eng.set_workers(workers);
    eng.audit_every_windows(30);
    for id in 0..HOSTS {
        eng.seed_timer(id, SimTime::from_micros(60_000_000), 0);
    }
    eng.run(SimTime::from_micros(SIM_MINUTES * 60_000_000));
    let events = eng.events_executed();
    let messages = eng.messages_delivered();
    (eng.take_audit_stream(), events, messages)
}

#[test]
fn digest_stream_is_seed_by_seed_identical_across_shard_counts() {
    for seed in SEEDS {
        let (reference, ref_events, ref_messages) = drive(seed, 1, 1);
        assert!(
            !reference.is_empty(),
            "seed {seed}: the reference run produced no checkpoints"
        );
        for nshards in SHARD_COUNTS {
            // workers = 0 lets the engine auto-detect; on a single-core
            // machine that still exercises the threaded path when the
            // clamp allows more than one worker.
            let (stream, events, messages) = drive(seed, nshards, 0);
            assert_eq!(
                stream, reference,
                "seed {seed}: digest stream diverged at {nshards} shards"
            );
            assert_eq!(
                events, ref_events,
                "seed {seed}: event count diverged at {nshards} shards"
            );
            assert_eq!(
                messages, ref_messages,
                "seed {seed}: message count diverged at {nshards} shards"
            );
        }
    }
}

#[test]
fn explicit_worker_counts_cannot_change_the_stream() {
    // Same partitioning, different thread counts: 4 shards on 1, 2 and 4
    // workers must agree exactly (the engine clamps to the machine, so on
    // a small box some of these collapse to the same schedule — the
    // assertion is still meaningful on any machine with >= 2 cores).
    let (reference, _, _) = drive(7, 4, 1);
    for workers in [2, 4] {
        let (stream, _, _) = drive(7, 4, workers);
        assert_eq!(
            stream, reference,
            "digest stream diverged at 4 shards / {workers} workers"
        );
    }
}
