//! Differential test against the checked-in golden output.
//!
//! `experiments_output.txt` at the repo root is the byte-exact stdout of a
//! serial `experiments` run. Recomputing a sample of cheap tables and
//! asserting they appear verbatim in that file pins the whole rendering
//! pipeline — slab iteration order, interned-path comparison, deterministic
//! hashing — to the committed bytes: any data-structure change that
//! reorders or renumbers output fails here, not in review.
//!
//! Only sub-hundred-millisecond experiments are recomputed so the test
//! stays fast in debug builds; `scripts/bench_check.sh` diffs the complete
//! output in release mode.

use sprite_bench::experiments::{a01, a02, a06, a07, e01, e03, e04, e06, e07, e12};

fn golden() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../experiments_output.txt");
    std::fs::read_to_string(path).expect("checked-in experiments_output.txt")
}

#[test]
fn cheap_tables_match_checked_in_output() {
    let golden = golden();
    let tables: [(&str, String); 10] = [
        ("e01", e01::table()),
        ("e03", e03::table()),
        ("e04", e04::table()),
        ("e06", e06::table()),
        ("e07", e07::table()),
        ("e12", e12::table()),
        ("a01", a01::table()),
        ("a02", a02::table()),
        ("a06", a06::table()),
        ("a07", a07::table()),
    ];
    for (id, table) in &tables {
        assert!(
            golden.contains(table),
            "{id}: recomputed table diverged from experiments_output.txt;\n\
             if the change is intentional, regenerate the golden file with\n\
             `cargo run -p sprite-bench --release --bin experiments > experiments_output.txt`\n\
             recomputed:\n{table}"
        );
    }
}

#[test]
fn golden_file_covers_every_experiment() {
    let golden = golden();
    for (id, _, _) in sprite_bench::experiments::all() {
        assert!(
            golden.contains(&format!("[{id}: ")),
            "experiments_output.txt is missing {id}"
        );
    }
}
