//! Property tests for the decentralized host-selection determinism claim:
//! gossip fanout comes from a seeded DetRng, so stdout tables and audit
//! digest streams are byte-identical for every `--jobs` and `--shards`
//! value, seed by seed.
//!
//! Three layers are swept:
//!
//! 1. the E10 decentralization sweep (central vs sharded vs gossip), whose
//!    cells fan out over worker threads and merge by canonical index;
//! 2. the E11 month driven through [`GossipDissemination`] — the m01
//!    macrobench's placement path — with the engine's audit hook armed;
//! 3. the partitioned `HostCell` cluster, whose `HostMsg::Gossip` batches
//!    must not perturb the sharded engine's digest stream.

use sprite_bench::experiments::{e10, e11};
use sprite_hostsel::{AvailabilityPolicy, GossipDissemination, HostSelector};
use sprite_kernel::{build_cluster_cells, HostCellStats};
use sprite_sim::{Checkpoint, DetRng, ShardedEngine, SimDuration, SimTime};

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

#[test]
fn e10_sweep_stdout_is_jobs_invariant_for_every_seed() {
    let d = SimDuration::from_secs(300);
    for seed in SEEDS {
        let serial = e10::run_sweep(&[40], d, seed, 1);
        let parallel = e10::run_sweep(&[40], d, seed, 4);
        assert_eq!(
            e10::render_sweep(&serial),
            e10::render_sweep(&parallel),
            "seed {seed}: sweep table diverged between 1 and 4 jobs"
        );
    }
}

/// A month-in-the-life gossip selector shaped like the m01 macrobench's,
/// scaled to the test cluster.
fn month_gossip(hosts: usize, seed: u64) -> Box<dyn HostSelector> {
    let mut g = GossipDissemination::new(hosts, 1, 4, AvailabilityPolicy::default(), seed ^ 0x6055);
    g.set_refresh_every(5);
    g.set_max_age(SimDuration::from_secs(45 * 60));
    Box::new(g)
}

#[test]
fn gossip_month_audit_streams_are_replication_pure() {
    // Each replication is a pure function of its forked RNG and the gossip
    // seed — which thread runs it (and in what order) cannot matter. Replay
    // every replication twice, in opposite orders, and require identical
    // reports and identical digest streams.
    for seed in SEEDS {
        let rngs = e11::replication_rngs(seed, 2);
        let forward: Vec<_> = rngs
            .iter()
            .enumerate()
            .map(|(i, rng)| {
                e11::run_audited_with(6, 1, rng.clone(), 200, month_gossip(6, i as u64))
            })
            .collect();
        let backward: Vec<_> = rngs
            .iter()
            .enumerate()
            .rev()
            .map(|(i, rng)| {
                e11::run_audited_with(6, 1, rng.clone(), 200, month_gossip(6, i as u64))
            })
            .collect();
        for ((ra, sa), (rb, sb)) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(sa, sb, "seed {seed}: audit stream depended on run order");
            assert_eq!(ra.jobs, rb.jobs, "seed {seed}");
            assert_eq!(ra.remote_jobs, rb.remote_jobs, "seed {seed}");
            assert_eq!(ra.hostsel_requests, rb.hostsel_requests, "seed {seed}");
            assert_eq!(ra.hostsel_bytes, rb.hostsel_bytes, "seed {seed}");
            assert_eq!(ra.sim_events, rb.sim_events, "seed {seed}");
        }
        // The two replications must not be the same run in disguise.
        assert_ne!(
            forward[0].1, forward[1].1,
            "seed {seed}: forked replications collapsed"
        );
    }
}

#[test]
fn gossip_month_places_jobs_remotely() {
    // The decentralized month still does the thesis's job: most launches
    // leave home at exec time, and selection stays off the wire (gossip
    // bytes only, no query round trips).
    let rng = DetRng::seed_from(97);
    let r = e11::run_seeded_with(8, 2, rng, month_gossip(8, 97));
    assert!(r.jobs > 10, "jobs {}", r.jobs);
    assert!(
        r.remote_jobs as f64 >= 0.5 * r.jobs as f64,
        "most jobs should place remotely: {}/{}",
        r.remote_jobs,
        r.jobs
    );
    assert_eq!(
        r.rpc.get(sprite_net::RpcOp::HostselQuery).calls,
        0,
        "gossip placement must not issue query round trips"
    );
    assert!(
        r.rpc.get(sprite_net::RpcOp::HostselGossip).calls > 0,
        "gossip pushes must carry the load vectors"
    );
}

const CELL_HOSTS: u32 = 31;
const CELL_MINUTES: u64 = 4 * 60;

fn drive_cells(seed: u64, nshards: usize) -> (Vec<Checkpoint>, Vec<HostCellStats>) {
    let cells = build_cluster_cells(CELL_HOSTS, seed);
    let mut eng = ShardedEngine::new(cells, nshards, SimDuration::from_secs(60));
    eng.set_workers(0); // auto-detect
    eng.audit_every_windows(30);
    for id in 0..CELL_HOSTS {
        eng.seed_timer(id, SimTime::from_micros(60_000_000), 0);
    }
    eng.run(SimTime::from_micros(CELL_MINUTES * 60_000_000));
    let stats = eng.cells().map(|c| c.stats()).collect();
    (eng.take_audit_stream(), stats)
}

#[test]
fn kernel_gossip_batches_survive_resharding() {
    for seed in [3u64, 7, 11] {
        let (reference, ref_stats) = drive_cells(seed, 1);
        let gossiped: u64 = ref_stats.iter().map(|s| s.gossip_sent).sum();
        assert!(gossiped > 0, "seed {seed}: cell gossip never engaged");
        for nshards in [2, 4] {
            let (stream, stats) = drive_cells(seed, nshards);
            assert_eq!(
                stream, reference,
                "seed {seed}: digest stream diverged at {nshards} shards"
            );
            assert_eq!(stats, ref_stats, "seed {seed}: stats diverged");
        }
    }
}
