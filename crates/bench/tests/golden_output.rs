//! Golden assertion: migrating every subsystem onto the typed RPC transport
//! must not change a single byte of the reproduction tables.

use sprite_bench::runner;

#[test]
fn suite_stdout_is_byte_identical_to_golden() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../experiments_output.txt");
    let golden = std::fs::read_to_string(golden_path).expect("read experiments_output.txt");
    let results = runner::run_suite(sprite_bench::experiments::suite(), 2);
    let mut out = String::from("# Sprite process migration — reproduction tables\n\n");
    for r in &results {
        out.push_str(&format!("{}\n  [{}: {}]\n\n", r.rendered, r.id, r.desc));
    }
    assert_eq!(
        out, golden,
        "reproduction tables drifted from experiments_output.txt"
    );
}
