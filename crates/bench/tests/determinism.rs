//! The parallel runner's determinism contract: for any `--jobs` value the
//! merged, rendered output is byte-identical, because units are
//! self-contained (seeds fixed before any thread starts) and merging walks
//! canonical order. Exercised here on scaled-down E10 and E11 suites so it
//! stays fast in debug builds.

use sprite_bench::experiments::{e10, e11};
use sprite_bench::runner::{merge_e10, merge_e11, run_suite, Experiment, Partial, Unit};
use sprite_sim::SimDuration;

/// A miniature suite with the same unit decomposition as the full one:
/// E10 as one unit per (size, architecture) cell, E11 as one unit per
/// forked replication.
fn small_suite() -> Vec<Experiment> {
    let sizes = [10usize, 20];
    let e10_units: Vec<Unit> = sizes
        .iter()
        .flat_map(|&hosts| {
            e10::ARCHS.map(move |kind| Unit {
                cost: hosts as u64,
                run: Box::new(move || {
                    Partial::E10Row(e10::drive_kind(
                        kind,
                        hosts,
                        SimDuration::from_secs(300),
                        e10::FULL_SEED,
                    ))
                }),
            })
        })
        .collect();
    let e11_units: Vec<Unit> = e11::replication_rngs(e11::FULL_SEED, 3)
        .into_iter()
        .map(|rng| Unit {
            cost: 100,
            run: Box::new(move || Partial::E11Report(e11::run_seeded(6, 1, rng))),
        })
        .collect();
    vec![
        Experiment {
            id: "e10",
            desc: "host-selection architectures (small)",
            units: e10_units,
            merge: merge_e10,
        },
        Experiment {
            id: "e11",
            desc: "a month in the life (small)",
            units: e11_units,
            merge: merge_e11,
        },
    ]
}

fn render_all(jobs: usize) -> String {
    run_suite(small_suite(), jobs)
        .into_iter()
        .map(|r| format!("{}\n  [{}: {}]\n", r.rendered, r.id, r.desc))
        .collect()
}

#[test]
fn output_is_byte_identical_across_job_counts() {
    let serial = render_all(1);
    assert!(
        serial.contains("E10") && serial.contains("E11"),
        "sanity: tables rendered"
    );
    for jobs in [2, 4, 8] {
        let parallel = render_all(jobs);
        assert_eq!(
            serial, parallel,
            "output with --jobs {jobs} diverged from serial"
        );
    }
}

#[test]
fn unit_decomposition_matches_serial_table() {
    // The full-suite decomposition (per-cell / per-replication units merged
    // back) must render exactly what the serial `table()` functions render.
    let rows = e10::run(&[10, 20], SimDuration::from_secs(300), e10::FULL_SEED);
    let serial_table = e10::render(&rows);
    let via_runner = run_suite(small_suite().into_iter().take(1).collect(), 4)
        .remove(0)
        .rendered;
    assert_eq!(serial_table, via_runner);

    let reports: Vec<e11::MonthReport> = e11::replication_rngs(e11::FULL_SEED, 3)
        .into_iter()
        .map(|rng| e11::run_seeded(6, 1, rng))
        .collect();
    let serial_e11 = e11::render(&e11::merge(&reports), reports.len());
    let via_runner_e11 = run_suite(small_suite(), 8).remove(1).rendered;
    assert_eq!(serial_e11, via_runner_e11);
}
