//! Std-only microbenches over the core simulated operations.
//!
//! These measure the *wall-clock* cost of executing the simulation — useful
//! for keeping the harness fast — and, once per run, print the headline
//! simulated-time numbers so `cargo bench` output shows the reproduction
//! values alongside. Each scenario is timed with `std::time::Instant` over a
//! fixed iteration count (no external benchmark harness, so the suite builds
//! offline).

use std::hint::black_box;
use std::time::Instant;

use sprite_bench::support::{dirty_heap, h, standard_cluster, standard_migrator, warmed_selector};
use sprite_core::Migrator;
use sprite_fs::SpritePath;
use sprite_pmake::{prepare_sources, run_build, DepGraph, PmakeConfig};
use sprite_sim::{DetRng, SimDuration, SimTime};
use sprite_workloads::CompileWorkload;

/// Times `iters` runs of `f` (after one untimed warmup) and prints the mean.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per_iter = total / iters;
    println!("{name:32} {per_iter:>12.2?}/iter   ({iters} iters, {total:.2?} total)");
}

fn bench_migration() {
    // Print the simulated headline number once.
    {
        let (mut cluster, t) = standard_cluster(4);
        let mut migrator = standard_migrator(4);
        let (pid, t) = cluster
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r = migrator.migrate(&mut cluster, t, pid, h(2)).unwrap();
        eprintln!(
            "[sim] trivial migration: total {} freeze {}",
            r.total_time, r.freeze_time
        );
    }
    bench("migrate_trivial_process", 200, || {
        let (mut cluster, t) = standard_cluster(4);
        let mut migrator = standard_migrator(4);
        let (pid, t) = cluster
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        black_box(migrator.migrate(&mut cluster, t, pid, h(2)).unwrap());
    });
    bench("migrate_1mb_dirty", 200, || {
        let (mut cluster, t) = standard_cluster(4);
        let mut migrator = standard_migrator(4);
        let (pid, t) = cluster
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 300, 8)
            .unwrap();
        let t = dirty_heap(&mut cluster, t, pid, 1.0);
        black_box(migrator.migrate(&mut cluster, t, pid, h(2)).unwrap());
    });
}

fn bench_pmake() {
    {
        let (mut cluster, t0) = standard_cluster(8);
        let mut migrator = standard_migrator(8);
        let mut selector = warmed_selector(&mut cluster, 8, 2);
        let graph = DepGraph::from_workload(
            &CompileWorkload {
                files: 12,
                ..CompileWorkload::default()
            },
            &mut DetRng::seed_from(1),
        );
        let t = prepare_sources(&mut cluster, &graph, h(1), t0).unwrap();
        let r = run_build(
            &mut cluster,
            &mut migrator,
            &mut selector,
            h(1),
            &graph,
            &PmakeConfig::default(),
            t,
        )
        .unwrap();
        eprintln!(
            "[sim] 12-file pmake on 8 hosts: makespan {} eff-par {:.2}",
            r.makespan, r.effective_parallelism
        );
    }
    bench("pmake_12_files_8_hosts", 50, || {
        let (mut cluster, t0) = standard_cluster(8);
        let mut migrator = standard_migrator(8);
        let mut selector = warmed_selector(&mut cluster, 8, 2);
        let graph = DepGraph::from_workload(
            &CompileWorkload {
                files: 12,
                ..CompileWorkload::default()
            },
            &mut DetRng::seed_from(1),
        );
        let t = prepare_sources(&mut cluster, &graph, h(1), t0).unwrap();
        black_box(
            run_build(
                &mut cluster,
                &mut migrator,
                &mut selector,
                h(1),
                &graph,
                &PmakeConfig::default(),
                t,
            )
            .unwrap(),
        );
    });
}

fn bench_fs_and_eviction() {
    bench("fs_write_read_64kb", 200, || {
        let (mut cluster, t) = standard_cluster(3);
        let (pid, t) = cluster
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 8, 4)
            .unwrap();
        cluster
            .fs
            .create(&mut cluster.net, t, h(1), SpritePath::new("/bench/data"))
            .unwrap();
        let (fd, t) = cluster
            .open_fd(
                t,
                pid,
                SpritePath::new("/bench/data"),
                sprite_fs::OpenMode::ReadWrite,
            )
            .unwrap();
        let t = cluster.write_fd(t, pid, fd, &[7u8; 65536]).unwrap();
        let stream = cluster.pcb(pid).unwrap().fd(fd).unwrap();
        cluster.fs.seek(stream, 0).unwrap();
        black_box(cluster.read_fd(t, pid, fd, 65536).unwrap());
    });
    bench("evict_4_foreign_processes", 100, || {
        let hosts = 7;
        let (mut cluster, mut t) = standard_cluster(hosts);
        let mut migrator: Migrator = standard_migrator(hosts);
        for i in 0..4u32 {
            let (pid, t1) = cluster
                .spawn(t, h(2 + i), &SpritePath::new("/bin/sim"), 16, 4)
                .unwrap();
            let r = migrator.migrate(&mut cluster, t1, pid, h(1)).unwrap();
            t = r.resumed_at + SimDuration::from_millis(1);
        }
        black_box(migrator.evict_all(&mut cluster, t, h(1)).unwrap());
    });
    bench("simulated_hour_of_gossip", 100, || {
        use sprite_hostsel::{AvailabilityPolicy, HostInfo, HostSelector, Probabilistic};
        use sprite_net::{CostModel, HostId, Transport};
        let hosts = 50;
        let mut net = Transport::new(CostModel::sun3(), hosts);
        let mut sel = Probabilistic::new(hosts, 4, AvailabilityPolicy::default(), 3);
        let mut t = SimTime::ZERO;
        for _ in 0..60 {
            for i in 0..hosts as u32 {
                let info = HostInfo::idle_host(HostId::new(i), SimDuration::from_secs(900));
                sel.report(&mut net, t, info);
            }
            t += SimDuration::from_secs(60);
        }
        black_box(sel.stats().messages);
    });
}

fn bench_hostsel_ranking() {
    use sprite_hostsel::{AvailabilityPolicy, GossipDissemination, HostInfo, HostSelector};
    use sprite_net::{CostModel, HostId, Transport};
    let hosts = 10_000;
    let mut net = Transport::new(CostModel::sun3(), hosts);
    let mut sel = GossipDissemination::new(hosts, 2, 8, AvailabilityPolicy::default(), 17);
    sel.set_cache_capacity(hosts);
    sel.set_max_age(SimDuration::from_secs(3600));
    let now = SimTime::ZERO + SimDuration::from_secs(1000);
    let world: Vec<HostInfo> = (0..hosts as u32)
        .map(|i| {
            HostInfo::idle_host(
                HostId::new(i),
                SimDuration::from_secs(60 + u64::from(i % 997)),
            )
        })
        .collect();
    let requester = HostId::new(0);
    for info in &world {
        sel.prime(requester, *info, now);
    }
    let mut t = now;
    sprite_sim::take_hash_probes(); // drain the thread counter
    bench("gossip_rank_10k_cached", 200, || {
        let (pick, t2) = sel.select(&mut net, t, requester, &world);
        let host = pick.expect("a warm cache always grants");
        t = sel.release(&mut net, t2, requester, host);
        black_box(host);
    });
    // The fast path's contract: a select is a scan over the cache slots and
    // the reusable scratch — no hashing, no allocation growth.
    assert_eq!(
        sprite_sim::take_hash_probes(),
        0,
        "the ranking fast path must not hash"
    );
    assert_eq!(
        sel.ranker_grows(),
        0,
        "pre-sized ranking scratch must not reallocate"
    );
    eprintln!(
        "[sim] gossip ranking scanned {} cached entries per select, hash- and allocation-free",
        sel.cached_entries(requester)
    );
}

fn main() {
    println!("core_ops microbench (std::time::Instant, mean of fixed iters)");
    bench_migration();
    bench_pmake();
    bench_fs_and_eviction();
    bench_hostsel_ranking();
}
