//! Event-engine throughput microbench: calendar queue vs the seed's
//! binary-heap engine on a periodic-tick-heavy workload.
//!
//! The workload models what the experiment harness actually does all day:
//! a cluster's worth of per-host daemons each waking on a fixed period
//! (load-average updates, host-selector reports) with a cheap handler, so
//! scheduling overhead — not handler work — dominates. The reference engine
//! below reproduces the seed implementation: a `BinaryHeap` of boxed
//! `FnOnce` closures, one fresh allocation per tick. The real engine uses
//! `schedule_periodic`, which boxes each daemon's handler once and re-arms
//! it in place.
//!
//! Prints events/sec for both engines, the throughput ratio, and the
//! calendar engine's effort counters (proving the allocation reduction).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

use sprite_sim::{Engine, SimDuration, SimTime};

// ---------------------------------------------------------------------------
// Reference engine: the seed's BinaryHeap-of-boxed-FnOnce implementation.
// ---------------------------------------------------------------------------

type RefHandler<S> = Box<dyn FnOnce(&mut S, &mut RefEngine<S>)>;

struct RefScheduled<S> {
    at: SimTime,
    seq: u64,
    run: RefHandler<S>,
}

impl<S> PartialEq for RefScheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for RefScheduled<S> {}
impl<S> PartialOrd for RefScheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for RefScheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct RefEngine<S> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<RefScheduled<S>>,
}

impl<S> RefEngine<S> {
    fn new() -> Self {
        RefEngine {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_in<F>(&mut self, delay: SimDuration, handler: F)
    where
        F: FnOnce(&mut S, &mut RefEngine<S>) + 'static,
    {
        let at = self.now + delay;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(RefScheduled {
            at,
            seq,
            run: Box::new(handler),
        });
    }

    fn run(&mut self, state: &mut S) -> u64 {
        let mut executed = 0;
        while let Some(ev) = self.queue.pop() {
            self.now = ev.at;
            (ev.run)(state, self);
            executed += 1;
        }
        executed
    }
}

// ---------------------------------------------------------------------------
// Workload: DAEMONS periodic ticks at staggered phases over HORIZON.
// ---------------------------------------------------------------------------

const DAEMONS: u64 = 50;
const PERIOD_SECS: u64 = 5;
const HORIZON_SECS: u64 = 12 * 3600;

struct World {
    ticks: u64,
    acc: u64,
}

fn tick_work(world: &mut World, daemon: u64, now: SimTime) {
    world.ticks += 1;
    // A cheap, branchy stand-in for a daemon's bookkeeping.
    world.acc = world
        .acc
        .wrapping_mul(6364136223846793005)
        .wrapping_add(daemon ^ now.as_micros());
}

fn run_reference() -> (u64, f64) {
    let mut world = World { ticks: 0, acc: 0 };
    let mut engine = RefEngine::new();
    let horizon = SimTime::ZERO + SimDuration::from_secs(HORIZON_SECS);
    // Seed style: every tick boxes a fresh closure for the next one.
    fn arm(engine: &mut RefEngine<World>, daemon: u64, horizon: SimTime) {
        engine.schedule_in(SimDuration::from_secs(PERIOD_SECS), move |w, e| {
            tick_work(w, daemon, e.now());
            if e.now() < horizon {
                arm(e, daemon, horizon);
            }
        });
    }
    for d in 0..DAEMONS {
        // Stagger phases so ticks do not all collide on one timestamp.
        let phase = SimDuration::from_millis(d * 97);
        engine.schedule_in(phase, move |w, e| {
            tick_work(w, d, e.now());
            arm(e, d, horizon);
        });
    }
    let start = Instant::now();
    let executed = engine.run(&mut world);
    let secs = start.elapsed().as_secs_f64();
    black_box(world.acc);
    (executed, secs)
}

fn run_calendar() -> (u64, f64, sprite_sim::EngineCounters) {
    let mut world = World { ticks: 0, acc: 0 };
    let mut engine: Engine<World> = Engine::new();
    let horizon = SimTime::ZERO + SimDuration::from_secs(HORIZON_SECS);
    for d in 0..DAEMONS {
        let phase = SimDuration::from_millis(d * 97);
        engine.schedule_periodic(
            phase,
            SimDuration::from_secs(PERIOD_SECS),
            move |w: &mut World, e: &mut Engine<World>| {
                tick_work(w, d, e.now());
                e.now() < horizon
            },
        );
    }
    let start = Instant::now();
    engine.run(&mut world);
    let secs = start.elapsed().as_secs_f64();
    black_box(world.acc);
    (engine.events_executed(), secs, engine.counters())
}

fn main() {
    println!(
        "engine_throughput: {DAEMONS} daemons, {PERIOD_SECS}s period, \
         {HORIZON_SECS}s horizon"
    );
    // Warm up both paths once, then measure the best of three runs to damp
    // scheduler noise on shared machines.
    run_reference();
    run_calendar();
    let mut best_ref = f64::INFINITY;
    let mut ref_events = 0;
    for _ in 0..3 {
        let (n, s) = run_reference();
        ref_events = n;
        best_ref = best_ref.min(s);
    }
    let mut best_cal = f64::INFINITY;
    let mut cal_events = 0;
    let mut counters = sprite_sim::EngineCounters::default();
    for _ in 0..3 {
        let (n, s, c) = run_calendar();
        cal_events = n;
        counters = c;
        best_cal = best_cal.min(s);
    }
    let ref_rate = ref_events as f64 / best_ref;
    let cal_rate = cal_events as f64 / best_cal;
    println!(
        "reference (BinaryHeap + box/tick): {ref_events:>9} events in {:>8.2?} = {:>12.0} ev/s",
        std::time::Duration::from_secs_f64(best_ref),
        ref_rate
    );
    println!(
        "calendar  (schedule_periodic):     {cal_events:>9} events in {:>8.2?} = {:>12.0} ev/s",
        std::time::Duration::from_secs_f64(best_cal),
        cal_rate
    );
    println!("throughput ratio: {:.2}x", cal_rate / ref_rate);
    println!("calendar counters: {counters}");
    let avoided = counters.periodic_reschedules as f64
        / (counters.periodic_reschedules + counters.handler_allocations) as f64;
    println!(
        "allocations avoided by periodic re-arm: {:.1}% ({} re-arms vs {} boxed handlers)",
        avoided * 100.0,
        counters.periodic_reschedules,
        counters.handler_allocations
    );
    assert_eq!(ref_events, cal_events, "engines must execute the same work");
}
