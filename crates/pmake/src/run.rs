//! The parallel build engine.
//!
//! Drives a [`DepGraph`] to completion on a simulated Sprite cluster:
//! ready targets are launched by a controller process at the home
//! workstation, each as a fresh process that is *exec-time migrated* to an
//! idle host chosen by the host-selection facility — exactly the structure
//! of Sprite's pmake (Ch. 7.4). Compilations read their sources and write
//! their objects through the shared file system, so the file server's CPU
//! and the Ethernet are genuinely contended; the sequential link step at
//! the end is the Amdahl bottleneck.
//!
//! The baseline configuration (`use_migration = false`) runs every job on
//! the home host, giving the serial time the speedup figures divide by.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sprite_sim::{DetHashMap, DetHashSet};

use sprite_core::{MigrationError, Migrator};
use sprite_fs::{FsError, OpenMode, SpritePath};
use sprite_hostsel::{HostInfo, HostSelector};
use sprite_kernel::{Cluster, KernelError, ProcessId};
use sprite_net::HostId;
use sprite_sim::{SimDuration, SimTime};

use crate::graph::{Action, DepGraph};

/// Build-engine tunables.
#[derive(Debug, Clone)]
pub struct PmakeConfig {
    /// Controller bookkeeping per job launch (dependency analysis, fork).
    pub launch_overhead: SimDuration,
    /// Ship jobs to idle hosts (true) or run everything at home (baseline).
    pub use_migration: bool,
    /// Maximum jobs in flight at once (pmake's job window).
    pub max_parallel: usize,
    /// Compile jobs allowed to run concurrently on the home host itself.
    /// Real pmake kept the user's own machine responsive by running at most
    /// a job or two locally; unplaced jobs *wait* for a host to free up
    /// rather than piling onto the home CPU.
    pub local_slots: usize,
}

impl Default for PmakeConfig {
    fn default() -> Self {
        PmakeConfig {
            launch_overhead: SimDuration::from_millis(50),
            use_migration: true,
            max_parallel: 64,
            local_slots: 1,
        }
    }
}

/// What a build run did.
#[derive(Debug, Clone)]
pub struct PmakeReport {
    /// Wall-clock time from start to the last target's completion.
    pub makespan: SimDuration,
    /// When the build finished.
    pub finished_at: SimTime,
    /// Targets built.
    pub targets_built: usize,
    /// Jobs that ran on a remote (migrated-to) host.
    pub remote_builds: usize,
    /// Jobs that ran at home.
    pub local_builds: usize,
    /// Total CPU consumed by build jobs.
    pub total_cpu: SimDuration,
    /// `total_cpu / makespan` — the "effective processor utilization" the
    /// thesis reports (≈3.0 for a 12-way pmake).
    pub effective_parallelism: f64,
}

/// Why a build failed.
#[derive(Debug)]
pub enum PmakeError {
    /// Kernel-level failure.
    Kernel(KernelError),
    /// Migration failure that was not a simple refusal.
    Migration(MigrationError),
}

impl std::fmt::Display for PmakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmakeError::Kernel(e) => write!(f, "kernel: {e}"),
            PmakeError::Migration(e) => write!(f, "migration: {e}"),
        }
    }
}

impl std::error::Error for PmakeError {}

impl From<KernelError> for PmakeError {
    fn from(e: KernelError) -> Self {
        PmakeError::Kernel(e)
    }
}

impl From<FsError> for PmakeError {
    fn from(e: FsError) -> Self {
        PmakeError::Kernel(KernelError::Fs(e))
    }
}

impl From<MigrationError> for PmakeError {
    fn from(e: MigrationError) -> Self {
        PmakeError::Migration(e)
    }
}

/// Ground-truth host snapshot used by the selector for conflict detection.
pub fn cluster_truth(cluster: &Cluster, busy_threshold: usize) -> Vec<HostInfo> {
    cluster
        .hosts()
        .map(|h| HostInfo {
            host: h.id,
            load: h.resident().len() as f64,
            idle: if h.console_active || h.resident().len() > busy_threshold {
                SimDuration::ZERO
            } else {
                SimDuration::from_secs(3600)
            },
            console_active: h.console_active,
        })
        .collect()
}

/// Creates the source tree and the compiler binary; run before the
/// measured build.
pub fn prepare_sources(
    cluster: &mut Cluster,
    graph: &DepGraph,
    home: HostId,
    now: SimTime,
) -> Result<SimTime, PmakeError> {
    let mut t = now;
    if cluster.program(&SpritePath::new("/bin/cc")).is_none() {
        t = cluster.install_program(t, SpritePath::new("/bin/cc"), 48 * 1024)?;
    }
    let write_file = |cluster: &mut Cluster,
                      t: SimTime,
                      name: &str,
                      bytes: u64|
     -> Result<SimTime, PmakeError> {
        let path = SpritePath::new(name);
        if cluster.fs.resolve(&path).is_err() {
            return Ok(t);
        }
        match cluster.fs.create(&mut cluster.net, t, home, path.clone()) {
            Ok((_, t2)) => {
                let (s, t3) = cluster
                    .fs
                    .open(&mut cluster.net, t2, home, path, OpenMode::Write)?;
                let data = vec![b'c'; bytes as usize];
                let t4 = cluster.fs.write(&mut cluster.net, t3, home, s, &data)?;
                Ok(cluster.fs.close(&mut cluster.net, t4, home, s)?)
            }
            Err(FsError::AlreadyExists(_)) => Ok(t),
            Err(e) => Err(e.into()),
        }
    };
    for i in 0..graph.len() {
        if let Action::Compile(job) = &graph.target(i).action {
            let (src, headers, src_bytes) = (job.src.clone(), job.headers.clone(), job.src_bytes);
            t = write_file(cluster, t, &src, src_bytes)?;
            for hdr in &headers {
                t = write_file(cluster, t, hdr, 8 * 1024)?;
            }
        }
    }
    Ok(t)
}

/// One job advances one file-system operation (or one compute burst) per
/// simulation event. The granularity matters: a real compile blocks per
/// *syscall*, so two jobs on different hosts interleave their RPCs at the
/// file server and on the wire. Batching a whole read phase into a single
/// event would serialize entire open/read/close chains — including their
/// message latencies — through the shared-resource queues, and no amount
/// of server-side parallelism could then improve the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Open the next input file (or move to Compute when none remain).
    ReadOpen,
    /// Read one chunk from the open input.
    ReadChunk,
    /// Close the drained input.
    ReadClose,
    Compute,
    /// Create + open the output file.
    WriteOpen,
    /// Write the output bytes.
    WriteChunk,
    /// Close the output.
    WriteClose,
    Finish,
}

#[derive(Debug)]
struct RunningJob {
    pid: ProcessId,
    host: HostId,
    remote: bool,
    phase: Phase,
    fd: Option<usize>,
    read_remaining: Vec<String>,
}

/// Runs `graph` to completion. See the module docs for the execution model.
///
/// # Errors
///
/// Fails on kernel/file-system errors or unexpected migration failures;
/// a selector simply finding no idle host is not an error (the job runs at
/// home).
pub fn run_build(
    cluster: &mut Cluster,
    migrator: &mut Migrator,
    selector: &mut dyn HostSelector,
    home: HostId,
    graph: &DepGraph,
    config: &PmakeConfig,
    start: SimTime,
) -> Result<PmakeReport, PmakeError> {
    let mut done: DetHashSet<usize> = DetHashSet::default();
    let mut built_at: DetHashMap<usize, SimTime> = DetHashMap::default();
    let mut started: DetHashSet<usize> = DetHashSet::default();
    let mut waiting: Vec<usize> = Vec::new();
    let mut jobs: DetHashMap<usize, RunningJob> = DetHashMap::default();
    let mut queue: BinaryHeap<Reverse<(SimTime, u64, usize)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut controller_free = start;
    let mut remote_builds = 0usize;
    let mut local_builds = 0usize;
    let mut local_in_flight = 0usize;
    let mut total_cpu = SimDuration::ZERO;
    let mut finished_at = start;

    // Collect newly-ready targets into the waiting queue, then place as
    // many waiting jobs as hosts (or local slots) allow. Unplaceable jobs
    // stay queued until a completion frees capacity — pmake's job window.
    macro_rules! launch_ready {
        ($now:expr) => {{
            let now: SimTime = $now;
            controller_free = controller_free.max_of(now);
            for tgt in graph.ready(&done) {
                if !started.contains(&tgt) {
                    started.insert(tgt);
                    waiting.push(tgt);
                }
            }
            while let Some(&tgt) = waiting.first() {
                if jobs.len() >= config.max_parallel {
                    break;
                }
                let is_link = matches!(graph.target(tgt).action, Action::Link { .. });
                // Decide placement before spawning anything.
                let mut placement: Option<HostId> = None;
                let mut t_sel = controller_free;
                if config.use_migration && !is_link {
                    let truth = cluster_truth(cluster, 0);
                    let (choice, t2) =
                        selector.select(&mut cluster.net, controller_free, home, &truth);
                    t_sel = t2;
                    placement = choice;
                }
                let run_locally = placement.is_none();
                if run_locally && !is_link && local_in_flight >= config.local_slots {
                    // Nowhere to put it: hold the job until capacity frees.
                    break;
                }
                waiting.remove(0);
                let (pid, t1) = cluster.spawn(t_sel, home, &SpritePath::new("/bin/cc"), 64, 16)?;
                let mut host = home;
                let mut remote = false;
                let mut t_placed = t1;
                if let Some(target_host) = placement {
                    let report = migrator.exec_migrate(
                        cluster,
                        t1,
                        pid,
                        target_host,
                        &SpritePath::new("/bin/cc"),
                        64,
                        16,
                    )?;
                    host = target_host;
                    remote = true;
                    t_placed = report.resumed_at;
                }
                if remote {
                    remote_builds += 1;
                } else {
                    local_builds += 1;
                    if !is_link {
                        local_in_flight += 1;
                    }
                }
                let read_remaining = match &graph.target(tgt).action {
                    Action::Compile(job) => {
                        let mut inputs = job.headers.clone();
                        inputs.push(job.src.clone());
                        inputs
                    }
                    Action::Link { inputs, .. } => inputs.clone(),
                    Action::Phony => Vec::new(),
                };
                jobs.insert(
                    tgt,
                    RunningJob {
                        pid,
                        host,
                        remote,
                        phase: Phase::ReadOpen,
                        fd: None,
                        read_remaining,
                    },
                );
                seq += 1;
                queue.push(Reverse((t_placed, seq, tgt)));
                controller_free = t1 + config.launch_overhead;
            }
        }};
    }

    launch_ready!(start);

    while let Some(Reverse((t, _, tgt))) = queue.pop() {
        let job = jobs.get_mut(&tgt).expect("queued job exists");
        let next_time: SimTime;
        match job.phase {
            Phase::ReadOpen => match job.read_remaining.pop() {
                Some(path) => {
                    let (fd, t2) = cluster.open_fd(
                        t,
                        job.pid,
                        SpritePath::new(path.as_str()),
                        OpenMode::Read,
                    )?;
                    job.fd = Some(fd);
                    job.phase = Phase::ReadChunk;
                    next_time = t2;
                }
                None => {
                    job.phase = Phase::Compute;
                    next_time = t;
                }
            },
            Phase::ReadChunk => {
                let fd = job.fd.expect("input open");
                let (data, t2) = cluster.read_fd(t, job.pid, fd, 16 * 1024)?;
                if data.is_empty() {
                    job.phase = Phase::ReadClose;
                }
                next_time = t2;
            }
            Phase::ReadClose => {
                let fd = job.fd.take().expect("input open");
                next_time = cluster.close_fd(t, job.pid, fd)?;
                job.phase = Phase::ReadOpen;
            }
            Phase::Compute => {
                let cpu = match &graph.target(tgt).action {
                    Action::Compile(j) => j.cpu,
                    Action::Link { cpu, .. } => *cpu,
                    Action::Phony => SimDuration::ZERO,
                };
                total_cpu += cpu;
                let t2 = if cpu.is_zero() {
                    t
                } else {
                    cluster.run_cpu(t, job.pid, cpu)?
                };
                job.phase = Phase::WriteOpen;
                next_time = t2;
            }
            Phase::WriteOpen => {
                let out_path = match &graph.target(tgt).action {
                    Action::Compile(j) => Some(j.obj.clone()),
                    Action::Link { output, .. } => Some(output.clone()),
                    Action::Phony => None,
                };
                match out_path {
                    Some(path) => {
                        let sp = SpritePath::new(path.as_str());
                        let mut t2 = t;
                        match cluster
                            .fs
                            .create(&mut cluster.net, t2, job.host, sp.clone())
                        {
                            Ok((_, t3)) => t2 = t3,
                            Err(FsError::AlreadyExists(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                        let (fd, t3) = cluster.open_fd(t2, job.pid, sp, OpenMode::Write)?;
                        job.fd = Some(fd);
                        job.phase = Phase::WriteChunk;
                        next_time = t3;
                    }
                    None => {
                        job.phase = Phase::Finish;
                        next_time = t;
                    }
                }
            }
            Phase::WriteChunk => {
                let out_bytes = match &graph.target(tgt).action {
                    Action::Compile(j) => j.obj_bytes,
                    Action::Link { .. } => 128 * 1024,
                    Action::Phony => 0,
                };
                let fd = job.fd.expect("output open");
                let data = vec![b'o'; out_bytes as usize];
                next_time = cluster.write_fd(t, job.pid, fd, &data)?;
                job.phase = Phase::WriteClose;
            }
            Phase::WriteClose => {
                let fd = job.fd.take().expect("output open");
                next_time = cluster.close_fd(t, job.pid, fd)?;
                job.phase = Phase::Finish;
            }
            Phase::Finish => {
                let mut t2 = cluster.exit(t, job.pid, 0)?;
                if job.remote {
                    t2 = selector.release(&mut cluster.net, t2, home, job.host);
                } else if !matches!(graph.target(tgt).action, Action::Link { .. }) {
                    local_in_flight = local_in_flight.saturating_sub(1);
                }
                jobs.remove(&tgt);
                done.insert(tgt);
                built_at.insert(tgt, t2);
                finished_at = finished_at.max_of(t2);
                launch_ready!(t2);
                continue;
            }
        }
        seq += 1;
        queue.push(Reverse((next_time, seq, tgt)));
    }

    debug_assert_eq!(done.len(), graph.len(), "all targets built");
    let makespan = finished_at.elapsed_since(start);
    let effective_parallelism = if makespan.is_zero() {
        0.0
    } else {
        total_cpu.as_secs_f64() / makespan.as_secs_f64()
    };
    Ok(PmakeReport {
        makespan,
        finished_at,
        targets_built: done.len(),
        remote_builds,
        local_builds,
        total_cpu,
        effective_parallelism,
    })
}
