//! Dependency graphs and out-of-date analysis.
//!
//! pmake, "like make \[Fel79\], generates a dependency graph from its input
//! specification, determines which files are out-of-date, and recreates
//! each out-of-date file. Unlike make, it can find disjoint dependency
//! subgraphs and recreate independent targets in parallel" (Ch. 7.4.1).
//! This module is that engine: targets, dependencies, readiness, and
//! timestamp-based out-of-date analysis.

use sprite_sim::{DetHashMap, DetHashSet};

use sprite_sim::{SimDuration, SimTime};
use sprite_workloads::{CompileJob, CompileWorkload};

/// What building a target does.
#[derive(Debug, Clone)]
pub enum Action {
    /// Compile one source file into an object file.
    Compile(CompileJob),
    /// Link every input into the final program (the sequential tail that
    /// Amdahl's law says will dominate at high parallelism \[Amd67\]).
    Link {
        /// CPU demand of the link step.
        cpu: SimDuration,
        /// Object files consumed.
        inputs: Vec<String>,
        /// Output binary.
        output: String,
    },
    /// A grouping target with no work of its own.
    Phony,
}

/// One node in the dependency graph.
#[derive(Debug, Clone)]
pub struct Target {
    /// Target name (usually the file it produces).
    pub name: String,
    /// Indices of targets that must build first.
    pub deps: Vec<usize>,
    /// The work.
    pub action: Action,
}

/// A build's dependency graph.
///
/// # Examples
///
/// ```
/// use sprite_pmake::{Action, DepGraph};
/// use sprite_sim::SimDuration;
///
/// let mut g = DepGraph::new();
/// let a = g.add_target("a.o", Action::Phony, &[]);
/// let b = g.add_target("b.o", Action::Phony, &[]);
/// g.add_target(
///     "prog",
///     Action::Link {
///         cpu: SimDuration::from_secs(5),
///         inputs: vec!["a.o".into(), "b.o".into()],
///         output: "prog".into(),
///     },
///     &[a, b],
/// );
/// let done = Default::default();
/// assert_eq!(g.ready(&done), vec![a, b]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    targets: Vec<Target>,
    by_name: DetHashMap<String, usize>,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Adds a target. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the name already exists or a dependency index is bogus.
    pub fn add_target(&mut self, name: &str, action: Action, deps: &[usize]) -> usize {
        assert!(!self.by_name.contains_key(name), "duplicate target {name}");
        for &d in deps {
            assert!(d < self.targets.len(), "dependency index {d} out of range");
        }
        let idx = self.targets.len();
        self.targets.push(Target {
            name: name.to_owned(),
            deps: deps.to_vec(),
            action,
        });
        self.by_name.insert(name.to_owned(), idx);
        idx
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if the graph has no targets.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Looks a target up by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// A target by index.
    pub fn target(&self, idx: usize) -> &Target {
        &self.targets[idx]
    }

    /// Targets whose dependencies are all in `done`, excluding `done` ones,
    /// in index order (deterministic scheduling).
    pub fn ready(&self, done: &DetHashSet<usize>) -> Vec<usize> {
        self.targets
            .iter()
            .enumerate()
            .filter(|(i, t)| !done.contains(i) && t.deps.iter().all(|d| done.contains(d)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Out-of-date analysis: a target is out of date if it has no recorded
    /// build time or any dependency was built after it. `built` maps target
    /// index to its last build completion.
    pub fn out_of_date(&self, built: &DetHashMap<usize, SimTime>) -> DetHashSet<usize> {
        let mut stale = DetHashSet::default();
        // Index order is topological-enough because add order must respect
        // dependencies (enforced by add_target's index check).
        for (i, t) in self.targets.iter().enumerate() {
            let my_time = built.get(&i);
            let dep_stale = t.deps.iter().any(|d| stale.contains(d));
            let dep_newer = my_time.is_some_and(|mt| {
                t.deps
                    .iter()
                    .any(|d| built.get(d).is_some_and(|dt| dt > mt))
            });
            if my_time.is_none() || dep_stale || dep_newer {
                stale.insert(i);
            }
        }
        stale
    }

    /// The incremental-rebuild view: a new graph containing only the
    /// targets that are out of date with respect to `built`, with
    /// dependencies on up-to-date targets dropped (they are already
    /// satisfied on disk). This is what pmake actually executes when you
    /// touch one source file and type `pmake` again.
    pub fn stale_subgraph(&self, built: &DetHashMap<usize, SimTime>) -> DepGraph {
        let stale = self.out_of_date(built);
        let mut sub = DepGraph::new();
        let mut remap: DetHashMap<usize, usize> = DetHashMap::default();
        for (i, t) in self.targets.iter().enumerate() {
            if !stale.contains(&i) {
                continue;
            }
            let deps: Vec<usize> = t
                .deps
                .iter()
                .filter_map(|d| remap.get(d).copied())
                .collect();
            let new_idx = sub.add_target(&t.name, t.action.clone(), &deps);
            remap.insert(i, new_idx);
        }
        sub
    }

    /// Builds the standard two-level compile-then-link graph from a
    /// workload's jobs.
    pub fn from_compile_jobs(jobs: &[CompileJob], link_cpu: SimDuration) -> Self {
        let mut g = DepGraph::new();
        let mut objs = Vec::with_capacity(jobs.len());
        let mut inputs = Vec::with_capacity(jobs.len());
        for j in jobs {
            inputs.push(j.obj.clone());
            let idx = g.add_target(&j.obj, Action::Compile(j.clone()), &[]);
            objs.push(idx);
        }
        g.add_target(
            "/src/prog",
            Action::Link {
                cpu: link_cpu,
                inputs,
                output: "/src/prog".to_owned(),
            },
            &objs,
        );
        g
    }

    /// Convenience: graph straight from a workload description.
    pub fn from_workload(w: &CompileWorkload, rng: &mut sprite_sim::DetRng) -> Self {
        Self::from_compile_jobs(&w.jobs(rng), w.link_cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_sim::DetRng;

    fn phony(g: &mut DepGraph, name: &str, deps: &[usize]) -> usize {
        g.add_target(name, Action::Phony, deps)
    }

    #[test]
    fn readiness_respects_dependencies() {
        let mut g = DepGraph::new();
        let a = phony(&mut g, "a", &[]);
        let b = phony(&mut g, "b", &[a]);
        let c = phony(&mut g, "c", &[a]);
        let d = phony(&mut g, "d", &[b, c]);
        let mut done = DetHashSet::default();
        assert_eq!(g.ready(&done), vec![a]);
        done.insert(a);
        assert_eq!(g.ready(&done), vec![b, c]);
        done.insert(b);
        assert_eq!(g.ready(&done), vec![c]);
        done.insert(c);
        assert_eq!(g.ready(&done), vec![d]);
        done.insert(d);
        assert!(g.ready(&done).is_empty());
    }

    #[test]
    fn out_of_date_analysis() {
        let mut g = DepGraph::new();
        let src = phony(&mut g, "src", &[]);
        let obj = phony(&mut g, "obj", &[src]);
        let prog = phony(&mut g, "prog", &[obj]);
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        // Never built: everything stale.
        assert_eq!(g.out_of_date(&DetHashMap::default()).len(), 3);
        // Fully up-to-date build: nothing stale.
        let built: DetHashMap<usize, SimTime> = [(src, t(1)), (obj, t(2)), (prog, t(3))]
            .into_iter()
            .collect();
        assert!(g.out_of_date(&built).is_empty());
        // Touch the source: everything downstream is stale.
        let built: DetHashMap<usize, SimTime> = [(src, t(10)), (obj, t(2)), (prog, t(3))]
            .into_iter()
            .collect();
        let stale = g.out_of_date(&built);
        assert!(!stale.contains(&src));
        assert!(stale.contains(&obj));
        assert!(stale.contains(&prog));
    }

    #[test]
    fn compile_graph_has_link_barrier() {
        let mut rng = DetRng::seed_from(3);
        let w = CompileWorkload {
            files: 6,
            ..CompileWorkload::default()
        };
        let g = DepGraph::from_workload(&w, &mut rng);
        assert_eq!(g.len(), 7);
        let done = DetHashSet::default();
        assert_eq!(g.ready(&done).len(), 6, "all compiles independent");
        let link = g.index_of("/src/prog").unwrap();
        let all_objs: DetHashSet<usize> = (0..6).collect();
        assert_eq!(g.ready(&all_objs), vec![link]);
        match &g.target(link).action {
            Action::Link { inputs, .. } => assert_eq!(inputs.len(), 6),
            other => panic!("link target has wrong action {other:?}"),
        }
    }

    #[test]
    fn stale_subgraph_rebuilds_only_whats_needed() {
        let mut g = DepGraph::new();
        let s1 = phony(&mut g, "a.c", &[]);
        let s2 = phony(&mut g, "b.c", &[]);
        let o1 = phony(&mut g, "a.o", &[s1]);
        let o2 = phony(&mut g, "b.o", &[s2]);
        let prog = phony(&mut g, "prog", &[o1, o2]);
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        // Everything built at time 1-5, then a.c touched at time 10.
        let built: DetHashMap<usize, SimTime> = [
            (s1, t(10)),
            (s2, t(1)),
            (o1, t(2)),
            (o2, t(3)),
            (prog, t(5)),
        ]
        .into_iter()
        .collect();
        let sub = g.stale_subgraph(&built);
        // Only a.o and prog rebuild; b.o and the sources do not.
        assert_eq!(sub.len(), 2);
        let a_o = sub.index_of("a.o").expect("a.o is stale");
        let p = sub.index_of("prog").expect("prog is stale");
        assert!(sub.index_of("b.o").is_none());
        // prog depends on the rebuilt a.o but not on the satisfied b.o.
        assert_eq!(sub.target(p).deps, vec![a_o]);
        assert!(sub.target(a_o).deps.is_empty(), "a.c is up to date");
        // First wave: just a.o.
        assert_eq!(sub.ready(&DetHashSet::default()), vec![a_o]);
    }

    #[test]
    fn stale_subgraph_of_clean_build_is_empty() {
        let mut g = DepGraph::new();
        let a = phony(&mut g, "x", &[]);
        let b = phony(&mut g, "y", &[a]);
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let built: DetHashMap<usize, SimTime> = [(a, t(1)), (b, t(2))].into_iter().collect();
        assert!(g.stale_subgraph(&built).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_names_rejected() {
        let mut g = DepGraph::new();
        phony(&mut g, "x", &[]);
        phony(&mut g, "x", &[]);
    }
}
