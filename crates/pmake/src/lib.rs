//! pmake — parallel make over the simulated Sprite cluster.
//!
//! Builds a [`DepGraph`] of targets by launching each ready job as a fresh
//! process and exec-time migrating it to an idle host chosen by a
//! [`HostSelector`](sprite_hostsel::HostSelector); dependencies and the
//! final sequential link bound the achievable speedup, and the shared file
//! server's CPU bends the curve — the two effects the paper's pmake
//! evaluation (Ch. 7.4) is about.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod run;

pub use graph::{Action, DepGraph, Target};
pub use run::{cluster_truth, prepare_sources, run_build, PmakeConfig, PmakeError, PmakeReport};

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_core::{MigrationConfig, Migrator};
    use sprite_fs::SpritePath;
    use sprite_hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
    use sprite_kernel::Cluster;
    use sprite_net::{CostModel, HostId};
    use sprite_sim::{DetRng, SimDuration, SimTime};
    use sprite_workloads::CompileWorkload;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    /// A cluster with a file server on host 0 and the selector warmed with
    /// every host's idle state.
    fn build_world(hosts: u32) -> (Cluster, Migrator, CentralServer) {
        let mut cluster = Cluster::new(CostModel::sun3(), hosts as usize);
        cluster.add_file_server(h(0), SpritePath::new("/"));
        let migrator = Migrator::new(MigrationConfig::default(), hosts as usize);
        let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
        for i in 0..hosts {
            let info = HostInfo::idle_host(h(i), SimDuration::from_secs(3600));
            selector.report(&mut cluster.net, SimTime::ZERO, info);
        }
        (cluster, migrator, selector)
    }

    fn workload(files: usize) -> CompileWorkload {
        CompileWorkload {
            files,
            mean_cpu: SimDuration::from_secs(10),
            link_cpu: SimDuration::from_secs(5),
            ..CompileWorkload::default()
        }
    }

    #[test]
    fn build_completes_and_produces_objects() {
        let (mut cluster, mut migrator, mut selector) = build_world(6);
        let graph = DepGraph::from_workload(&workload(8), &mut DetRng::seed_from(1));
        let home = h(1);
        let t = prepare_sources(&mut cluster, &graph, home, SimTime::ZERO).unwrap();
        let report = run_build(
            &mut cluster,
            &mut migrator,
            &mut selector,
            home,
            &graph,
            &PmakeConfig::default(),
            t,
        )
        .unwrap();
        assert_eq!(report.targets_built, 9);
        assert!(report.remote_builds > 0, "some jobs went remote");
        // All object files (and the program) exist on the server.
        let server = cluster.fs.server(h(0)).unwrap();
        for i in 0..graph.len() {
            if let Action::Compile(job) = &graph.target(i).action {
                let id = server.lookup(&SpritePath::new(job.obj.as_str()));
                assert!(id.is_some(), "{} missing", job.obj);
            }
        }
        assert!(server.lookup(&SpritePath::new("/src/prog")).is_some());
        // No stray processes: everything exited and was reaped.
        assert_eq!(cluster.processes().count(), 0);
        // And no host still harbours foreign processes.
        for host in 0..6 {
            assert!(cluster.foreign_on(h(host)).next().is_none());
        }
    }

    #[test]
    fn migration_beats_single_host_build() {
        let files = 12;
        let serial = {
            let (mut cluster, mut migrator, mut selector) = build_world(8);
            let graph = DepGraph::from_workload(&workload(files), &mut DetRng::seed_from(2));
            let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
            let config = PmakeConfig {
                use_migration: false,
                ..PmakeConfig::default()
            };
            run_build(
                &mut cluster,
                &mut migrator,
                &mut selector,
                h(1),
                &graph,
                &config,
                t,
            )
            .unwrap()
        };
        let parallel = {
            let (mut cluster, mut migrator, mut selector) = build_world(8);
            let graph = DepGraph::from_workload(&workload(files), &mut DetRng::seed_from(2));
            let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
            run_build(
                &mut cluster,
                &mut migrator,
                &mut selector,
                h(1),
                &graph,
                &PmakeConfig::default(),
                t,
            )
            .unwrap()
        };
        let speedup = serial.makespan.as_secs_f64() / parallel.makespan.as_secs_f64();
        assert!(
            speedup > 2.0,
            "expected real speedup from 7 extra hosts, got {speedup:.2} \
             (serial {} parallel {})",
            serial.makespan,
            parallel.makespan
        );
        assert!(parallel.effective_parallelism > 2.0);
        assert_eq!(serial.remote_builds, 0);
    }

    #[test]
    fn speedup_saturates_with_amdahl_and_server_contention() {
        let files = 16;
        let mut makespans = Vec::new();
        for hosts in [2u32, 6, 12] {
            let (mut cluster, mut migrator, mut selector) = build_world(hosts);
            let graph = DepGraph::from_workload(&workload(files), &mut DetRng::seed_from(3));
            let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
            let r = run_build(
                &mut cluster,
                &mut migrator,
                &mut selector,
                h(1),
                &graph,
                &PmakeConfig::default(),
                t,
            )
            .unwrap();
            makespans.push(r.makespan);
        }
        assert!(makespans[1] < makespans[0], "6 hosts beat 2");
        // Doubling hosts again helps much less: the curve is bending.
        let gain1 = makespans[0].as_secs_f64() / makespans[1].as_secs_f64();
        let gain2 = makespans[1].as_secs_f64() / makespans[2].as_secs_f64();
        assert!(
            gain2 < gain1,
            "diminishing returns expected: gain1={gain1:.2} gain2={gain2:.2}"
        );
    }

    #[test]
    fn busy_hosts_are_not_used() {
        let (mut cluster, mut migrator, _) = build_world(4);
        // Fresh selector that believes every host is console-active.
        let mut selector = CentralServer::new(h(0), AvailabilityPolicy::default());
        for i in 0..4 {
            cluster.host_mut(h(i)).console_active = true;
            let info = HostInfo {
                host: h(i),
                load: 0.0,
                idle: SimDuration::ZERO,
                console_active: true,
            };
            selector.report(&mut cluster.net, SimTime::ZERO, info);
        }
        let graph = DepGraph::from_workload(&workload(4), &mut DetRng::seed_from(4));
        let t = prepare_sources(&mut cluster, &graph, h(1), SimTime::ZERO).unwrap();
        let report = run_build(
            &mut cluster,
            &mut migrator,
            &mut selector,
            h(1),
            &graph,
            &PmakeConfig::default(),
            t,
        )
        .unwrap();
        assert_eq!(report.remote_builds, 0, "no one to migrate to");
        assert_eq!(report.targets_built, 5);
    }
}
