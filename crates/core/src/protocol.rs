//! The process-migration protocol.
//!
//! This is the paper's primary contribution (Ch. 4): move a running process
//! between Sprite kernels so that neither the process nor anything it
//! interacts with can tell it moved, except by running faster or slower.
//!
//! A migration proceeds in the order Sprite used:
//!
//! 1. **validate** — the process must be active and migratable, and both
//!    kernels must speak the same *migration version*. Migration touches so
//!    much kernel state that it "often breaks when seemingly unrelated parts
//!    of the kernel are modified"; version numbers keep mismatched kernels
//!    from corrupting each other (Ch. 4.4).
//! 2. **negotiate** — one RPC asks the target to accept the process; a
//!    workstation whose owner has returned may refuse.
//! 3. **freeze** — the process reaches a safe point and stops executing.
//! 4. **per-module state transfer** — each kernel module encapsulates and
//!    transfers its own state: virtual memory (by the configured
//!    [`VmStrategy`]), open streams (through the I/O servers, growing shadow
//!    streams where sharing demands), then the process/scheduling/signal
//!    state itself.
//! 5. **commit** — the kernels atomically rebind the process to the target,
//!    and the home kernel's forwarding entry is updated so signals and
//!    location-dependent calls keep working.
//! 6. **resume** — the target thaws the process.
//!
//! Exec-time migration ([`Migrator::exec_migrate`]) short-circuits step 4's
//! VM transfer entirely: the old image is discarded and the new program
//! demand-pages on the target, which is why Sprite steers most migrations
//! through `exec` (Ch. 4.2.1).

use sprite_fs::{FsError, SpritePath, StreamId};
use sprite_kernel::{Cluster, KernelError, ProcessId};
use sprite_net::{HostId, RpcError, RpcOp};
use sprite_sim::{SimDuration, SimTime};
use sprite_vm::{transfer, TransferParams, TransferReport, VmStrategy};

/// How many times eviction retries a migration that failed on a
/// *transient* transport fault (a timed-out RPC from message loss). The
/// owner wants the workstation back, so eviction keeps trying through a
/// lossy network; persistent failures (partition, peer crash) surface
/// immediately — retrying into a dead link only delays the owner further.
pub const EVICTION_RETRY_LIMIT: u32 = 3;

/// Migration tunables.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// How virtual memory crosses hosts.
    pub vm_strategy: VmStrategy,
    /// Workload assumptions for the VM transfer.
    pub transfer_params: TransferParams,
    /// Refuse to migrate onto a host whose owner is at the console.
    pub respect_console: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            vm_strategy: VmStrategy::SpriteFlush,
            transfer_params: TransferParams::default(),
            respect_console: true,
        }
    }
}

/// Why a migration failed. Failures leave the process runnable at the
/// source — migration is all-or-nothing from the process's viewpoint.
#[derive(Debug)]
pub enum MigrationError {
    /// The two kernels implement different migration protocols.
    VersionMismatch {
        /// Source host and its version.
        from: (HostId, u32),
        /// Target host and its version.
        to: (HostId, u32),
    },
    /// The target declined (owner at console, or capacity policy).
    TargetRefused(HostId),
    /// Migrating to the host the process is already on.
    AlreadyThere(ProcessId),
    /// The process cannot migrate (e.g. it shares writable memory; Sprite
    /// simply disallows those — Ch. 4.2.1).
    NotMigratable(ProcessId, &'static str),
    /// A kernel-to-kernel RPC failed mid-protocol (timeout after retries,
    /// partition, or peer crash). The migration aborted and the process
    /// was rolled back to runnable at the source.
    Rpc(RpcError),
    /// Kernel or file-system failure underneath.
    Kernel(KernelError),
}

impl MigrationError {
    /// The transport failure underneath, if this error is one.
    pub fn rpc_failure(&self) -> Option<&RpcError> {
        match self {
            MigrationError::Rpc(e) => Some(e),
            _ => None,
        }
    }

    /// True if retrying the migration could plausibly succeed (the failure
    /// was message loss, not a partition or a dead peer).
    pub fn is_transient(&self) -> bool {
        self.rpc_failure().is_some_and(|e| e.is_transient())
    }
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::VersionMismatch { from, to } => write!(
                f,
                "migration version mismatch: {} has v{} but {} has v{}",
                from.0, from.1, to.0, to.1
            ),
            MigrationError::TargetRefused(h) => write!(f, "target {h} refused the process"),
            MigrationError::AlreadyThere(p) => write!(f, "{p} is already on the target host"),
            MigrationError::NotMigratable(p, why) => write!(f, "{p} cannot migrate: {why}"),
            MigrationError::Rpc(e) => write!(f, "rpc failed: {e}"),
            MigrationError::Kernel(e) => write!(f, "kernel: {e}"),
        }
    }
}

impl std::error::Error for MigrationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MigrationError::Rpc(e) => Some(e),
            MigrationError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for MigrationError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::Rpc(rpc) => MigrationError::Rpc(rpc),
            other => MigrationError::Kernel(other),
        }
    }
}

impl From<FsError> for MigrationError {
    fn from(e: FsError) -> Self {
        match e {
            FsError::Rpc(rpc) => MigrationError::Rpc(rpc),
            other => MigrationError::Kernel(KernelError::Fs(other)),
        }
    }
}

impl From<RpcError> for MigrationError {
    fn from(e: RpcError) -> Self {
        MigrationError::Rpc(e)
    }
}

/// Result alias for migration operations.
pub type MigrationResult<T> = Result<T, MigrationError>;

/// Time spent in each phase of one migration — the rows of the paper's
/// cost-breakdown table (E1).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Negotiation RPC with the target.
    pub negotiate: SimDuration,
    /// Virtual-memory transfer (flush / copy / page tables).
    pub virtual_memory: SimDuration,
    /// Open-stream transfer through the I/O servers.
    pub streams: SimDuration,
    /// Encapsulating and shipping the process/signal/scheduling state.
    pub process_state: SimDuration,
    /// Commit + home notification + resume.
    pub commit: SimDuration,
}

impl PhaseBreakdown {
    /// Total across phases.
    pub fn total(&self) -> SimDuration {
        self.negotiate + self.virtual_memory + self.streams + self.process_state + self.commit
    }
}

/// What one migration did and cost.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The migrated process.
    pub pid: ProcessId,
    /// Source host.
    pub from: HostId,
    /// Target host.
    pub to: HostId,
    /// Time the process could execute nowhere.
    pub freeze_time: SimDuration,
    /// Wall-clock time for the whole protocol.
    pub total_time: SimDuration,
    /// Per-phase costs.
    pub phases: PhaseBreakdown,
    /// The VM transfer's own report (absent for exec-time migration, which
    /// moves no VM at all).
    pub vm: Option<TransferReport>,
    /// Streams transferred.
    pub streams_moved: u64,
    /// Streams that became shadowed (shared across hosts) by this move.
    pub shadows_created: u64,
    /// When the process resumed on the target.
    pub resumed_at: SimTime,
}

/// Aggregate migration activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationTotals {
    /// Successful migrations (including evictions and exec-time).
    pub migrations: u64,
    /// Of which were at exec time.
    pub exec_migrations: u64,
    /// Of which were evictions back home.
    pub evictions: u64,
    /// Migrations refused or failed.
    pub failures: u64,
    /// Of the failures, migrations aborted *after* the freeze point and
    /// rolled back: the process was thawed runnable at the source, exactly
    /// once, on exactly one host (counted in `failures` too).
    pub aborts: u64,
    /// Sum of freeze time across migrations.
    pub total_freeze: SimDuration,
}

/// The migration engine.
///
/// # Examples
///
/// ```
/// use sprite_core::{MigrationConfig, Migrator};
/// use sprite_fs::SpritePath;
/// use sprite_kernel::Cluster;
/// use sprite_net::{CostModel, HostId};
/// use sprite_sim::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cluster = Cluster::new(CostModel::sun3(), 3);
/// cluster.add_file_server(HostId::new(0), SpritePath::new("/"));
/// let t = cluster.install_program(SimTime::ZERO, SpritePath::new("/bin/sim"), 32 * 1024)?;
/// let (pid, t) = cluster.spawn(t, HostId::new(1), &SpritePath::new("/bin/sim"), 64, 16)?;
///
/// let mut migrator = Migrator::new(MigrationConfig::default(), cluster.host_count());
/// let report = migrator.migrate(&mut cluster, t, pid, HostId::new(2))?;
/// assert_eq!(cluster.pcb(pid).unwrap().current, HostId::new(2));
/// println!("froze for {}", report.freeze_time);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Migrator {
    config: MigrationConfig,
    /// Per-host migration protocol version (Ch. 4.4).
    versions: Vec<u32>,
    totals: MigrationTotals,
}

impl Migrator {
    /// Creates a migration engine for a cluster of `hosts`, all running the
    /// same migration version.
    pub fn new(config: MigrationConfig, hosts: usize) -> Self {
        Migrator {
            config,
            versions: vec![1; hosts],
            totals: MigrationTotals::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MigrationConfig {
        &self.config
    }

    /// Replaces the VM strategy (the E2 sweep uses this).
    pub fn set_vm_strategy(&mut self, strategy: VmStrategy) {
        self.config.vm_strategy = strategy;
    }

    /// Marks `host` as running migration version `v` (simulating a kernel
    /// upgraded ahead of its peers).
    pub fn set_kernel_version(&mut self, host: HostId, v: u32) {
        self.versions[host.index()] = v;
    }

    /// Aggregate counters.
    pub fn totals(&self) -> MigrationTotals {
        self.totals
    }

    fn validate(&self, cluster: &Cluster, pid: ProcessId, to: HostId) -> MigrationResult<HostId> {
        let pcb = cluster
            .pcb(pid)
            .ok_or(MigrationError::Kernel(KernelError::NoSuchProcess(pid)))?;
        let from = pcb.current;
        if from == to {
            return Err(MigrationError::AlreadyThere(pid));
        }
        let (vf, vt) = (self.versions[from.index()], self.versions[to.index()]);
        if vf != vt {
            return Err(MigrationError::VersionMismatch {
                from: (from, vf),
                to: (to, vt),
            });
        }
        if pcb.shares_writable_memory {
            return Err(MigrationError::NotMigratable(
                pid,
                "shares writable memory with another process",
            ));
        }
        if self.config.respect_console && cluster.host(to).console_active {
            return Err(MigrationError::TargetRefused(to));
        }
        Ok(from)
    }

    /// Size of the encapsulated process state: PCB plus per-stream and
    /// per-signal records (Ch. 4.2 lists the modules).
    fn process_state_bytes(cluster: &Cluster, pid: ProcessId) -> u64 {
        let pcb = cluster.pcb(pid).expect("validated");
        1024 + 256 * pcb.open_fds().count() as u64 + 64 * pcb.pending_signals.len() as u64
    }

    /// Aborts a migration that failed after the freeze point: streams
    /// already moved to the target come back, the process thaws, and it is
    /// runnable at the source as though the migration never started —
    /// "on any error the process keeps running at the source". Returns the
    /// error so call sites can `return Err(self.abort(...))`.
    #[allow(clippy::too_many_arguments)]
    fn abort(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        pid: ProcessId,
        from: HostId,
        to: HostId,
        moved_streams: &[StreamId],
        err: MigrationError,
    ) -> MigrationError {
        let mut t = now;
        for stream in moved_streams {
            // Moving a stream back crosses the same faulty network. If the
            // undo is lost too, the I/O server keeps the target-side open
            // record; the server is the synchronization point, so the
            // record re-syncs at the stream's next successful operation.
            match cluster
                .fs
                .migrate_stream(&mut cluster.net, t, *stream, to, from, 1)
            {
                Ok((_, t2)) => t = t2,
                Err(FsError::Rpc(e)) => {
                    t = e.at();
                    cluster.trace.record(t, "fault", || {
                        format!("{pid} abort: stream undo to {from} lost: {e}")
                    });
                }
                Err(_) => {}
            }
        }
        // The freeze/thaw pair is local state; thaw cannot fail here
        // because abort only runs once, on a process this call froze.
        cluster.thaw(pid).expect("aborting a frozen process");
        self.totals.failures += 1;
        self.totals.aborts += 1;
        cluster.trace.record(t, "fault", || {
            format!("{pid} migration {from} -> {to} aborted, runnable at source: {err}")
        });
        err
    }

    /// Migrates `pid` to `to`, moving its entire execution state.
    ///
    /// # Errors
    ///
    /// See [`MigrationError`]; on any error the process keeps running at the
    /// source as though nothing happened.
    pub fn migrate(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        pid: ProcessId,
        to: HostId,
    ) -> MigrationResult<MigrationReport> {
        let from = match self.validate(cluster, pid, to) {
            Ok(f) => f,
            Err(e) => {
                self.totals.failures += 1;
                return Err(e);
            }
        };
        let mut phases = PhaseBreakdown::default();

        // Phase 1: negotiation — will the target take it? A transport
        // failure here costs nothing to undo: the process never froze.
        let t = match cluster
            .net
            .send(RpcOp::MigrateNegotiate, now, from, to, None)
        {
            Ok(d) => d.done,
            Err(e) => {
                self.totals.failures += 1;
                return Err(e.into());
            }
        };
        phases.negotiate = t.elapsed_since(now);

        // Phase 2: freeze at a safe point. From here on, every failure
        // goes through [`Migrator::abort`] so the process thaws runnable
        // at the source.
        cluster.freeze(pid)?;
        let frozen_at = t;

        // Phase 3: virtual memory, by the configured strategy. The address
        // space is taken out of the PCB while the transfer engine works on
        // it, then reinstalled — mirroring how Sprite's VM module
        // encapsulated its own state independent of the process module. A
        // failed transfer leaves every page where it was (see
        // [`sprite_vm::transfer`]), so the abort has no VM state to undo.
        let space = cluster.pcb_mut(pid).expect("validated").space.take();
        let (vm_report, t) = match space {
            Some(mut sp) => {
                let r = transfer(
                    &mut sp,
                    self.config.vm_strategy,
                    &mut cluster.fs,
                    &mut cluster.net,
                    t,
                    from,
                    to,
                    &self.config.transfer_params,
                );
                cluster.pcb_mut(pid).expect("validated").space = Some(sp);
                match r {
                    Ok(r) => {
                        let done = r.resumed_at;
                        (Some(r), done)
                    }
                    Err(e) => {
                        let at = match &e {
                            FsError::Rpc(rpc) => rpc.at(),
                            _ => t,
                        };
                        return Err(self.abort(cluster, at, pid, from, to, &[], e.into()));
                    }
                }
            }
            None => (None, t),
        };
        phases.virtual_memory = t.elapsed_since(frozen_at);

        // Phase 4: open streams, one I/O-server update each. On failure,
        // streams that already moved come back in the abort.
        let fds: Vec<_> = cluster
            .pcb(pid)
            .expect("validated")
            .open_fds()
            .map(|(_, s)| s)
            .collect();
        let streams_start = t;
        let mut t = t;
        let mut shadows = 0u64;
        let mut moved: Vec<StreamId> = Vec::new();
        for stream in &fds {
            match cluster
                .fs
                .migrate_stream(&mut cluster.net, t, *stream, from, to, 1)
            {
                Ok((outcome, t2)) => {
                    if outcome.shadowed {
                        shadows += 1;
                    }
                    t = t2;
                    moved.push(*stream);
                }
                Err(e) => {
                    let at = match &e {
                        FsError::Rpc(rpc) => rpc.at(),
                        _ => t,
                    };
                    return Err(self.abort(cluster, at, pid, from, to, &moved, e.into()));
                }
            }
        }
        phases.streams = t.elapsed_since(streams_start);

        // Phase 5: the process module's own state.
        let state_start = t;
        let bytes = Self::process_state_bytes(cluster, pid);
        let pack = cluster.net.cost().process_state_pack;
        let t = match cluster
            .net
            .stream_bulk(RpcOp::MigrateState, t + pack, from, to, bytes)
        {
            Ok(d) => d.done + pack,
            Err(e) => {
                let at = e.at();
                return Err(self.abort(cluster, at, pid, from, to, &fds, e.into()));
            }
        };
        phases.process_state = t.elapsed_since(state_start);

        // Phase 6: commit — rebind the process, tell the home kernel, resume.
        // Relocation is the local atomic rebind (it updates the home
        // kernel's forwarding pointer with it); a lost commit notification
        // only delays the home kernel's bookkeeping, so it is best-effort.
        let commit_start = t;
        cluster.relocate(pid, to)?;
        let home = pid.home();
        let mut t = t;
        if to != home && from != home {
            // Neither endpoint is the home kernel; it learns by RPC.
            match cluster.net.send(RpcOp::MigrateCommit, t, to, home, None) {
                Ok(d) => t = d.done,
                Err(e) => {
                    t = e.at();
                    cluster.trace.record(t, "fault", || {
                        format!("{pid} commit notify to {home} lost: {e}")
                    });
                }
            }
        }
        t += cluster.net.cost().context_switch;
        cluster.thaw(pid)?;
        phases.commit = t.elapsed_since(commit_start);

        let freeze_time = match &vm_report {
            // The process ran during pre-copy rounds; only the final round
            // (plus everything after it) counts as frozen.
            Some(r) => t.elapsed_since(frozen_at) - (r.total_time - r.freeze_time),
            None => t.elapsed_since(frozen_at),
        };
        self.totals.migrations += 1;
        self.totals.total_freeze += freeze_time;
        cluster.trace.record(t, "migrate", || {
            format!("{pid} migrated {from} -> {to} (froze {freeze_time})")
        });
        Ok(MigrationReport {
            pid,
            from,
            to,
            freeze_time,
            total_time: t.elapsed_since(now),
            phases,
            vm: vm_report,
            streams_moved: fds.len() as u64,
            shadows_created: shadows,
            resumed_at: t,
        })
    }

    /// Exec-time migration: replace the image with `program` *on another
    /// host*. "If migration occurs during an exec, the new address space is
    /// created on the destination machine so there is no virtual memory to
    /// transfer" (Ch. 4.2.1).
    #[allow(clippy::too_many_arguments)]
    pub fn exec_migrate(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        pid: ProcessId,
        to: HostId,
        program: &SpritePath,
        heap_pages: u64,
        stack_pages: u64,
    ) -> MigrationResult<MigrationReport> {
        let from = match self.validate(cluster, pid, to) {
            Ok(f) => f,
            Err(e) => {
                self.totals.failures += 1;
                return Err(e);
            }
        };
        let mut phases = PhaseBreakdown::default();
        let t = match cluster
            .net
            .send(RpcOp::MigrateNegotiate, now, from, to, None)
        {
            Ok(d) => d.done,
            Err(e) => {
                self.totals.failures += 1;
                return Err(e.into());
            }
        };
        phases.negotiate = t.elapsed_since(now);
        cluster.freeze(pid)?;
        let frozen_at = t;

        // The old image is kept until the streams and process state have
        // safely crossed: the exec has not happened yet, so an aborted
        // exec-migration must leave the process able to keep running (and
        // exec locally) at the source. Discarding it here used to make
        // mid-protocol faults unrecoverable.
        phases.virtual_memory = SimDuration::ZERO;

        // Streams survive exec (modulo close-on-exec, not modelled) and
        // must follow the process.
        let fds: Vec<_> = cluster
            .pcb(pid)
            .expect("validated")
            .open_fds()
            .map(|(_, s)| s)
            .collect();
        let mut t = t;
        let mut shadows = 0u64;
        let mut moved: Vec<StreamId> = Vec::new();
        for stream in &fds {
            match cluster
                .fs
                .migrate_stream(&mut cluster.net, t, *stream, from, to, 1)
            {
                Ok((outcome, t2)) => {
                    if outcome.shadowed {
                        shadows += 1;
                    }
                    t = t2;
                    moved.push(*stream);
                }
                Err(e) => {
                    let at = match &e {
                        FsError::Rpc(rpc) => rpc.at(),
                        _ => t,
                    };
                    return Err(self.abort(cluster, at, pid, from, to, &moved, e.into()));
                }
            }
        }
        phases.streams = t.elapsed_since(frozen_at);

        let state_start = t;
        let bytes = Self::process_state_bytes(cluster, pid) + 2048; // plus exec arguments/environment
        let pack = cluster.net.cost().process_state_pack;
        let t = match cluster
            .net
            .stream_bulk(RpcOp::MigrateState, t + pack, from, to, bytes)
        {
            Ok(d) => d.done + pack,
            Err(e) => {
                let at = e.at();
                return Err(self.abort(cluster, at, pid, from, to, &fds, e.into()));
            }
        };
        phases.process_state = t.elapsed_since(state_start);

        // The point of no return: discard the image, rebind, resume on
        // the target. The commit notification is best-effort, as in
        // [`Migrator::migrate`].
        let commit_start = t;
        cluster.pcb_mut(pid).expect("validated").space = None;
        cluster.relocate(pid, to)?;
        cluster.thaw(pid)?;
        let home = pid.home();
        let mut t = t;
        if to != home && from != home {
            match cluster.net.send(RpcOp::MigrateCommit, t, to, home, None) {
                Ok(d) => t = d.done,
                Err(e) => {
                    t = e.at();
                    cluster.trace.record(t, "fault", || {
                        format!("{pid} commit notify to {home} lost: {e}")
                    });
                }
            }
        }
        // The exec itself now runs on the target host.
        let t = match cluster.exec(t, pid, program, heap_pages, stack_pages) {
            Ok(t) => t,
            Err(e) => {
                // Post-commit: the process is already rebound to the
                // target; a failed exec surfaces like a local exec failure
                // there, with the process alive and imageless.
                self.totals.failures += 1;
                return Err(e.into());
            }
        };
        phases.commit = t.elapsed_since(commit_start);

        let freeze_time = t.elapsed_since(frozen_at);
        self.totals.migrations += 1;
        self.totals.exec_migrations += 1;
        self.totals.total_freeze += freeze_time;
        cluster.trace.record(t, "migrate", || {
            format!("{pid} exec-migrated {from} -> {to} running {program}")
        });
        Ok(MigrationReport {
            pid,
            from,
            to,
            freeze_time,
            total_time: t.elapsed_since(now),
            phases,
            vm: None,
            streams_moved: fds.len() as u64,
            shadows_created: shadows,
            resumed_at: t,
        })
    }

    /// Evicts every foreign process from `host`, migrating each back to its
    /// home machine — what happens when a workstation's owner returns
    /// (Ch. 8.3). Returns the individual reports; the host is foreign-free
    /// afterwards.
    pub fn evict_all(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        host: HostId,
    ) -> MigrationResult<Vec<MigrationReport>> {
        let foreign: Vec<_> = cluster.foreign_on(host).collect();
        let mut reports = Vec::with_capacity(foreign.len());
        let mut t = now;
        for pid in foreign {
            let home = pid.home();
            let mut attempts = 0u32;
            let report = loop {
                // Eviction must succeed even if the owner is at the home
                // console — it is the user's own process coming back.
                let respect = std::mem::replace(&mut self.config.respect_console, false);
                let r = self.migrate(cluster, t, pid, home);
                self.config.respect_console = respect;
                match r {
                    Ok(report) => break report,
                    Err(e) => {
                        attempts += 1;
                        // Transient losses retry (the abort already rolled
                        // the process back to runnable here); persistent
                        // faults and non-transport errors surface.
                        if attempts >= EVICTION_RETRY_LIMIT || !e.is_transient() {
                            return Err(e);
                        }
                        if let Some(rpc) = e.rpc_failure() {
                            t = rpc.at();
                        }
                        cluster.trace.record(t, "fault", || {
                            format!("eviction of {pid} retrying after {e}")
                        });
                    }
                }
            };
            t = report.resumed_at;
            self.totals.evictions += 1;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Eviction with re-selection: instead of sending every evicted process
    /// straight home (where its owner may be working), ask the given
    /// candidate list for another idle host first, falling back home only
    /// when none accepts. The thesis discusses this alternative — evicted
    /// long-running jobs would rather keep their borrowed speed than crowd
    /// the home machine (Ch. 8.3).
    ///
    /// `candidates` is the eviction-time pick order (typically from the
    /// host-selection facility); hosts that refuse (console active, version
    /// skew) are skipped. Returns the reports plus how many processes found
    /// a new foreign host rather than going home.
    pub fn evict_all_reselecting(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        host: HostId,
        candidates: &[HostId],
    ) -> MigrationResult<(Vec<MigrationReport>, usize)> {
        let foreign: Vec<_> = cluster.foreign_on(host).collect();
        let mut reports = Vec::with_capacity(foreign.len());
        let mut resettled = 0usize;
        let mut t = now;
        let mut next_candidate = 0usize;
        for pid in foreign {
            let mut placed = None;
            while next_candidate < candidates.len() {
                let target = candidates[next_candidate];
                next_candidate += 1;
                if target == host || target == pid.home() {
                    continue;
                }
                match self.migrate(cluster, t, pid, target) {
                    Ok(report) => {
                        placed = Some(report);
                        break;
                    }
                    Err(MigrationError::TargetRefused(_))
                    | Err(MigrationError::VersionMismatch { .. }) => continue,
                    // A candidate behind a lossy or severed link is as
                    // useless as one that refused; try the next.
                    Err(e) if e.rpc_failure().is_some() => {
                        if let Some(rpc) = e.rpc_failure() {
                            t = rpc.at();
                        }
                        continue;
                    }
                    Err(other) => return Err(other),
                }
            }
            let report = match placed {
                Some(r) => {
                    resettled += 1;
                    r
                }
                None => {
                    let respect = std::mem::replace(&mut self.config.respect_console, false);
                    let r = self.migrate(cluster, t, pid, pid.home());
                    self.config.respect_console = respect;
                    r?
                }
            };
            t = report.resumed_at;
            self.totals.evictions += 1;
            reports.push(report);
        }
        Ok((reports, resettled))
    }
}
