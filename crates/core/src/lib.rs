//! Transparent process migration for the simulated Sprite cluster — the
//! reproduction of the paper's primary contribution.
//!
//! [`Migrator`] implements the full migration protocol (negotiate, freeze,
//! per-module state transfer, commit, resume) over the kernel, file-system,
//! VM and network substrates; [`Migrator::exec_migrate`] implements the
//! cheap exec-time path Sprite steers most remote execution through; and
//! [`Migrator::evict_all`] implements the eviction that reclaims a
//! workstation for its returning owner.
//!
//! Transparency is the design requirement: after any sequence of
//! migrations a process keeps its PID, its open files and their access
//! positions, its pending signals and its family relationships — and every
//! location-dependent kernel call still behaves as though the process had
//! never left home. The tests in this crate check exactly those properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod protocol;

pub use checkpoint::{checkpoint_restart, CheckpointReport};
pub use protocol::{
    MigrationConfig, MigrationError, MigrationReport, MigrationResult, MigrationTotals, Migrator,
    PhaseBreakdown, EVICTION_RETRY_LIMIT,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_fs::{OpenMode, SpritePath};
    use sprite_kernel::{Cluster, KernelCall, ProcState, Signal};
    use sprite_net::{CostModel, HostId};
    use sprite_sim::{SimDuration, SimTime};
    use sprite_vm::{SegmentKind, VirtAddr, VmStrategy};

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn setup() -> (Cluster, Migrator, SimTime) {
        let mut c = Cluster::new(CostModel::sun3(), 5);
        c.add_file_server(h(0), SpritePath::new("/"));
        let t = c
            .install_program(SimTime::ZERO, SpritePath::new("/bin/sim"), 32 * 1024)
            .unwrap();
        let m = Migrator::new(MigrationConfig::default(), 5);
        (c, m, t)
    }

    #[test]
    fn migrate_moves_process_and_preserves_memory() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 64, 16)
            .unwrap();
        // Fill memory with a recognizable pattern.
        let pattern: Vec<u8> = (0..20_000u32).map(|i| (i % 240) as u8).collect();
        let addr = VirtAddr::new(SegmentKind::Heap, 512);
        let t = {
            let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
            let t2 = sp
                .write(&mut c.fs, &mut c.net, t, h(1), addr, &pattern)
                .unwrap();
            c.pcb_mut(pid).unwrap().space = Some(sp);
            t2
        };
        let report = m.migrate(&mut c, t, pid, h(2)).unwrap();
        assert_eq!(report.from, h(1));
        assert_eq!(report.to, h(2));
        let p = c.pcb(pid).unwrap();
        assert_eq!(p.current, h(2));
        assert_eq!(p.state, ProcState::Active);
        assert!(p.is_foreign());
        assert_eq!(p.migrations, 1);
        // Memory is byte-identical when touched from the new host.
        let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
        let (back, _) = sp
            .read(
                &mut c.fs,
                &mut c.net,
                report.resumed_at,
                h(2),
                addr,
                pattern.len() as u64,
            )
            .unwrap();
        assert_eq!(back, pattern);
        c.pcb_mut(pid).unwrap().space = Some(sp);
    }

    #[test]
    fn migrate_preserves_open_files_and_positions() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        c.fs.create(&mut c.net, t, h(1), SpritePath::new("/out"))
            .unwrap();
        let (fd, t) = c
            .open_fd(t, pid, SpritePath::new("/out"), OpenMode::ReadWrite)
            .unwrap();
        let t = c.write_fd(t, pid, fd, b"before-migration ").unwrap();
        let report = m.migrate(&mut c, t, pid, h(3)).unwrap();
        // The same descriptor keeps working, appending where it left off.
        let t = c
            .write_fd(report.resumed_at, pid, fd, b"after-migration")
            .unwrap();
        let stream = c.pcb(pid).unwrap().fd(fd).unwrap();
        c.fs.seek(stream, 0).unwrap();
        let (data, _) = c.read_fd(t, pid, fd, 64).unwrap();
        assert_eq!(&data, b"before-migration after-migration");
        assert_eq!(report.streams_moved, 1);
        assert_eq!(report.shadows_created, 0, "sole reference: no shadow");
    }

    #[test]
    fn migrating_forked_sharer_creates_shadow_stream() {
        let (mut c, mut m, t) = setup();
        let (parent, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        c.fs.create(&mut c.net, t, h(1), SpritePath::new("/shared"))
            .unwrap();
        let (fd, t) = c
            .open_fd(t, parent, SpritePath::new("/shared"), OpenMode::ReadWrite)
            .unwrap();
        let (child, t) = c.fork(t, parent).unwrap();
        let report = m.migrate(&mut c, t, child, h(2)).unwrap();
        assert_eq!(report.shadows_created, 1);
        // Parent writes; child (remote) sees the shared access position.
        let t = c.write_fd(report.resumed_at, parent, fd, b"12345").unwrap();
        let t = c.write_fd(t, child, fd, b"67890").unwrap();
        let stream = c.pcb(parent).unwrap().fd(fd).unwrap();
        assert_eq!(c.fs.streams().get(stream).unwrap().offset(), 10);
        let _ = t;
    }

    #[test]
    fn signals_follow_a_twice_migrated_process() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r1 = m.migrate(&mut c, t, pid, h(2)).unwrap();
        let r2 = m.migrate(&mut c, r1.resumed_at, pid, h(3)).unwrap();
        assert_eq!(c.pcb(pid).unwrap().migrations, 2);
        assert_eq!(c.locate(pid), Some(h(3)));
        let t = c.kill(r2.resumed_at, h(4), pid, Signal::Usr1).unwrap();
        assert_eq!(c.take_signals(pid).collect::<Vec<_>>(), vec![Signal::Usr1]);
        let _ = t;
    }

    #[test]
    fn migration_back_home_erases_foreignness() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r1 = m.migrate(&mut c, t, pid, h(2)).unwrap();
        assert!(c.pcb(pid).unwrap().is_foreign());
        let gettime_foreign = {
            let t0 = r1.resumed_at;
            let t1 = c.kernel_call(t0, pid, KernelCall::GetTimeOfDay).unwrap();
            t1.elapsed_since(t0)
        };
        let r2 = m.migrate(&mut c, r1.resumed_at, pid, h(1)).unwrap();
        assert!(!c.pcb(pid).unwrap().is_foreign());
        let gettime_home = {
            let t0 = r2.resumed_at;
            let t1 = c.kernel_call(t0, pid, KernelCall::GetTimeOfDay).unwrap();
            t1.elapsed_since(t0)
        };
        assert!(gettime_home < gettime_foreign);
    }

    #[test]
    fn version_mismatch_refuses_migration() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        m.set_kernel_version(h(2), 2);
        match m.migrate(&mut c, t, pid, h(2)) {
            Err(MigrationError::VersionMismatch { from, to }) => {
                assert_eq!(from, (h(1), 1));
                assert_eq!(to, (h(2), 2));
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        // The process is untouched and still migratable elsewhere.
        assert_eq!(c.pcb(pid).unwrap().state, ProcState::Active);
        assert!(m.migrate(&mut c, t, pid, h(3)).is_ok());
        assert_eq!(m.totals().failures, 1);
    }

    #[test]
    fn console_owner_refuses_foreign_processes() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        c.host_mut(h(2)).console_active = true;
        assert!(matches!(
            m.migrate(&mut c, t, pid, h(2)),
            Err(MigrationError::TargetRefused(_))
        ));
    }

    #[test]
    fn migrate_to_self_is_an_error() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        assert!(matches!(
            m.migrate(&mut c, t, pid, h(1)),
            Err(MigrationError::AlreadyThere(_))
        ));
    }

    #[test]
    fn exec_migration_is_much_cheaper_than_active_migration() {
        let (mut c, mut m, t) = setup();
        // A process with a big dirty image.
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 512, 16)
            .unwrap();
        let t = {
            let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
            let t2 = sp
                .write(
                    &mut c.fs,
                    &mut c.net,
                    t,
                    h(1),
                    VirtAddr::new(SegmentKind::Heap, 0),
                    &vec![9u8; 512 * 4096],
                )
                .unwrap();
            c.pcb_mut(pid).unwrap().space = Some(sp);
            t2
        };
        // Active migration of the dirty image...
        let active = m.migrate(&mut c, t, pid, h(2)).unwrap();
        // ...versus exec-time migration of a fresh identical process.
        let (pid2, t2) = c
            .spawn(
                active.resumed_at,
                h(1),
                &SpritePath::new("/bin/sim"),
                512,
                16,
            )
            .unwrap();
        let execm = m
            .exec_migrate(
                &mut c,
                t2,
                pid2,
                h(3),
                &SpritePath::new("/bin/sim"),
                512,
                16,
            )
            .unwrap();
        assert!(
            execm.total_time.as_secs_f64() < active.total_time.as_secs_f64() / 4.0,
            "exec-time {} should be far below active {}",
            execm.total_time,
            active.total_time
        );
        assert!(execm.vm.is_none());
        assert_eq!(m.totals().exec_migrations, 1);
        assert_eq!(c.pcb(pid2).unwrap().current, h(3));
    }

    #[test]
    fn eviction_returns_all_foreign_processes_home() {
        let (mut c, mut m, t) = setup();
        let (a, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let (b, t) = c
            .spawn(t, h(2), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r1 = m.migrate(&mut c, t, a, h(4)).unwrap();
        let r2 = m.migrate(&mut c, r1.resumed_at, b, h(4)).unwrap();
        assert_eq!(c.foreign_on(h(4)).count(), 2);
        // The owner comes back.
        c.host_mut(h(4)).console_active = true;
        let reports = m.evict_all(&mut c, r2.resumed_at, h(4)).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(c.foreign_on(h(4)).next().is_none());
        assert_eq!(c.pcb(a).unwrap().current, h(1));
        assert_eq!(c.pcb(b).unwrap().current, h(2));
        assert_eq!(m.totals().evictions, 2);
    }

    #[test]
    fn all_vm_strategies_migrate_correctly() {
        for strategy in VmStrategy::ALL {
            let (mut c, mut m, t) = setup();
            m.set_vm_strategy(strategy);
            let (pid, t) = c
                .spawn(t, h(1), &SpritePath::new("/bin/sim"), 32, 8)
                .unwrap();
            let pattern = vec![0x42u8; 8 * 4096];
            let addr = VirtAddr::new(SegmentKind::Heap, 0);
            let t = {
                let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
                let t2 = sp
                    .write(&mut c.fs, &mut c.net, t, h(1), addr, &pattern)
                    .unwrap();
                c.pcb_mut(pid).unwrap().space = Some(sp);
                t2
            };
            let report = m.migrate(&mut c, t, pid, h(2)).unwrap();
            let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
            let (back, _) = sp
                .read(
                    &mut c.fs,
                    &mut c.net,
                    report.resumed_at,
                    h(2),
                    addr,
                    pattern.len() as u64,
                )
                .unwrap();
            assert_eq!(back, pattern, "strategy {strategy} lost memory contents");
            c.pcb_mut(pid).unwrap().space = Some(sp);
        }
    }

    #[test]
    fn phase_breakdown_sums_to_total_protocol_time() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 32, 8)
            .unwrap();
        let report = m.migrate(&mut c, t, pid, h(2)).unwrap();
        let delta = report.phases.total().as_secs_f64() - report.total_time.as_secs_f64();
        assert!(
            delta.abs() < 1e-6,
            "phases {} vs total {}",
            report.phases.total(),
            report.total_time
        );
        assert!(report.freeze_time <= report.total_time);
        assert!(report.freeze_time > SimDuration::ZERO);
    }

    #[test]
    fn shared_writable_memory_blocks_migration() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        c.pcb_mut(pid).unwrap().shares_writable_memory = true;
        assert!(matches!(
            m.migrate(&mut c, t, pid, h(2)),
            Err(MigrationError::NotMigratable(_, _))
        ));
        // Releasing the sharing makes it migratable again.
        c.pcb_mut(pid).unwrap().shares_writable_memory = false;
        assert!(m.migrate(&mut c, t, pid, h(2)).is_ok());
    }

    #[test]
    fn eviction_can_resettle_instead_of_going_home() {
        let (mut c, mut m, t) = setup();
        let (a, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let (b, t) = c
            .spawn(t, h(2), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r1 = m.migrate(&mut c, t, a, h(3)).unwrap();
        let r2 = m.migrate(&mut c, r1.resumed_at, b, h(3)).unwrap();
        // Owner returns to host 3; host 4 is idle, so both jobs resettle
        // there rather than crowding their owners' machines.
        c.host_mut(h(3)).console_active = true;
        let (reports, resettled) = m
            .evict_all_reselecting(&mut c, r2.resumed_at, h(3), &[h(4), h(4)])
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(resettled, 2);
        assert_eq!(c.pcb(a).unwrap().current, h(4));
        assert_eq!(c.pcb(b).unwrap().current, h(4));
        assert!(c.foreign_on(h(3)).next().is_none());
        // With no candidates, eviction falls back home.
        c.host_mut(h(4)).console_active = true;
        let (reports2, resettled2) = m
            .evict_all_reselecting(&mut c, reports[1].resumed_at, h(4), &[])
            .unwrap();
        assert_eq!(reports2.len(), 2);
        assert_eq!(resettled2, 0);
        assert_eq!(c.pcb(a).unwrap().current, h(1));
        assert_eq!(c.pcb(b).unwrap().current, h(2));
    }

    #[test]
    fn exec_migrate_respects_console_and_versions_too() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        c.host_mut(h(2)).console_active = true;
        assert!(matches!(
            m.exec_migrate(&mut c, t, pid, h(2), &SpritePath::new("/bin/sim"), 16, 4),
            Err(MigrationError::TargetRefused(_))
        ));
        m.set_kernel_version(h(3), 7);
        assert!(matches!(
            m.exec_migrate(&mut c, t, pid, h(3), &SpritePath::new("/bin/sim"), 16, 4),
            Err(MigrationError::VersionMismatch { .. })
        ));
        assert_eq!(m.totals().failures, 2);
        assert_eq!(c.pcb(pid).unwrap().current, h(1), "unharmed at the source");
    }

    #[test]
    fn migration_totals_account_every_path() {
        let (mut c, mut m, t) = setup();
        let (a, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let (b, t) = c
            .spawn(t, h(2), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r1 = m.migrate(&mut c, t, a, h(3)).unwrap();
        let r2 = m
            .exec_migrate(
                &mut c,
                r1.resumed_at,
                b,
                h(3),
                &SpritePath::new("/bin/sim"),
                16,
                4,
            )
            .unwrap();
        let reports = m.evict_all(&mut c, r2.resumed_at, h(3)).unwrap();
        assert_eq!(reports.len(), 2);
        let totals = m.totals();
        assert_eq!(totals.migrations, 4, "1 active + 1 exec + 2 evictions");
        assert_eq!(totals.exec_migrations, 1);
        assert_eq!(totals.evictions, 2);
        assert_eq!(totals.failures, 0);
        assert!(totals.total_freeze > SimDuration::ZERO);
    }

    #[test]
    fn foreign_process_can_fork_and_children_follow_home_rules() {
        let (mut c, mut m, t) = setup();
        let (pid, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let r = m.migrate(&mut c, t, pid, h(2)).unwrap();
        let (child, t) = c.fork(r.resumed_at, pid).unwrap();
        // The child runs where the parent runs, but belongs to the same home.
        assert_eq!(c.pcb(child).unwrap().current, h(2));
        assert_eq!(child.home(), h(1));
        assert!(c.pcb(child).unwrap().is_foreign());
        // Evicting the host sends both "home" to h1.
        let reports = m.evict_all(&mut c, t, h(2)).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(c.pcb(child).unwrap().current, h(1));
    }
}
