//! Checkpoint/restart "migration" — the related-work baseline.
//!
//! Several contemporaries moved work between hosts by checkpointing a
//! process to a file and restarting it elsewhere: Smith and Ioannidis's
//! remote `fork()` \[SI89\], Alonso and Kyrimis's facility \[AK88\], and
//! Condor's batch model over Remote UNIX [Lit87, LLM88]. The thesis calls
//! this "restricted" migration: "the new process would not have the same
//! process identifier or parent process, and it might not have the same
//! access to network connections or other open files" (Ch. 2.2).
//!
//! This module implements that design faithfully — image to a file through
//! the shared FS, fresh process on the target, image restored — so the
//! experiment suite can measure both its *cost* (the whole image crosses
//! the network twice, via the server) and its *transparency losses* (new
//! PID, severed family, dropped descriptors), side by side with true
//! migration.

use sprite_fs::{OpenMode, SpritePath};
use sprite_kernel::{Cluster, KernelError, ProcessId};
use sprite_net::{HostId, PAGE_SIZE};
use sprite_sim::{SimDuration, SimTime};
use sprite_vm::{SegmentKind, VirtAddr};

use crate::protocol::{MigrationError, MigrationResult};

/// What a checkpoint/restart transfer did — and what it broke.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The process that was checkpointed (now gone).
    pub old_pid: ProcessId,
    /// The replacement created on the target — a *different* process.
    pub new_pid: ProcessId,
    /// Source host.
    pub from: HostId,
    /// Target host.
    pub to: HostId,
    /// Bytes written to (and later read from) the checkpoint file.
    pub image_bytes: u64,
    /// Descriptors the original held that the replacement silently lost.
    pub descriptors_lost: usize,
    /// Whether the original had a parent that the replacement is no longer
    /// a child of.
    pub family_severed: bool,
    /// Wall time from initiation until the replacement can run with its
    /// memory restored.
    pub total_time: SimDuration,
    /// When the replacement resumed.
    pub resumed_at: SimTime,
}

/// Moves `pid`'s computation to `to` by checkpoint/restart. The original
/// process is destroyed; a new one (new PID, new home, no descriptors, no
/// parent) is created on `to` with the same heap/stack contents.
///
/// # Errors
///
/// Fails if the process does not exist or the file system rejects the
/// checkpoint I/O. There is deliberately no version negotiation or console
/// check — these facilities ran above the kernel and had no such
/// protections.
pub fn checkpoint_restart(
    cluster: &mut Cluster,
    now: SimTime,
    pid: ProcessId,
    to: HostId,
) -> MigrationResult<CheckpointReport> {
    let (from, program, parent, fd_count, heap_pages, stack_pages) = {
        let pcb = cluster
            .pcb(pid)
            .ok_or(MigrationError::Kernel(KernelError::NoSuchProcess(pid)))?;
        let space = pcb
            .space
            .as_ref()
            .ok_or(MigrationError::NotMigratable(pid, "no address space"))?;
        (
            pcb.current,
            pcb.program
                .clone()
                .ok_or(MigrationError::NotMigratable(pid, "no program"))?,
            pcb.parent,
            pcb.open_fds().count(),
            space.segment(SegmentKind::Heap).page_count(),
            space.segment(SegmentKind::Stack).page_count(),
        )
    };

    // 1. Dump the writable image into a checkpoint file (rcp-style, via the
    //    shared FS — these systems used ordinary file copies).
    let ckpt_path = SpritePath::new(format!("/tmp/ckpt.{pid}"));
    let (_, t) = cluster
        .fs
        .create(&mut cluster.net, now, from, ckpt_path.clone())
        .map_err(KernelError::Fs)?;
    let (ckpt_w, t) = cluster
        .fs
        .open(
            &mut cluster.net,
            t,
            from,
            ckpt_path.clone(),
            OpenMode::Write,
        )
        .map_err(KernelError::Fs)?;
    let mut t = t;
    let mut image_bytes = 0u64;
    let mut heap_image = Vec::new();
    {
        let mut space = cluster
            .pcb_mut(pid)
            .expect("checked above")
            .space
            .take()
            .expect("checked above");
        for (seg, pages) in [
            (SegmentKind::Heap, heap_pages),
            (SegmentKind::Stack, stack_pages),
        ] {
            let (bytes, t2) = space
                .read(
                    &mut cluster.fs,
                    &mut cluster.net,
                    t,
                    from,
                    VirtAddr::new(seg, 0),
                    pages * PAGE_SIZE,
                )
                .map_err(KernelError::Fs)?;
            t = cluster
                .fs
                .write(&mut cluster.net, t2, from, ckpt_w, &bytes)
                .map_err(KernelError::Fs)?;
            image_bytes += bytes.len() as u64;
            if seg == SegmentKind::Heap {
                heap_image = bytes;
            }
        }
        cluster.pcb_mut(pid).expect("checked").space = Some(space);
    }
    let t = cluster
        .fs
        .close(&mut cluster.net, t, from, ckpt_w)
        .map_err(KernelError::Fs)?;

    // 2. The original dies. Its descriptors close; its parent (if any)
    //    reaps a corpse that will never be the "same" process again.
    let t = cluster.exit(t, pid, 0)?;

    // 3. A brand-new process starts on the target and reads the image back.
    let (new_pid, t) = cluster.spawn(t, to, &program, heap_pages, stack_pages)?;
    let (ckpt_r, t) = cluster
        .fs
        .open(&mut cluster.net, t, to, ckpt_path.clone(), OpenMode::Read)
        .map_err(KernelError::Fs)?;
    let (_, t) = cluster
        .fs
        .read(&mut cluster.net, t, to, ckpt_r, image_bytes)
        .map_err(KernelError::Fs)?;
    let mut t = cluster
        .fs
        .close(&mut cluster.net, t, to, ckpt_r)
        .map_err(KernelError::Fs)?;
    {
        let mut space = cluster
            .pcb_mut(new_pid)
            .expect("just spawned")
            .space
            .take()
            .expect("spawned with a space");
        t = space
            .write(
                &mut cluster.fs,
                &mut cluster.net,
                t,
                to,
                VirtAddr::new(SegmentKind::Heap, 0),
                &heap_image,
            )
            .map_err(KernelError::Fs)?;
        cluster.pcb_mut(new_pid).expect("spawned").space = Some(space);
    }
    let _ = cluster
        .fs
        .unlink(&mut cluster.net, t, to, &ckpt_path)
        .map_err(KernelError::Fs)?;

    Ok(CheckpointReport {
        old_pid: pid,
        new_pid,
        from,
        to,
        image_bytes,
        descriptors_lost: fd_count,
        family_severed: parent.is_some(),
        total_time: t.elapsed_since(now),
        resumed_at: t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MigrationConfig, Migrator};
    use sprite_net::CostModel;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn setup() -> (Cluster, SimTime) {
        let mut c = Cluster::new(CostModel::sun3(), 4);
        c.add_file_server(h(0), SpritePath::new("/"));
        let t = c
            .install_program(SimTime::ZERO, SpritePath::new("/bin/sim"), 32 * 1024)
            .unwrap();
        (c, t)
    }

    #[test]
    fn checkpoint_restart_moves_memory_but_breaks_identity() {
        let (mut c, t) = setup();
        let (parent, t) = c
            .spawn(t, h(1), &SpritePath::new("/bin/sim"), 16, 4)
            .unwrap();
        let (pid, t) = c.fork(t, parent).unwrap();
        // Give it memory and an open file.
        let t = {
            let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
            let t2 = sp
                .write(
                    &mut c.fs,
                    &mut c.net,
                    t,
                    h(1),
                    VirtAddr::new(SegmentKind::Heap, 0),
                    b"survives",
                )
                .unwrap();
            c.pcb_mut(pid).unwrap().space = Some(sp);
            t2
        };
        c.fs.create(&mut c.net, t, h(1), SpritePath::new("/doomed"))
            .unwrap();
        let (_fd, t) = c
            .open_fd(t, pid, SpritePath::new("/doomed"), OpenMode::ReadWrite)
            .unwrap();

        let report = checkpoint_restart(&mut c, t, pid, h(2)).unwrap();
        // Memory content made it.
        let mut sp = c.pcb_mut(report.new_pid).unwrap().space.take().unwrap();
        let (mem, _) = sp
            .read(
                &mut c.fs,
                &mut c.net,
                report.resumed_at,
                h(2),
                VirtAddr::new(SegmentKind::Heap, 0),
                8,
            )
            .unwrap();
        c.pcb_mut(report.new_pid).unwrap().space = Some(sp);
        assert_eq!(mem, b"survives");
        // But everything the thesis calls "transparency" broke:
        assert_ne!(report.new_pid, pid, "new process identifier");
        assert_ne!(report.new_pid.home(), pid.home(), "home changed too");
        assert!(report.family_severed);
        assert_eq!(report.descriptors_lost, 1);
        // The original is dead — a zombie its parent will reap, never to
        // run again.
        assert_eq!(
            c.pcb(pid).map(|p| p.state),
            Some(sprite_kernel::ProcState::Zombie)
        );
        assert!(c.pcb(report.new_pid).unwrap().parent.is_none());
        assert_eq!(c.pcb(report.new_pid).unwrap().open_fds().count(), 0);
    }

    #[test]
    fn true_migration_is_cheaper_and_lossless_for_the_same_image() {
        let (mut c, t) = setup();
        // Two identical processes with 64 dirty pages each.
        let dirty = vec![7u8; 64 * PAGE_SIZE as usize];
        let make = |c: &mut Cluster, t: SimTime| {
            let (pid, t) = c
                .spawn(t, h(1), &SpritePath::new("/bin/sim"), 80, 8)
                .unwrap();
            let mut sp = c.pcb_mut(pid).unwrap().space.take().unwrap();
            let t = sp
                .write(
                    &mut c.fs,
                    &mut c.net,
                    t,
                    h(1),
                    VirtAddr::new(SegmentKind::Heap, 0),
                    &dirty,
                )
                .unwrap();
            c.pcb_mut(pid).unwrap().space = Some(sp);
            (pid, t)
        };
        let (a, t) = make(&mut c, t);
        let (b, t) = make(&mut c, t);
        let mut migrator = Migrator::new(MigrationConfig::default(), 4);
        let real = migrator.migrate(&mut c, t, a, h(2)).unwrap();
        let ckpt = checkpoint_restart(&mut c, real.resumed_at, b, h(3)).unwrap();
        assert!(
            ckpt.total_time > real.total_time,
            "checkpoint {} should cost more than migration {}: the whole \
             image transits the server twice and a fresh process boots",
            ckpt.total_time,
            real.total_time
        );
        // And the real migration kept the PID.
        assert_eq!(c.pcb(a).unwrap().pid, a);
    }
}
