//! The determinism lint rules.
//!
//! Each rule walks the token stream from [`crate::lexer`] and emits typed
//! diagnostics. Because matching happens on tokens, not text, the rules
//! are immune to the failure modes of the old grep lints: words inside
//! strings or comments never match, and call chains split across lines
//! match exactly like single-line ones.

use crate::lexer::{Token, TokenKind};

/// One finding: a rule, a place, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID (stable, used in `lint: allow(...)`).
    pub rule: &'static str,
    /// File the finding is in (workspace-relative, forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Std types whose default hasher randomizes iteration order.
const DEFAULT_HASHER_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState"];
/// Raw `Network` methods that bypass the typed `Transport` accounting.
const RAW_NET_METHODS: &[&str] = &["rpc", "bulk", "datagram", "multicast"];
/// Receiver bindings the raw-send rule watches. `net` is the workspace
/// convention; the striped file-service modules (shard routing, replica
/// push/invalidate) thread the same handle through helpers as `network`
/// or `wire`, and a raw send is just as unaccounted under those names.
const RAW_NET_RECEIVERS: &[&str] = &["net", "network", "wire"];
/// Typed `Transport` send methods returning `Result<_, RpcError>`.
const SEND_METHODS: &[&str] = &[
    "send",
    "send_with_service",
    "send_sized",
    "send_datagram",
    "send_multicast",
    "stream_bulk",
];
/// Wall-clock and ambient-entropy names banned from simulation crates.
const WALL_CLOCK_NAMES: &[&str] = &["Instant", "SystemTime", "thread_rng"];
/// Deterministic-map type names tracked by the iteration rule.
const DET_MAP_TYPES: &[&str] = &["DetHashMap", "DetHashSet"];
/// Methods that begin an iteration over a map.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];
/// Chain adapters/consumers whose result does not depend on iteration
/// order (sorting adapters or commutative reductions).
const ORDER_SAFE_METHODS: &[&str] = &[
    "sorted",
    "sorted_by",
    "sorted_by_key",
    "sorted_unstable",
    "sorted_unstable_by",
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "len",
];
/// Calls that put work on the event queue or the wire; iterating an
/// unordered map into one of these makes the schedule order depend on
/// hash-iteration order.
const SCHED_CALLS: &[&str] = &[
    "schedule",
    "schedule_at",
    "schedule_periodic",
    "schedule_periodic_at",
    "send",
    "send_with_service",
    "send_sized",
    "send_datagram",
    "send_multicast",
    "stream_bulk",
    // Sharded-engine vocabulary: cell timers/sends and barrier seeding.
    // The conservative-parallel merge keeps the digest stream partition-
    // invariant only if what each cell feeds it is itself deterministic,
    // so hash-order iteration into these is just as fatal as into the
    // serial queue.
    "timer_at",
    "timer_in",
    "send_latency",
    "seed_timer",
];

/// All rule IDs, in reporting order.
pub const ALL_RULES: &[&str] = &[
    "no-default-hasher",
    "no-raw-net-send",
    "no-unwrap-on-transport",
    "no-wall-clock",
    "no-unordered-iteration-into-scheduling",
    "forbid-unsafe-code",
];

/// True if `path` (forward slashes) is inside directory `dir`.
fn in_dir(path: &str, dir: &str) -> bool {
    path == dir || path.starts_with(&format!("{dir}/"))
}

/// True if `path` is a crate root (library, binary main, or a `src/bin`
/// target) — the files where `#![forbid(unsafe_code)]` must live.
fn is_crate_root(path: &str) -> bool {
    if path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || path == "src/lib.rs" {
        return true;
    }
    if let Some(pos) = path.rfind("src/bin/") {
        let rest = &path[pos + "src/bin/".len()..];
        return rest.ends_with(".rs") && !rest.contains('/');
    }
    false
}

/// Index of the `)` matching the `(` at `open`, by depth counting.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Runs every rule over one file's token stream.
pub fn check_tokens(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    no_default_hasher(path, toks, out);
    no_raw_net_send(path, toks, out);
    no_unwrap_on_transport(path, toks, out);
    no_wall_clock(path, toks, out);
    no_unordered_iteration(path, toks, out);
    forbid_unsafe_code(path, toks, out);
}

/// `no-default-hasher`: std `HashMap`/`HashSet`/`RandomState` randomize
/// iteration order per process, which breaks replay. Only `crates/sim`
/// (which wraps them behind `DetHashMap`/`DetHashSet`) and the linter
/// itself may name them.
fn no_default_hasher(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    if in_dir(path, "crates/sim") || in_dir(path, "crates/lint") {
        return;
    }
    for t in toks {
        if t.kind == TokenKind::Ident && DEFAULT_HASHER_TYPES.contains(&t.text.as_str()) {
            out.push(Diagnostic {
                rule: "no-default-hasher",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "std {} uses a randomized hasher; use sprite_sim::DetHashMap/DetHashSet",
                    t.text
                ),
            });
        }
    }
}

/// `no-raw-net-send`: raw `Network::{rpc,bulk,datagram,multicast}` calls
/// bypass the typed `Transport`, so the per-op `RpcTable` would stop
/// accounting for all wire traffic. Only `crates/net` may use them.
fn no_raw_net_send(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    if in_dir(path, "crates/net") || in_dir(path, "crates/lint") {
        return;
    }
    for i in 0..toks.len() {
        if toks[i].kind == TokenKind::Ident
            && RAW_NET_RECEIVERS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && RAW_NET_METHODS.contains(&t.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            out.push(Diagnostic {
                rule: "no-raw-net-send",
                file: path.to_string(),
                line: toks[i + 2].line,
                message: format!(
                    "raw Network::{} bypasses the typed transport; route it through sprite_net::Transport",
                    toks[i + 2].text
                ),
            });
        }
    }
}

/// `no-unwrap-on-transport`: every `Transport` send returns
/// `Result<Delivery, RpcError>`; `unwrap()`/`expect()` anywhere in the
/// chain panics the simulation on an injected fault instead of exercising
/// the recovery paths. Matching is token-based, so chains split across
/// lines (the old grep's known false negative) are caught.
fn no_unwrap_on_transport(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    if in_dir(path, "crates/lint") {
        return;
    }
    for i in 0..toks.len() {
        if !(toks[i].kind == TokenKind::Ident && SEND_METHODS.contains(&toks[i].text.as_str())) {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(mut close) = matching_paren(toks, i + 1) else {
            continue;
        };
        // Walk the trailing method chain, skipping each link's arguments.
        while toks.get(close + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(close + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(close + 3).is_some_and(|t| t.is_punct('('))
        {
            let name = &toks[close + 2];
            if name.text == "unwrap" || name.text == "expect" {
                out.push(Diagnostic {
                    rule: "no-unwrap-on-transport",
                    file: path.to_string(),
                    line: name.line,
                    message: format!(
                        "{}() on a Transport {} result panics on injected faults; match or propagate the RpcError",
                        name.text, toks[i].text
                    ),
                });
                break;
            }
            match matching_paren(toks, close + 3) {
                Some(c) => close = c,
                None => break,
            }
        }
    }
}

/// `no-wall-clock`: `Instant`/`SystemTime`/`thread_rng` read ambient
/// host state, which can never appear in simulation results. The bench
/// harness (wall timing on stderr) and the linter are exempt.
fn no_wall_clock(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    if !in_dir(path, "crates") || in_dir(path, "crates/bench") || in_dir(path, "crates/lint") {
        return;
    }
    for t in toks {
        if t.kind == TokenKind::Ident && WALL_CLOCK_NAMES.contains(&t.text.as_str()) {
            out.push(Diagnostic {
                rule: "no-wall-clock",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "{} reads ambient host state; simulation crates must use SimTime/DetRng",
                    t.text
                ),
            });
        }
    }
}

/// `no-unordered-iteration-into-scheduling`: in a file that schedules
/// events or sends messages, looping over a `DetHashMap`/`DetHashSet`
/// feeds hash-iteration order into the event queue. The map's order is
/// stable across identical runs, but not across insertions — sort first.
/// Order-insensitive reductions (`count`, `min`, `sum`, …) and chains
/// that merely collect (to be sorted afterwards) stay legal; what is
/// flagged is order-dependent *consumption*: a `for` loop over the map
/// or an iteration chain ending in `for_each` without a sorting adapter.
fn no_unordered_iteration(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    if in_dir(path, "crates/lint") {
        return;
    }
    // Only files that put work on the queue or the wire are in scope.
    let schedules = (0..toks.len()).any(|i| {
        toks[i].kind == TokenKind::Ident
            && SCHED_CALLS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    });
    if !schedules {
        return;
    }
    let names = det_map_names(toks);
    if names.is_empty() {
        return;
    }
    let flag = |name: &Token, out: &mut Vec<Diagnostic>| {
        out.push(Diagnostic {
            rule: "no-unordered-iteration-into-scheduling",
            file: path.to_string(),
            line: name.line,
            message: format!(
                "looping over `{}` (a DetHashMap/DetHashSet) in a scheduling file feeds hash order into the event queue; sort the keys first",
                name.text
            ),
        });
    };
    // `for … in [&][mut] [self.]name …` loop headers.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        // Find the `in` of this loop header (bounded scan).
        let Some(in_idx) = (i + 1..toks.len().min(i + 24)).find(|&j| toks[j].is_ident("in")) else {
            continue;
        };
        let mut j = in_idx + 1;
        while toks
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_ident("self"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        {
            j += 2;
        }
        if !toks
            .get(j)
            .is_some_and(|t| t.kind == TokenKind::Ident && names.contains(&t.text))
        {
            continue;
        }
        // Bare map (`for p in &ready {`)…
        if toks.get(j + 1).is_some_and(|t| t.is_punct('{')) {
            flag(&toks[j], out);
            continue;
        }
        // …or a method chain off it (`for pid in waiters.keys() {`): safe
        // only if some link launders the order before the body runs.
        if chain_is_order_dependent(toks, j, false) {
            flag(&toks[j], out);
        }
    }
    // Expression chains ending in `for_each` (`map.iter().for_each(…)`).
    for i in 0..toks.len() {
        if toks[i].kind == TokenKind::Ident
            && names.contains(&toks[i].text)
            && chain_is_order_dependent(toks, i, true)
        {
            flag(&toks[i], out);
        }
    }
}

/// Walks the method chain starting at `toks[start]` (the map name). With
/// `require_for_each`, the chain is order-dependent only if it reaches a
/// `for_each` link; otherwise any iteration chain counts. Either way, an
/// [`ORDER_SAFE_METHODS`] link neutralizes the chain.
fn chain_is_order_dependent(toks: &[Token], start: usize, require_for_each: bool) -> bool {
    // The chain must begin `name.ITER_METHOD(`.
    if !(toks.get(start + 1).is_some_and(|t| t.is_punct('.'))
        && toks
            .get(start + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
        && toks.get(start + 3).is_some_and(|t| t.is_punct('(')))
    {
        return false;
    }
    let Some(mut close) = matching_paren(toks, start + 3) else {
        return false;
    };
    while toks.get(close + 1).is_some_and(|t| t.is_punct('.'))
        && toks
            .get(close + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident)
        && toks.get(close + 3).is_some_and(|t| t.is_punct('('))
    {
        let link = toks[close + 2].text.as_str();
        if ORDER_SAFE_METHODS.contains(&link) {
            return false;
        }
        if link == "for_each" {
            return true;
        }
        match matching_paren(toks, close + 3) {
            Some(c) => close = c,
            None => return false,
        }
    }
    !require_for_each
}

/// Names declared with a `DetHashMap`/`DetHashSet` type annotation or
/// initialized from one of their constructors.
fn det_map_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        // `name: [path::]DetHashMap<…>` (field or typed binding).
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && path_ends_in_det_type(toks, i + 2)
        {
            names.push(toks[i].text.clone());
        }
        // `name = [path::]DetHashMap::…` (constructor binding).
        if toks.get(i + 1).is_some_and(|t| t.is_punct('=')) && path_ends_in_det_type(toks, i + 2) {
            names.push(toks[i].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True if the tokens at `start` form a path whose final segment is a
/// deterministic-map type (`DetHashMap`, `sprite_sim::DetHashSet`, …).
fn path_ends_in_det_type(toks: &[Token], start: usize) -> bool {
    let mut j = start;
    loop {
        let Some(t) = toks.get(j) else {
            return false;
        };
        if t.kind != TokenKind::Ident {
            return false;
        }
        if DET_MAP_TYPES.contains(&t.text.as_str()) {
            return true;
        }
        // Continue only through `segment::`.
        if toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            j += 3;
        } else {
            return false;
        }
    }
}

/// `forbid-unsafe-code`: every crate root must carry
/// `#![forbid(unsafe_code)]` so the determinism argument never has to
/// reason about raw-pointer aliasing.
fn forbid_unsafe_code(path: &str, toks: &[Token], out: &mut Vec<Diagnostic>) {
    if !is_crate_root(path) {
        return;
    }
    let has = (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 7).is_some_and(|t| t.is_punct(']'))
    });
    if !has {
        out.push(Diagnostic {
            rule: "forbid-unsafe-code",
            file: path.to_string(),
            line: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        });
    }
}
