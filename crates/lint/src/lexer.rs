//! A token-level Rust lexer, sufficient for lint rules.
//!
//! The old CI lints were `grep -rE` patterns, which cannot tell an
//! identifier in code from the same word inside a string literal, a
//! comment, or a doc example — and cannot see a call chain split across
//! lines at all. This lexer produces a flat token stream with line
//! numbers, handling the token forms that defeat regexes:
//!
//! - raw strings `r"…"` / `r#"…"#` (any number of hashes), byte strings;
//! - nested block comments `/* /* */ */`;
//! - lifetimes `'a` vs char literals `'a'` (including escapes `'\''`);
//! - raw identifiers `r#type`.
//!
//! Comments are not emitted as tokens; instead, `// lint: allow(rule-id)`
//! directives found inside them are collected separately so the rule
//! engine can suppress diagnostics (on the directive's line and the line
//! immediately after it).

/// What a token is. Only the distinctions the rules need are kept: every
/// keyword is an [`TokenKind::Ident`], and punctuation is one char each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, hash stripped).
    Ident,
    /// Lifetime such as `'a` or `'static` (without the quote).
    Lifetime,
    /// Character literal, quotes and escapes included verbatim.
    CharLit,
    /// String literal of any form (plain, raw, byte), delimiters included.
    StrLit,
    /// Numeric literal.
    NumLit,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Verbatim source text (raw identifiers keep their `r#` prefix off).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `lint: allow(rule, …)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rule IDs listed in the directive.
    pub rules: Vec<String>,
    /// First line of the comment containing the directive.
    pub start_line: usize,
    /// Last line of the comment (same as `start_line` for line comments).
    pub end_line: usize,
}

/// Lexer output: the token stream plus any suppression directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order. Comments and whitespace are dropped.
    pub tokens: Vec<Token>,
    /// Suppression directives harvested from comments.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src` into tokens and allow-directives. The lexer is resilient:
/// malformed input never panics, it just degrades into `Punct` tokens.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_char = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            harvest_allow(&text, line, line, &mut out.allows);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = chars[start..i.min(n)].iter().collect();
            harvest_allow(&text, start_line, line, &mut out.allows);
            continue;
        }
        // Raw strings, byte strings, raw identifiers — all start with an
        // ident-looking prefix, so disambiguate before the ident path.
        if c == 'r' || c == 'b' {
            if let Some((tok, next_i, lines)) = lex_prefixed_literal(&chars, i, line) {
                out.tokens.push(tok);
                i = next_i;
                line += lines;
                continue;
            }
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_char(chars[i])) {
                i += 1;
            }
            // Fractional part: only consume `.` when a digit follows, so
            // `1.0` is one token but `1..n` and `1.method()` are not.
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_char(chars[i]) {
                    i += 1;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::NumLit,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let (text, next_i, lines) = lex_quoted(&chars, i);
            out.tokens.push(Token {
                kind: TokenKind::StrLit,
                text,
                line,
            });
            i = next_i;
            line += lines;
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let (tok, next_i) = lex_quote(&chars, i, line);
            out.tokens.push(tok);
            i = next_i;
            continue;
        }
        // Everything else: one punctuation char.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or a raw identifier `r#name`
/// starting at `i`. Returns `None` if the prefix turns out to be a plain
/// identifier (e.g. `radius`), letting the main loop handle it.
fn lex_prefixed_literal(chars: &[char], i: usize, line: usize) -> Option<(Token, usize, usize)> {
    let n = chars.len();
    let mut j = i + 1;
    // `br` prefix.
    if chars[i] == 'b' && j < n && chars[j] == 'r' {
        j += 1;
    }
    // Plain byte string `b"…"`.
    if chars[i] == 'b' && j == i + 1 && j < n && chars[j] == '"' {
        let (text, next_i, lines) = lex_quoted(chars, j);
        let full = format!("b{text}");
        return Some((
            Token {
                kind: TokenKind::StrLit,
                text: full,
                line,
            },
            next_i,
            lines,
        ));
    }
    // Count hashes after the `r`.
    let mut hashes = 0;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < n && chars[j] == '"' {
        // Raw string: scan for `"` followed by `hashes` hashes.
        let start = i;
        let mut lines = 0;
        j += 1;
        while j < n {
            if chars[j] == '\n' {
                lines += 1;
                j += 1;
                continue;
            }
            if chars[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0;
                while k < n && seen < hashes && chars[k] == '#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    let text: String = chars[start..k].iter().collect();
                    return Some((
                        Token {
                            kind: TokenKind::StrLit,
                            text,
                            line,
                        },
                        k,
                        lines,
                    ));
                }
            }
            j += 1;
        }
        // Unterminated raw string: swallow the rest.
        let text: String = chars[start..n].iter().collect();
        return Some((
            Token {
                kind: TokenKind::StrLit,
                text,
                line,
            },
            n,
            lines,
        ));
    }
    // Raw identifier `r#name` (exactly one hash, ident follows).
    if chars[i] == 'r' && hashes == 1 && j < n && (chars[j].is_alphabetic() || chars[j] == '_') {
        let start = j;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return Some((
            Token {
                kind: TokenKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            },
            j,
            0,
        ));
    }
    None
}

/// Lexes a `"…"` string starting at the opening quote; returns (verbatim
/// text, index past the closing quote, newlines crossed).
fn lex_quoted(chars: &[char], i: usize) -> (String, usize, usize) {
    let n = chars.len();
    let start = i;
    let mut j = i + 1;
    let mut lines = 0;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                lines += 1;
                j += 1;
            }
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (chars[start..j.min(n)].iter().collect(), j.min(n), lines)
}

/// Lexes a `'`-prefixed token: a lifetime (`'a`, `'static`) or a char
/// literal (`'a'`, `'\n'`, `'\''`).
fn lex_quote(chars: &[char], i: usize, line: usize) -> (Token, usize) {
    let n = chars.len();
    let is_ident_char = |c: char| c.is_alphanumeric() || c == '_';
    // Escaped char literal: `'\…'`.
    if i + 1 < n && chars[i + 1] == '\\' {
        let mut j = i + 2;
        if j < n {
            j += 1; // the escaped char itself
        }
        // `\u{…}` and multi-char escapes: scan to the closing quote.
        while j < n && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        let end = (j + 1).min(n);
        return (
            Token {
                kind: TokenKind::CharLit,
                text: chars[i..end].iter().collect(),
                line,
            },
            end,
        );
    }
    // `'a'` (char) vs `'a` / `'abc` (lifetime): a closing quote right
    // after a single ident char means char literal.
    if i + 1 < n && is_ident_char(chars[i + 1]) {
        if i + 2 < n && chars[i + 2] == '\'' {
            return (
                Token {
                    kind: TokenKind::CharLit,
                    text: chars[i..i + 3].iter().collect(),
                    line,
                },
                i + 3,
            );
        }
        let mut j = i + 1;
        while j < n && is_ident_char(chars[j]) {
            j += 1;
        }
        return (
            Token {
                kind: TokenKind::Lifetime,
                text: chars[i + 1..j].iter().collect(),
                line,
            },
            j,
        );
    }
    // Degenerate: a bare quote (e.g. inside macro garbage).
    (
        Token {
            kind: TokenKind::Punct,
            text: "'".to_string(),
            line,
        },
        i + 1,
    )
}

/// Scans comment text for `lint: allow(rule, …)` and records a directive.
fn harvest_allow(comment: &str, start_line: usize, end_line: usize, out: &mut Vec<AllowDirective>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let after = &rest[pos + "lint: allow(".len()..];
        if let Some(close) = after.find(')') {
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if !rules.is_empty() {
                out.push(AllowDirective {
                    rules,
                    start_line,
                    end_line,
                });
            }
            rest = &after[close..];
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn words_inside_strings_are_not_identifiers() {
        let src = r##"let x = "HashMap inside a string"; let y = HashSet;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let src = r####"let s = r#"quote " and HashMap"#; stop"####;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap"));
        assert!(idents(src).contains(&"stop".to_string()));
        assert!(!idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let src = "before /* outer /* inner HashMap */ still comment */ after";
        let ids = idents(src);
        assert_eq!(ids, vec!["before", "after"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(chars, vec!["'a'"]);
    }

    #[test]
    fn escaped_char_literals_do_not_derail_the_lexer() {
        let src = r"let q = '\''; let nl = '\n'; let u = '\u{1F600}'; done";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        assert_eq!(chars, 3);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#type = 1; let radius = 2;");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"radius".to_string()));
    }

    #[test]
    fn byte_strings_are_string_literals() {
        let lexed = lex(r###"let b = b"bytes"; let br = br#"raw bytes"#;"###);
        let strs = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\nb";
        let lexed = lex(src);
        let a = lexed.tokens.iter().find(|t| t.is_ident("a")).unwrap();
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
    }

    #[test]
    fn allow_directives_are_harvested_with_line_spans() {
        let src = "// lint: allow(no-wall-clock)\nlet x = 1;\n/* lint: allow(a, b)\n */\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rules, vec!["no-wall-clock"]);
        assert_eq!(
            (lexed.allows[0].start_line, lexed.allows[0].end_line),
            (1, 1)
        );
        assert_eq!(lexed.allows[1].rules, vec!["a", "b"]);
        assert_eq!(
            (lexed.allows[1].start_line, lexed.allows[1].end_line),
            (3, 4)
        );
    }

    #[test]
    fn numbers_do_not_swallow_method_calls_or_ranges() {
        let src = "let a = 1.0; for i in 0..n { x.f(1.5e3); }";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("n")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("f")));
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::NumLit)
            .map(|t| t.text.clone())
            .collect();
        assert!(nums.contains(&"1.0".to_string()));
        assert!(nums.contains(&"1.5e3".to_string()));
    }
}
