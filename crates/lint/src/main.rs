//! CLI for `sprite_lint`.
//!
//! ```text
//! cargo run -q -p sprite_lint -- crates src tests examples
//! cargo run -q -p sprite_lint -- --json crates
//! cargo run -q -p sprite_lint -- --bench-json BENCH_experiments.json crates src
//! ```
//!
//! Exit status: 0 when no (non-suppressed) diagnostics, 1 otherwise,
//! 2 on usage errors. Diagnostics print one per line as
//! `file:line: [rule-id] message`; a summary goes to stderr.
//! `--bench-json PATH` splices a `"lint"` section (per-rule counts) into
//! an existing `BENCH_experiments.json` for the benchmark trajectory.

#![forbid(unsafe_code)]

use std::path::Path;

use sprite_lint::{check_paths, Outcome, ALL_RULES};

fn main() {
    let mut json = false;
    let mut bench_json: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--bench-json" => match args.next() {
                Some(p) => bench_json = Some(p),
                None => {
                    eprintln!("--bench-json needs a path");
                    std::process::exit(2);
                }
            },
            _ if arg.starts_with('-') => {
                eprintln!("unknown flag {arg:?}; usage: sprite_lint [--json] [--bench-json PATH] PATHS...");
                std::process::exit(2);
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: sprite_lint [--json] [--bench-json PATH] PATHS...");
        std::process::exit(2);
    }

    let outcome = match check_paths(Path::new("."), &paths) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sprite_lint: {e}");
            std::process::exit(2);
        }
    };

    if json {
        print!("{}", render_json(&outcome));
    } else {
        for d in &outcome.diagnostics {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
    }
    eprintln!(
        "sprite_lint: {} files, {} diagnostics, {} suppressed",
        outcome.files,
        outcome.diagnostics.len(),
        outcome.suppressed.len()
    );

    if let Some(path) = bench_json {
        if let Err(e) = splice_bench_json(&path, &outcome) {
            eprintln!("sprite_lint: failed to update {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("sprite_lint: updated {path}");
    }

    if !outcome.diagnostics.is_empty() {
        std::process::exit(1);
    }
}

/// Minimal JSON escape for paths/messages.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(outcome: &Outcome) -> String {
    let mut s = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            escape(&d.file),
            d.line,
            d.rule,
            escape(&d.message),
            if i + 1 == outcome.diagnostics.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"files\": {},\n", outcome.files));
    s.push_str(&format!("  \"suppressed\": {}\n", outcome.suppressed.len()));
    s.push_str("}\n");
    s
}

/// The `"lint"` section spliced into `BENCH_experiments.json`.
fn lint_section(outcome: &Outcome) -> String {
    let mut s = String::from("  \"lint\": {\n");
    s.push_str(&format!("    \"files\": {},\n", outcome.files));
    s.push_str(&format!(
        "    \"diagnostics\": {},\n",
        outcome.diagnostics.len()
    ));
    s.push_str(&format!(
        "    \"suppressed\": {},\n",
        outcome.suppressed.len()
    ));
    s.push_str("    \"rules\": [\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"id\": \"{}\", \"diagnostics\": {}, \"suppressed\": {}}}{}\n",
            rule,
            outcome.count(rule),
            outcome.suppressed_count(rule),
            if i + 1 == ALL_RULES.len() { "" } else { "," }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// Inserts (or replaces) the `"lint"` section before the final `}` of an
/// existing JSON report written by `experiments --json`.
fn splice_bench_json(path: &str, outcome: &Outcome) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    // Drop a previous lint section so the splice is idempotent.
    let text = match text.find(",\n  \"lint\": {") {
        Some(start) => {
            // The section ends at the next "\n  }" after `start`.
            let tail = &text[start..];
            match tail.find("\n  }") {
                Some(end) => format!("{}{}", &text[..start], &tail[end + "\n  }".len()..]),
                None => text,
            }
        }
        None => text,
    };
    let Some(close) = text.rfind("\n}") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a JSON object written by experiments --json",
        ));
    };
    let spliced = format!(
        "{},\n{}{}",
        &text[..close],
        lint_section(outcome),
        &text[close..]
    );
    std::fs::write(path, spliced)
}
