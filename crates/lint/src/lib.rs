//! `sprite_lint` — offline static analysis for the workspace's
//! determinism invariants.
//!
//! The reproduction's results are only checkable because serial and
//! `--jobs N` runs replay byte-identically; that property rests on source
//! invariants (deterministic hashers, typed transport, no wall clock)
//! that used to be guarded by three `grep -rE` lints in `scripts/ci.sh`.
//! This crate replaces them with a real analyzer: a token-level Rust
//! lexer ([`lexer`]) and a rule engine ([`rules`]) producing typed
//! diagnostics with `file:line` spans, stable rule IDs, and
//! `// lint: allow(rule-id)` suppressions.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -q -p sprite_lint -- crates src tests examples
//! ```
//!
//! A diagnostic is suppressed by a `lint: allow(rule-id)` comment on the
//! same line, the line above, or anywhere inside a block comment whose
//! span covers the line above. Rule IDs are listed in
//! [`rules::ALL_RULES`]; see `DESIGN.md` for the rule table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{Diagnostic, ALL_RULES};

/// Result of checking one file (or a whole tree): surviving diagnostics
/// plus the ones an allow-directive suppressed.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Diagnostics that survived suppression, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics muted by a `lint: allow(...)` directive.
    pub suppressed: Vec<Diagnostic>,
    /// Files checked.
    pub files: usize,
}

impl Outcome {
    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: Outcome) {
        self.diagnostics.extend(other.diagnostics);
        self.suppressed.extend(other.suppressed);
        self.files += other.files;
    }

    /// Sorts diagnostics for stable reporting.
    pub fn sort(&mut self) {
        let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
        self.diagnostics.sort_by_key(key);
        self.suppressed.sort_by_key(key);
    }

    /// Count of surviving diagnostics for `rule`.
    pub fn count(&self, rule: &str) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// Count of suppressed diagnostics for `rule`.
    pub fn suppressed_count(&self, rule: &str) -> usize {
        self.suppressed.iter().filter(|d| d.rule == rule).count()
    }
}

/// Checks one file's source text. `path` should be workspace-relative
/// with forward slashes — the rules scope themselves by it.
pub fn check_source(path: &str, src: &str) -> Outcome {
    let lexed = lexer::lex(src);
    let mut raw = Vec::new();
    rules::check_tokens(path, &lexed.tokens, &mut raw);
    let mut out = Outcome {
        files: 1,
        ..Outcome::default()
    };
    for d in raw {
        let allowed = lexed.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == d.rule || r == "all")
                && d.line >= a.start_line
                && d.line <= a.end_line + 1
        });
        if allowed {
            out.suppressed.push(d);
        } else {
            out.diagnostics.push(d);
        }
    }
    out
}

/// Recursively collects `.rs` files under `base`, skipping `target`,
/// `fixtures`, and VCS directories. Sorted for deterministic output.
pub fn collect_rs_files(base: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(base, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Checks every `.rs` file reachable from `paths` (files or directories),
/// resolved relative to `root`. Paths are reported relative to `root`.
pub fn check_paths(root: &Path, paths: &[String]) -> std::io::Result<Outcome> {
    let mut outcome = Outcome::default();
    for p in paths {
        let full = root.join(p);
        let files = if full.is_dir() {
            collect_rs_files(&full)
        } else {
            vec![full.clone()]
        };
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&file)?;
            outcome.absorb(check_source(&rel, &src));
        }
    }
    outcome.sort();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_same_line_and_next_line() {
        let src = "\
// lint: allow(no-wall-clock)
use std::time::Instant;
use std::time::SystemTime;
";
        let out = check_source("crates/kernel/src/x.rs", src);
        assert_eq!(out.suppressed.len(), 1, "line after the comment is muted");
        assert_eq!(out.diagnostics.len(), 1, "two lines after is not");
        assert_eq!(out.diagnostics[0].line, 3);
    }

    #[test]
    fn trailing_allow_on_the_same_line_works() {
        let src = "use std::time::Instant; // lint: allow(no-wall-clock)\n";
        let out = check_source("crates/kernel/src/x.rs", src);
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn allow_is_rule_specific() {
        let src = "// lint: allow(no-default-hasher)\nuse std::time::Instant;\n";
        let out = check_source("crates/kernel/src/x.rs", src);
        assert_eq!(out.diagnostics.len(), 1, "a different rule stays live");
    }

    #[test]
    fn outcome_counts_by_rule() {
        let src = "use std::time::Instant;\n";
        let mut out = check_source("crates/kernel/src/x.rs", src);
        out.sort();
        assert_eq!(out.count("no-wall-clock"), 1);
        assert_eq!(out.count("no-default-hasher"), 0);
        assert_eq!(out.suppressed_count("no-wall-clock"), 0);
    }
}
