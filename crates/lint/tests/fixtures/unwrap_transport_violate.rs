// Fixture: the regression case the old `grep -rEz` missed — a Transport
// send chain split across lines, with the unwrap on its own line.
pub fn notify(net: &mut Transport, now: SimTime, a: HostId, b: HostId) {
    let delivery = net
        .send(
            RpcOp::SignalForward,
            now,
            a,
            b,
            None,
        )
        .unwrap();
    let _ = delivery;
    // Single-line form, and an expect() after an interposed link.
    net.send_sized(RpcOp::Payload, now, a, b, 4096, None).unwrap();
    net.stream_bulk(now, a, b, 1 << 20).ok().expect("bulk");
}
