// Fixture: std hash types outside crates/sim (checked as a kernel path).
use std::collections::HashMap;
use std::collections::hash_map::RandomState;

pub struct Table {
    by_pid: HashMap<u32, u64>,
}

pub fn build() -> std::collections::HashSet<u32> {
    Default::default()
}
