//! Fixture: a crate root without `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

pub fn noop() {}
