// Fixture: the same shard/replica traffic routed through the typed
// Transport under the striped-service receiver names. Typed sends and
// reads of the handle (rpc_table) must not match the raw-send rule.
pub fn push_replicas(
    network: &mut Transport,
    now: SimTime,
    home: HostId,
    peers: &[HostId],
) -> Result<(), RpcError> {
    for &peer in peers {
        network.send(RpcOp::FsReplicaRead, now, peer, home, None)?;
    }
    Ok(())
}

pub fn invalidate(
    wire: &mut Transport,
    now: SimTime,
    home: HostId,
    peer: HostId,
) -> Result<(), RpcError> {
    wire.send(RpcOp::FsReplicaInvalidate, now, home, peer, None)?;
    let table = wire.rpc_table();
    let _ = table;
    Ok(())
}
