// Fixture: raw Network sends outside crates/net.
pub fn broadcast(net: &mut Network, msg: Msg) {
    net.rpc(msg.src, msg.dst, 48);
    net.bulk(msg.src, msg.dst, 4096);
    net.datagram(msg.src, msg.dst, 64);
    net.multicast(msg.src, &[msg.dst], 48);
}
