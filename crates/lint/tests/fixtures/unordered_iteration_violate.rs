// Fixture: hash-iteration order feeding the event queue. The file both
// schedules work and loops over DetHashMap/DetHashSet state unsorted.
pub struct Sched {
    waiters: DetHashMap<u32, u64>,
    ready: sprite_sim::DetHashSet<u32>,
}

impl Sched {
    pub fn kick(&mut self, engine: &mut Engine<World>) {
        for (pid, deadline) in self.waiters.iter() {
            engine.schedule(SimDuration::from_micros(*deadline), wake(*pid));
        }
        for p in &self.ready {
            engine.schedule(SimDuration::ZERO, wake(*p));
        }
        let mut picked = DetHashSet::default();
        picked.insert(1u32);
        picked
            .iter()
            .for_each(|p| engine.schedule(SimDuration::ZERO, wake(*p)));
    }
}
