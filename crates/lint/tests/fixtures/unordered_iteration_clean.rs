// Fixture: same shape, but iteration order is laundered before it can
// reach the queue: keys are sorted first, or the reduction is
// order-insensitive (count/min/max/sum).
pub struct Sched {
    waiters: DetHashMap<u32, u64>,
}

impl Sched {
    pub fn kick(&mut self, engine: &mut Engine<World>) {
        let mut pids: Vec<u32> = self.waiters.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            engine.schedule(SimDuration::ZERO, wake(pid));
        }
        let live = self.waiters.iter().count();
        let soonest = self.waiters.values().min();
        let _ = (live, soonest);
    }
}
