// Fixture: hash-iteration order feeding the sharded engine. The file is in
// scope only through the shard vocabulary (timer_at / send_latency /
// seed_timer) — no serial `schedule`/`send` calls — and loops over
// DetHashMap/DetHashSet state unsorted while arming cell timers, sending
// cross-cell messages and seeding the barrier calendar.
pub struct MergeState {
    wakeups: DetHashMap<u32, u64>,
    peers: sprite_sim::DetHashSet<u32>,
}

impl MergeState {
    pub fn rearm(&mut self, ctx: &mut CellCtx<'_, HostMsg>) {
        for (token, at) in self.wakeups.iter() {
            ctx.timer_at(SimTime::from_micros(*at), *token);
        }
        for peer in &self.peers {
            ctx.send_latency(*peer, ctx.lookahead(), HostMsg::Probe);
        }
    }

    pub fn seed(&mut self, eng: &mut ShardedEngine<HostCell>) {
        self.wakeups
            .iter()
            .for_each(|(token, at)| eng.seed_timer(0, SimTime::from_micros(*at), *token));
    }
}
