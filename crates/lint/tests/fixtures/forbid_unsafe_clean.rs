//! Fixture: a crate root carrying the attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn noop() {}
