// Fixture: simulated time and seeded randomness only. The banned names
// may appear in comments (Instant, SystemTime, thread_rng) and strings.
use sprite_sim::{DetRng, SimTime};

pub fn measure(now: SimTime, rng: &mut DetRng) -> u64 {
    let _ = rng.next_u64();
    let _doc = "wall-clock types like Instant are banned here";
    now.as_micros()
}
