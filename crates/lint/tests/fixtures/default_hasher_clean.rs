// Fixture: deterministic maps only; the banned names appear solely in
// strings and comments, which a token-level lint must not flag:
// std::collections::HashMap is fine to *mention* here.
use sprite_sim::{DetHashMap, DetHashSet};

pub struct Table {
    by_pid: DetHashMap<u32, u64>,
}

pub fn describe() -> &'static str {
    "this string says HashMap and HashSet and RandomState"
}
