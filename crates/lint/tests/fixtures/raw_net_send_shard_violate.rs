// Fixture: striped file-service helpers pushing replica copies and
// invalidations over the raw Network handle — under the receiver names
// the shard/replica modules use — instead of the typed Transport.
pub fn push_replicas(network: &mut Network, home: HostId, peers: &[HostId]) {
    for &peer in peers {
        network.rpc(home, peer, 4096);
    }
    network.multicast(home, peers, 64);
}

pub fn invalidate(wire: &mut Network, home: HostId, peer: HostId) {
    wire.datagram(home, peer, 64);
}
