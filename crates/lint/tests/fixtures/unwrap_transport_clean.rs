// Fixture: send results matched or propagated; unwrap on non-transport
// results stays legal, as does the word ".send(x).unwrap()" in a string.
pub fn notify(net: &mut Transport, now: SimTime, a: HostId, b: HostId) -> Result<(), RpcError> {
    match net.send(RpcOp::SignalForward, now, a, b, None) {
        Ok(delivery) => drop(delivery),
        Err(e) => return Err(e),
    }
    net.send_sized(RpcOp::Payload, now, a, b, 4096, None)?;
    let parsed: u32 = "7".parse().unwrap();
    let _ = parsed;
    let _doc = "never write .send(x).unwrap() on a transport";
    Ok(())
}
