// Fixture: the same shard/barrier merge shapes, but with iteration order
// laundered before it can reach the engine: keys sorted into a Vec first,
// or reductions that are order-insensitive. This is the pattern the
// sharded engine's merge code itself must follow.
pub struct MergeState {
    wakeups: DetHashMap<u32, u64>,
    peers: sprite_sim::DetHashSet<u32>,
}

impl MergeState {
    pub fn rearm(&mut self, ctx: &mut CellCtx<'_, HostMsg>) {
        let mut pending: Vec<(u32, u64)> = self.wakeups.iter().map(|(t, a)| (*t, *a)).collect();
        pending.sort_unstable();
        for (token, at) in pending {
            ctx.timer_at(SimTime::from_micros(at), token);
        }
        let fanout = self.peers.iter().count();
        let soonest = self.wakeups.values().min();
        let _ = (fanout, soonest);
    }

    pub fn seed(&mut self, eng: &mut ShardedEngine<HostCell>) {
        let mut tokens: Vec<u32> = self.wakeups.keys().copied().collect();
        tokens.sort_unstable();
        for token in tokens {
            eng.seed_timer(0, SimTime::ZERO, u64::from(token));
        }
    }
}
