// Fixture: wire traffic goes through the typed Transport facade. Methods
// that merely *read* the network (net.rpc_table()) must not match, and
// neither must "net.rpc(" inside a string.
pub fn report(net: &mut Transport, now: SimTime, a: HostId, b: HostId) -> Result<(), RpcError> {
    net.send(RpcOp::LoadReport, now, a, b, None)?;
    let table = net.rpc_table();
    let _ = table;
    let _doc = "calling net.rpc( directly is banned";
    Ok(())
}
