// Fixture: ambient host state inside a simulation crate.
use std::time::Instant;

pub fn measure() -> u128 {
    let started = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    let mut rng = thread_rng();
    let _ = &mut rng;
    started.elapsed().as_micros()
}
