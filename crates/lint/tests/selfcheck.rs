//! Workspace self-check: the whole repository must be lint-clean.
//!
//! This is the same scan CI runs (`sprite_lint crates src tests
//! examples`), executed as a test so `cargo test` alone already enforces
//! the determinism invariants.

use std::path::Path;

use sprite_lint::{check_paths, ALL_RULES};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let paths = ["crates", "src", "tests", "examples"]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
    let outcome = check_paths(root, &paths).expect("scan workspace");
    assert!(
        outcome.files > 50,
        "the scan must actually see the workspace, got {} files",
        outcome.files
    );
    let rendered: Vec<String> = outcome
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint diagnostics:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn every_rule_id_is_stable() {
    // The IDs are part of the suppression syntax and the CI contract;
    // renaming one silently un-suppresses existing allows.
    assert_eq!(
        ALL_RULES,
        &[
            "no-default-hasher",
            "no-raw-net-send",
            "no-unwrap-on-transport",
            "no-wall-clock",
            "no-unordered-iteration-into-scheduling",
            "forbid-unsafe-code",
        ]
    );
}
