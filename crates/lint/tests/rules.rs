//! Per-rule fixture tests: each rule has one file it must flag and one it
//! must leave alone. Fixtures live under `tests/fixtures/` — a directory
//! the workspace scanner skips, so they never pollute the self-check.
//!
//! The synthetic paths passed to `check_source` place each fixture in the
//! directory its rule scopes to (e.g. a kernel path for the hasher rule).

use std::path::Path;

use sprite_lint::check_source;

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

/// Lines (sorted) on which `rule` fired when `name` is checked at `path`.
fn flagged_lines(name: &str, path: &str, rule: &str) -> Vec<usize> {
    let out = check_source(path, &fixture(name));
    let mut lines: Vec<usize> = out
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    lines.sort_unstable();
    lines
}

/// Every diagnostic (any rule) for `name` at `path`.
fn all_diags(name: &str, path: &str) -> Vec<(String, usize)> {
    check_source(path, &fixture(name))
        .diagnostics
        .iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

#[test]
fn default_hasher_fixture_flags_and_clean_passes() {
    let lines = flagged_lines(
        "default_hasher_violate.rs",
        "crates/kernel/src/fixture.rs",
        "no-default-hasher",
    );
    // HashMap import, RandomState import, HashMap field, HashSet return.
    assert_eq!(lines, vec![2, 3, 6, 9]);
    assert!(all_diags("default_hasher_clean.rs", "crates/kernel/src/fixture.rs").is_empty());
}

#[test]
fn default_hasher_is_allowed_inside_sim() {
    // The same violating file is legal where the wrappers live.
    assert!(all_diags("default_hasher_violate.rs", "crates/sim/src/fixture.rs").is_empty());
}

#[test]
fn raw_net_send_fixture_flags_and_clean_passes() {
    let lines = flagged_lines(
        "raw_net_send_violate.rs",
        "crates/kernel/src/fixture.rs",
        "no-raw-net-send",
    );
    assert_eq!(lines, vec![3, 4, 5, 6], "rpc, bulk, datagram, multicast");
    assert!(all_diags("raw_net_send_clean.rs", "crates/kernel/src/fixture.rs").is_empty());
    assert!(
        all_diags("raw_net_send_violate.rs", "crates/net/src/fixture.rs").is_empty(),
        "raw sends are the transport's own business inside crates/net"
    );
}

#[test]
fn raw_net_send_covers_striped_fs_modules() {
    // The shard router and replica manager thread the wire handle through
    // helpers as `network`/`wire`; raw sends under those names must fire
    // in both modules.
    for path in ["crates/fs/src/shard.rs", "crates/fs/src/replica.rs"] {
        let lines = flagged_lines("raw_net_send_shard_violate.rs", path, "no-raw-net-send");
        assert_eq!(lines, vec![6, 8, 12], "{path}: rpc, multicast, datagram");
    }
    assert!(
        all_diags("raw_net_send_shard_clean.rs", "crates/fs/src/shard.rs").is_empty(),
        "typed sends under shard/replica receiver names are legal"
    );
    assert!(all_diags("raw_net_send_shard_clean.rs", "crates/fs/src/replica.rs").is_empty());
    assert!(
        all_diags("raw_net_send_shard_violate.rs", "crates/net/src/wire.rs").is_empty(),
        "raw sends stay the transport's own business inside crates/net"
    );
}

#[test]
fn multiline_unwrap_regression_is_caught() {
    // The old `grep -rEz` lint missed send chains split across lines;
    // this is the regression fixture proving the token-level rule sees
    // them. Line 12 is the lone `.unwrap()` after the multiline send.
    let lines = flagged_lines(
        "unwrap_transport_violate.rs",
        "crates/kernel/src/fixture.rs",
        "no-unwrap-on-transport",
    );
    assert_eq!(lines.len(), 3, "multiline, single-line, and chained expect");
    assert_eq!(
        lines[0], 12,
        "the unwrap on its own line is attributed there"
    );
    assert!(all_diags("unwrap_transport_clean.rs", "crates/kernel/src/fixture.rs").is_empty());
}

#[test]
fn wall_clock_fixture_flags_and_clean_passes() {
    let lines = flagged_lines(
        "wall_clock_violate.rs",
        "crates/kernel/src/fixture.rs",
        "no-wall-clock",
    );
    // Instant import, Instant::now, SystemTime::now, thread_rng.
    assert_eq!(lines, vec![2, 5, 6, 8]);
    assert!(all_diags("wall_clock_clean.rs", "crates/kernel/src/fixture.rs").is_empty());
    assert!(
        all_diags("wall_clock_violate.rs", "crates/bench/src/fixture.rs").is_empty(),
        "the bench harness may measure wall time"
    );
}

#[test]
fn unordered_iteration_fixture_flags_and_clean_passes() {
    let lines = flagged_lines(
        "unordered_iteration_violate.rs",
        "crates/kernel/src/fixture.rs",
        "no-unordered-iteration-into-scheduling",
    );
    // for over .iter(), for over &set, and the for_each chain.
    assert_eq!(lines.len(), 3, "got {lines:?}");
    assert!(
        all_diags(
            "unordered_iteration_clean.rs",
            "crates/kernel/src/fixture.rs"
        )
        .is_empty(),
        "sorted keys and order-insensitive reductions are legal"
    );
}

#[test]
fn unordered_shard_fixture_flags_and_clean_passes() {
    // The shard vocabulary (timer_at / timer_in / send_latency /
    // seed_timer) pulls a file into the rule's scope on its own — these
    // fixtures contain no serial schedule/send calls.
    let lines = flagged_lines(
        "unordered_shard_violate.rs",
        "crates/sim/src/fixture.rs",
        "no-unordered-iteration-into-scheduling",
    );
    // for over .iter() into timer_at, for over &set into send_latency,
    // and the for_each chain into seed_timer.
    assert_eq!(lines.len(), 3, "got {lines:?}");
    assert!(
        all_diags("unordered_shard_clean.rs", "crates/sim/src/fixture.rs").is_empty(),
        "sorted keys and order-insensitive reductions are legal in merge code"
    );
}

#[test]
fn forbid_unsafe_fixture_flags_and_clean_passes() {
    let lines = flagged_lines(
        "forbid_unsafe_violate.rs",
        "crates/kernel/src/lib.rs",
        "forbid-unsafe-code",
    );
    assert_eq!(lines, vec![1]);
    assert!(all_diags("forbid_unsafe_clean.rs", "crates/kernel/src/lib.rs").is_empty());
    // Non-crate-root files don't need the attribute.
    assert!(all_diags("forbid_unsafe_violate.rs", "crates/kernel/src/proc.rs").is_empty());
}

#[test]
fn suppression_silences_a_fixture_violation() {
    let src = format!(
        "// lint: allow(no-raw-net-send)\n{}",
        fixture("raw_net_send_violate.rs")
    );
    let out = check_source("crates/kernel/src/fixture.rs", &src);
    // Only the first line after the directive is muted; the rest stay.
    let suppressed = out
        .suppressed
        .iter()
        .filter(|d| d.rule == "no-raw-net-send")
        .count();
    assert_eq!(
        suppressed, 0,
        "directive covers lines 1-2, first call is on 4"
    );
    let src_inline = fixture("raw_net_send_violate.rs").replace(
        "net.rpc(msg.src, msg.dst, 48);",
        "net.rpc(msg.src, msg.dst, 48); // lint: allow(no-raw-net-send)",
    );
    let out = check_source("crates/kernel/src/fixture.rs", &src_inline);
    assert_eq!(
        out.suppressed.len(),
        2,
        "inline allow mutes its own line and the next (rpc and bulk)"
    );
    assert_eq!(
        out.diagnostics
            .iter()
            .filter(|d| d.rule == "no-raw-net-send")
            .count(),
        2,
        "datagram and multicast stay flagged"
    );
}
