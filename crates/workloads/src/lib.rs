//! Workload generation for the Sprite migration evaluation.
//!
//! Reproduces the load the original system faced: diurnal user activity at
//! workstation consoles ([`ActivityTrace`], calibrated to the thesis's
//! 65-70% daytime / ~80% off-hours idle fractions), Zhou-style heavy-tailed
//! process lifetimes ([`LifetimeModel`]), and the two coarse-grained
//! application families the evaluation measures: parallel compilations
//! ([`CompileWorkload`]) and independent simulation sweeps
//! ([`simulation_batch`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod jobs;

pub use activity::{
    fraction_idle, hour_of, is_weekend, is_working_hours, ActivityEvent, ActivityModel,
    ActivityTrace, DAY, HOUR, WEEK,
};
pub use jobs::{simulation_batch, CompileJob, CompileWorkload, LifetimeModel, SimulationJob};
