//! Job and process-lifetime models.
//!
//! Two workload facts drive the paper's policy conclusions:
//!
//! * Zhou's UNIX traces \[Zho87\] show process lifetimes with a mean of 1.5 s
//!   but a standard deviation of 19.1 s — almost all processes die young,
//!   so *placing* processes at exec time beats migrating them later unless
//!   migration is nearly free (Ch. 3).
//! * The applications that benefit from load sharing are coarse-grained:
//!   compilations (pmake) and parameter-sweep simulations, whose CPU
//!   demands dwarf their communication.

use sprite_sim::{DetRng, SimDuration};

/// Heavy-tailed process lifetimes calibrated to Zhou's statistics.
#[derive(Debug, Clone, Copy)]
pub struct LifetimeModel {
    /// Shortest process.
    pub min: SimDuration,
    /// Longest process (bounds the tail).
    pub max: SimDuration,
    /// Pareto tail index; close to 1 gives the enormous coefficient of
    /// variation the traces show.
    pub alpha: f64,
}

impl Default for LifetimeModel {
    fn default() -> Self {
        LifetimeModel {
            min: SimDuration::from_millis(200),
            max: SimDuration::from_secs(600),
            alpha: 1.08,
        }
    }
}

impl LifetimeModel {
    /// Draws one process lifetime.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        rng.bounded_pareto(self.min, self.max, self.alpha)
    }
}

/// One compilation step in a pmake run: read the source and its headers,
/// burn CPU, write the object file.
///
/// The header list matters: every `open` is a name lookup at the file
/// server, and "name lookups are the greatest cause of contention for file
/// server processing" \[Nel88\] — it is header traffic, not data bytes, that
/// bends the parallel-compilation speedup curve.
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// Source file path (read through the shared FS).
    pub src: String,
    /// Shared header files the compile also opens and reads.
    pub headers: Vec<String>,
    /// Object file path (written through the shared FS).
    pub obj: String,
    /// Source size in bytes.
    pub src_bytes: u64,
    /// Object size in bytes.
    pub obj_bytes: u64,
    /// Pure compute demand.
    pub cpu: SimDuration,
}

/// Parameters for generating a pmake-style source tree.
#[derive(Debug, Clone, Copy)]
pub struct CompileWorkload {
    /// Number of independent source files.
    pub files: usize,
    /// Mean CPU seconds per compilation.
    pub mean_cpu: SimDuration,
    /// Mean source size.
    pub mean_src_bytes: u64,
    /// Headers each compile includes (drawn from a shared pool).
    pub headers_per_file: usize,
    /// Size of the shared header pool.
    pub header_pool: usize,
    /// Time for the final sequential link step.
    pub link_cpu: SimDuration,
}

impl Default for CompileWorkload {
    /// Roughly a Sprite-era C compilation: ~10 s of Sun-3 CPU per file,
    /// ~30 KB sources, half a dozen shared headers per file, a few seconds
    /// of sequential link at the end. The link step is the Amdahl
    /// bottleneck; the header opens are the file-server bottleneck.
    fn default() -> Self {
        CompileWorkload {
            files: 24,
            mean_cpu: SimDuration::from_secs(10),
            mean_src_bytes: 30 * 1024,
            headers_per_file: 6,
            header_pool: 12,
            link_cpu: SimDuration::from_secs(6),
        }
    }
}

impl CompileWorkload {
    /// Path of the `i`-th shared header.
    pub fn header_path(i: usize) -> String {
        format!("/usr/include/sys/h{i}.h")
    }

    /// Generates the compile jobs, jittered around the means.
    pub fn jobs(&self, rng: &mut DetRng) -> Vec<CompileJob> {
        (0..self.files)
            .map(|i| {
                let cpu = rng.jittered(self.mean_cpu, self.mean_cpu * 0.15);
                let src_bytes =
                    (self.mean_src_bytes as f64 * (0.7 + 0.6 * rng.uniform_f64())) as u64;
                let headers = (0..self.headers_per_file)
                    .map(|k| Self::header_path((i + k * 5) % self.header_pool.max(1)))
                    .collect();
                CompileJob {
                    src: format!("/src/module{i}.c"),
                    headers,
                    obj: format!("/src/module{i}.o"),
                    src_bytes,
                    obj_bytes: src_bytes / 2,
                    cpu: cpu.max(SimDuration::from_secs(1)),
                }
            })
            .collect()
    }
}

/// An independent simulation job for the parameter-sweep workload (the one
/// that achieved ~800% effective utilization versus pmake's ~300%).
#[derive(Debug, Clone, Copy)]
pub struct SimulationJob {
    /// Distinguishes the sweep point.
    pub index: usize,
    /// Pure compute demand (minutes, not seconds — coarse grain).
    pub cpu: SimDuration,
    /// Result bytes written at the end.
    pub result_bytes: u64,
}

/// Generates `count` independent simulation jobs of roughly `mean_cpu` each.
pub fn simulation_batch(
    rng: &mut DetRng,
    count: usize,
    mean_cpu: SimDuration,
) -> Vec<SimulationJob> {
    (0..count)
        .map(|index| SimulationJob {
            index,
            cpu: rng
                .jittered(mean_cpu, mean_cpu * 0.1)
                .max(SimDuration::from_secs(5)),
            result_bytes: 16 * 1024,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetimes_match_zhou_statistics() {
        let model = LifetimeModel::default();
        let mut rng = DetRng::seed_from(11);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| model.sample(&mut rng).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        let sd = var.sqrt();
        let under_1s = samples.iter().filter(|&&x| x < 1.0).count() as f64 / samples.len() as f64;
        // Zhou: mean 1.5s, sd 19.1s, >78% below one second. We require the
        // same qualitative regime: short mean, sd an order of magnitude
        // larger, most processes sub-second.
        assert!((0.8..3.0).contains(&mean), "mean {mean}");
        assert!(sd > 5.0 * mean, "sd {sd} vs mean {mean}");
        assert!(under_1s > 0.70, "fraction under 1s = {under_1s}");
    }

    #[test]
    fn compile_workload_is_deterministic_per_seed() {
        let w = CompileWorkload::default();
        let a = w.jobs(&mut DetRng::seed_from(5));
        let b = w.jobs(&mut DetRng::seed_from(5));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cpu, y.cpu);
            assert_eq!(x.src, y.src);
            assert_eq!(x.src_bytes, y.src_bytes);
        }
    }

    #[test]
    fn compile_jobs_have_sane_shapes() {
        let w = CompileWorkload {
            files: 48,
            ..CompileWorkload::default()
        };
        let jobs = w.jobs(&mut DetRng::seed_from(6));
        assert_eq!(jobs.len(), 48);
        for j in &jobs {
            assert!(j.cpu >= SimDuration::from_secs(1));
            assert!(j.src_bytes > 0 && j.obj_bytes > 0);
            assert!(j.src.ends_with(".c") && j.obj.ends_with(".o"));
        }
        // Distinct paths.
        let set: sprite_sim::DetHashSet<_> = jobs.iter().map(|j| &j.src).collect();
        assert_eq!(set.len(), 48);
    }

    #[test]
    fn simulation_batch_is_coarse_grained() {
        let jobs = simulation_batch(&mut DetRng::seed_from(7), 100, SimDuration::from_secs(300));
        assert_eq!(jobs.len(), 100);
        let total: f64 = jobs.iter().map(|j| j.cpu.as_secs_f64()).sum();
        assert!((25_000.0..35_000.0).contains(&total), "total {total}");
    }
}
