//! Synthetic user-activity traces.
//!
//! The thesis's production study (Ch. 8) is driven by real users arriving
//! at and leaving their workstations. We reproduce the *process* behind the
//! numbers it reports — "65-70% of hosts in Sprite are idle on average
//! during the day, with up to 80% idle at night and on weekends" — with a
//! two-state alternating-renewal model per host: exponential active and
//! idle periods whose means depend on the hour of day and the day of week.
//! Mutka/Livny-style long idle stretches \[ML87\] come out of the night/
//! weekend regime automatically.

use sprite_net::HostId;
use sprite_sim::{DetRng, SimDuration, SimTime};

/// Seconds in an hour/day/week of simulated time.
pub const HOUR: u64 = 3_600;
/// Seconds in a day.
pub const DAY: u64 = 24 * HOUR;
/// Seconds in a week (simulations start on a Monday at midnight).
pub const WEEK: u64 = 7 * DAY;

/// Hour of day (0-23) at `t`.
pub fn hour_of(t: SimTime) -> u64 {
    (t.as_micros() / 1_000_000 % DAY) / HOUR
}

/// True on Saturday/Sunday (simulated time starts Monday 00:00).
pub fn is_weekend(t: SimTime) -> bool {
    let day = t.as_micros() / 1_000_000 / DAY % 7;
    day >= 5
}

/// True during working hours on a weekday.
pub fn is_working_hours(t: SimTime) -> bool {
    !is_weekend(t) && (9..18).contains(&hour_of(t))
}

/// Parameters of the per-host activity model.
#[derive(Debug, Clone, Copy)]
pub struct ActivityModel {
    /// Mean length of an at-console session during working hours.
    pub day_active_mean: SimDuration,
    /// Mean length of an idle gap during working hours.
    pub day_idle_mean: SimDuration,
    /// Mean at-console session length off hours.
    pub off_active_mean: SimDuration,
    /// Mean idle gap off hours.
    pub off_idle_mean: SimDuration,
}

impl Default for ActivityModel {
    /// Calibrated so ~1/3 of hosts are busy during the day and ~1/5 or less
    /// at night and on weekends — the fractions Chapter 8 reports.
    fn default() -> Self {
        ActivityModel {
            day_active_mean: SimDuration::from_secs(20 * 60),
            day_idle_mean: SimDuration::from_secs(40 * 60),
            off_active_mean: SimDuration::from_secs(8 * 60),
            off_idle_mean: SimDuration::from_secs(80 * 60),
        }
    }
}

impl ActivityModel {
    fn means_at(&self, t: SimTime) -> (SimDuration, SimDuration) {
        if is_working_hours(t) {
            (self.day_active_mean, self.day_idle_mean)
        } else {
            (self.off_active_mean, self.off_idle_mean)
        }
    }
}

/// One console transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// The user's state *from* this instant.
    pub active: bool,
}

/// A host's activity trace over a horizon.
#[derive(Debug, Clone)]
pub struct ActivityTrace {
    /// The host this trace belongs to.
    pub host: HostId,
    events: Vec<ActivityEvent>,
}

impl ActivityTrace {
    /// Generates a trace for `host` covering `[0, horizon)`.
    pub fn generate(
        rng: &mut DetRng,
        model: &ActivityModel,
        host: HostId,
        horizon: SimDuration,
    ) -> Self {
        let end = SimTime::ZERO + horizon;
        let mut events = Vec::new();
        let mut t = SimTime::ZERO;
        // Start idle with a random phase so hosts do not move in lockstep.
        let mut active = rng.chance(0.25);
        events.push(ActivityEvent { at: t, active });
        while t < end {
            let (active_mean, idle_mean) = model.means_at(t);
            let dwell = if active {
                rng.exponential(active_mean)
            } else {
                rng.exponential(idle_mean)
            };
            t += dwell.max(SimDuration::from_secs(1));
            active = !active;
            if t < end {
                events.push(ActivityEvent { at: t, active });
            }
        }
        ActivityTrace { host, events }
    }

    /// The transitions, in time order.
    pub fn events(&self) -> &[ActivityEvent] {
        &self.events
    }

    /// Index just past the last transition at or before `t` (events are
    /// strictly ordered by time, so a binary search finds it; these lookups
    /// run millions of times in the month-long production simulations).
    fn last_transition_before(&self, t: SimTime) -> Option<&ActivityEvent> {
        let i = self.events.partition_point(|e| e.at <= t);
        if i == 0 {
            None
        } else {
            Some(&self.events[i - 1])
        }
    }

    /// Whether the user is at the console at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        match self.last_transition_before(t) {
            Some(e) => e.active,
            None => false,
        }
    }

    /// How long the console has been untouched at `t` (zero while active).
    pub fn idle_duration_at(&self, t: SimTime) -> SimDuration {
        match self.last_transition_before(t) {
            Some(e) if e.active => SimDuration::ZERO,
            Some(e) => t.elapsed_since(e.at),
            None => t.elapsed_since(SimTime::ZERO),
        }
    }
}

/// Fraction of hosts idle at `t` given their traces.
pub fn fraction_idle(traces: &[ActivityTrace], t: SimTime) -> f64 {
    if traces.is_empty() {
        return 0.0;
    }
    let idle = traces.iter().filter(|tr| !tr.active_at(t)).count();
    idle as f64 / traces.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_helpers() {
        let monday_10am = SimTime::ZERO + SimDuration::from_secs(10 * HOUR);
        assert_eq!(hour_of(monday_10am), 10);
        assert!(!is_weekend(monday_10am));
        assert!(is_working_hours(monday_10am));
        let saturday_noon = SimTime::ZERO + SimDuration::from_secs(5 * DAY + 12 * HOUR);
        assert!(is_weekend(saturday_noon));
        assert!(!is_working_hours(saturday_noon));
        let monday_3am = SimTime::ZERO + SimDuration::from_secs(3 * HOUR);
        assert!(!is_working_hours(monday_3am));
    }

    #[test]
    fn traces_cover_the_horizon_in_order() {
        let mut rng = DetRng::seed_from(1);
        let tr = ActivityTrace::generate(
            &mut rng,
            &ActivityModel::default(),
            HostId::new(0),
            SimDuration::from_secs(2 * DAY),
        );
        let evs = tr.events();
        assert!(!evs.is_empty());
        for w in evs.windows(2) {
            assert!(w[0].at < w[1].at, "events strictly ordered");
            assert_ne!(w[0].active, w[1].active, "states alternate");
        }
    }

    #[test]
    fn idle_fractions_match_the_thesis_bands() {
        let mut rng = DetRng::seed_from(7);
        let model = ActivityModel::default();
        let traces: Vec<ActivityTrace> = (0..200)
            .map(|i| {
                ActivityTrace::generate(
                    &mut rng,
                    &model,
                    HostId::new(i),
                    SimDuration::from_secs(WEEK),
                )
            })
            .collect();
        // Average over weekday working hours (Mon-Fri, 9-18).
        let mut day = Vec::new();
        let mut night = Vec::new();
        for day_idx in 0..7u64 {
            for hour in 0..24u64 {
                let t =
                    SimTime::ZERO + SimDuration::from_secs(day_idx * DAY + hour * HOUR + 30 * 60);
                let f = fraction_idle(&traces, t);
                if is_working_hours(t) {
                    day.push(f);
                } else {
                    night.push(f);
                }
            }
        }
        let day_avg = day.iter().sum::<f64>() / day.len() as f64;
        let night_avg = night.iter().sum::<f64>() / night.len() as f64;
        assert!(
            (0.60..0.78).contains(&day_avg),
            "daytime idle fraction {day_avg} outside the 65-70% band"
        );
        assert!(
            night_avg > 0.75,
            "off-hours idle fraction {night_avg} should reach ~80%"
        );
        assert!(night_avg > day_avg);
    }

    #[test]
    fn idle_duration_tracks_last_activity() {
        let mut rng = DetRng::seed_from(3);
        let tr = ActivityTrace::generate(
            &mut rng,
            &ActivityModel::default(),
            HostId::new(0),
            SimDuration::from_secs(DAY),
        );
        // Find an idle->active transition and check durations around it.
        let evs = tr.events();
        if let Some(w) = evs.windows(2).find(|w| !w[0].active && w[1].active) {
            let mid = w[0].at + w[1].at.elapsed_since(w[0].at) / 2;
            assert_eq!(
                tr.idle_duration_at(mid),
                mid.elapsed_since(w[0].at),
                "idle duration counts from the idle period's start"
            );
            assert_eq!(tr.idle_duration_at(w[1].at), SimDuration::ZERO);
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_trace() {
        let model = ActivityModel::default();
        let a = ActivityTrace::generate(
            &mut DetRng::seed_from(9),
            &model,
            HostId::new(0),
            SimDuration::from_secs(DAY),
        );
        let b = ActivityTrace::generate(
            &mut DetRng::seed_from(9),
            &model,
            HostId::new(0),
            SimDuration::from_secs(DAY),
        );
        assert_eq!(a.events(), b.events());
    }
}
