//! Client block caches.
//!
//! Each Sprite workstation caches file blocks in main memory; client caching
//! "not only reduces network traffic, but it reduces server processor
//! utilization as well" \[Nel88\]. The cache is block-granular (one VM page per
//! block), write-back with delayed writes, and invalidated or flushed under
//! direction of the file server's consistency protocol.
//!
//! Migration cares about these caches twice over: a migrating process's
//! dirty blocks must be flushed to the server before its open files move
//! (Ch. 5.3), and a foreign process's cache footprint is part of the cost it
//! imposes on its host.

use sprite_net::PAGE_SIZE;
use sprite_sim::DetHashMap;

use crate::FileId;

/// Address of one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAddr {
    /// The file the block belongs to.
    pub file: FileId,
    /// Block index within the file (block = [`PAGE_SIZE`] bytes).
    pub block: u64,
}

/// One cached block's data and state.
#[derive(Debug, Clone)]
struct CachedBlock {
    data: Vec<u8>,
    dirty: bool,
    /// LRU clock at last touch.
    touched: u64,
    /// File version this block was read under; a mismatch at open time
    /// means another host wrote the file since, and the block is stale.
    version: u64,
}

/// A write-back LRU block cache for one host.
///
/// # Examples
///
/// ```
/// use sprite_fs::{BlockCache, BlockAddr, FileId};
///
/// let mut cache = BlockCache::new(128);
/// // (FileIds normally come from SpriteFs::create.)
/// ```
#[derive(Debug)]
pub struct BlockCache {
    blocks: DetHashMap<BlockAddr, CachedBlock>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BlockCache {
            blocks: DetHashMap::default(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up a block, updating recency. `current_version` is the file
    /// version the caller holds from the server; a version mismatch is
    /// treated as a miss and the stale block is discarded.
    pub fn lookup(&mut self, addr: BlockAddr, current_version: u64) -> Option<Vec<u8>> {
        let clock = self.tick();
        match self.blocks.get_mut(&addr) {
            Some(b) if b.version == current_version => {
                b.touched = clock;
                self.hits += 1;
                Some(b.data.clone())
            }
            Some(_) => {
                self.blocks.remove(&addr);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a clean block fetched from the server. Returns any dirty
    /// block evicted to make room (which the caller must write back).
    pub fn insert_clean(
        &mut self,
        addr: BlockAddr,
        version: u64,
        data: Vec<u8>,
    ) -> Option<(BlockAddr, Vec<u8>)> {
        self.insert(addr, version, data, false)
    }

    /// Records a write into the cache (delayed write). Returns any dirty
    /// block evicted to make room.
    pub fn insert_dirty(
        &mut self,
        addr: BlockAddr,
        version: u64,
        data: Vec<u8>,
    ) -> Option<(BlockAddr, Vec<u8>)> {
        self.insert(addr, version, data, true)
    }

    fn insert(
        &mut self,
        addr: BlockAddr,
        version: u64,
        data: Vec<u8>,
        dirty: bool,
    ) -> Option<(BlockAddr, Vec<u8>)> {
        debug_assert!(data.len() as u64 <= PAGE_SIZE, "block larger than a page");
        let clock = self.tick();
        // Overwriting an existing entry keeps dirtiness sticky: a cached
        // dirty block stays dirty even if re-written with identical bytes.
        let was_dirty = self.blocks.get(&addr).is_some_and(|b| b.dirty);
        self.blocks.insert(
            addr,
            CachedBlock {
                data,
                dirty: dirty || was_dirty,
                touched: clock,
                version,
            },
        );
        if self.blocks.len() <= self.capacity {
            return None;
        }
        // Evict the least recently used *other* block.
        let victim = self
            .blocks
            .iter()
            .filter(|(a, _)| **a != addr)
            .min_by_key(|(_, b)| b.touched)
            .map(|(a, _)| *a)
            .expect("over-capacity cache has another entry");
        let evicted = self.blocks.remove(&victim).expect("victim present");
        if evicted.dirty {
            Some((victim, evicted.data))
        } else {
            None
        }
    }

    /// Re-marks a cached block dirty — used when a write-back RPC failed
    /// and the copy must stay scheduled for a future flush instead of being
    /// silently lost. Returns true if the block was still cached.
    pub fn mark_dirty(&mut self, addr: BlockAddr) -> bool {
        match self.blocks.get_mut(&addr) {
            Some(block) => {
                block.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Re-stamps every cached block of `file` with `version`: the server
    /// confirmed at open time that this host's copies are still current
    /// (it was the last writer), even though the version number advanced.
    pub fn revalidate_file(&mut self, file: FileId, version: u64) {
        for (addr, block) in self.blocks.iter_mut() {
            if addr.file == file {
                block.version = version;
            }
        }
    }

    /// Removes and returns all dirty blocks of `file` (for a consistency
    /// recall or a migration flush). Clean blocks of the file stay cached.
    pub fn take_dirty_blocks(&mut self, file: FileId) -> Vec<(BlockAddr, Vec<u8>)> {
        let addrs: Vec<BlockAddr> = self
            .blocks
            .iter()
            .filter(|(a, b)| a.file == file && b.dirty)
            .map(|(a, _)| *a)
            .collect();
        let mut out = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut block = self.blocks.remove(&addr).expect("listed block present");
            block.dirty = false;
            let data = block.data.clone();
            // Keep a clean copy: a recall flushes but need not invalidate.
            self.blocks.insert(addr, block);
            out.push((addr, data));
        }
        out.sort_by_key(|(a, _)| a.block);
        out
    }

    /// Drops every block of `file` (server disabled caching, or the local
    /// copy is known stale). Returns dirty blocks that must be written back.
    pub fn invalidate_file(&mut self, file: FileId) -> Vec<(BlockAddr, Vec<u8>)> {
        let addrs: Vec<BlockAddr> = self
            .blocks
            .keys()
            .filter(|a| a.file == file)
            .copied()
            .collect();
        let mut dirty = Vec::new();
        for addr in addrs {
            let block = self.blocks.remove(&addr).expect("listed block present");
            if block.dirty {
                dirty.push((addr, block.data));
            }
        }
        dirty.sort_by_key(|(a, _)| a.block);
        dirty
    }

    /// Count of dirty blocks held for `file`.
    pub fn dirty_block_count(&self, file: FileId) -> u64 {
        self.blocks
            .iter()
            .filter(|(a, b)| a.file == file && b.dirty)
            .count() as u64
    }

    /// Total blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// (hits, misses) since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr {
            file: FileId::new(f),
            block: b,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = BlockCache::new(4);
        c.insert_clean(addr(1, 0), 1, vec![7; 16]);
        assert_eq!(c.lookup(addr(1, 0), 1), Some(vec![7; 16]));
        assert_eq!(c.hit_stats(), (1, 0));
    }

    #[test]
    fn version_mismatch_is_a_miss_and_discards() {
        let mut c = BlockCache::new(4);
        c.insert_clean(addr(1, 0), 1, vec![7; 16]);
        assert_eq!(c.lookup(addr(1, 0), 2), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.hit_stats(), (0, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = BlockCache::new(2);
        c.insert_clean(addr(1, 0), 1, vec![0]);
        c.insert_clean(addr(1, 1), 1, vec![1]);
        // Touch block 0 so block 1 becomes LRU.
        c.lookup(addr(1, 0), 1);
        let evicted = c.insert_clean(addr(1, 2), 1, vec![2]);
        assert!(evicted.is_none(), "clean eviction returns nothing");
        assert!(c.lookup(addr(1, 1), 1).is_none(), "LRU block evicted");
        assert!(c.lookup(addr(1, 0), 1).is_some());
    }

    #[test]
    fn dirty_eviction_returns_writeback() {
        let mut c = BlockCache::new(1);
        c.insert_dirty(addr(1, 0), 1, vec![9]);
        let evicted = c.insert_clean(addr(1, 1), 1, vec![2]);
        assert_eq!(evicted, Some((addr(1, 0), vec![9])));
    }

    #[test]
    fn overwrite_keeps_dirtiness_sticky() {
        let mut c = BlockCache::new(2);
        c.insert_dirty(addr(1, 0), 1, vec![1]);
        c.insert_clean(addr(1, 0), 1, vec![2]);
        assert_eq!(c.dirty_block_count(FileId::new(1)), 1);
    }

    #[test]
    fn take_dirty_flushes_but_keeps_clean_copies() {
        let mut c = BlockCache::new(8);
        c.insert_dirty(addr(1, 2), 1, vec![2]);
        c.insert_dirty(addr(1, 0), 1, vec![0]);
        c.insert_clean(addr(1, 1), 1, vec![1]);
        c.insert_dirty(addr(2, 0), 1, vec![9]);
        let flushed = c.take_dirty_blocks(FileId::new(1));
        assert_eq!(
            flushed,
            vec![(addr(1, 0), vec![0]), (addr(1, 2), vec![2])],
            "dirty blocks of file 1 in block order"
        );
        assert_eq!(c.dirty_block_count(FileId::new(1)), 0);
        assert_eq!(c.dirty_block_count(FileId::new(2)), 1);
        assert_eq!(c.len(), 4, "flushed blocks stay cached clean");
    }

    #[test]
    fn invalidate_drops_everything_and_returns_dirty() {
        let mut c = BlockCache::new(8);
        c.insert_dirty(addr(1, 0), 1, vec![0]);
        c.insert_clean(addr(1, 1), 1, vec![1]);
        let dirty = c.invalidate_file(FileId::new(1));
        assert_eq!(dirty, vec![(addr(1, 0), vec![0])]);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        BlockCache::new(0);
    }
}
