//! The Sprite distributed file system, rebuilt as a simulation substrate.
//!
//! "All the hosts on the network share a common high-performance file
//! system" [Nel88, Wel90] — and that shared file system is what makes
//! Sprite's process migration design work at all: programs see the same
//! names everywhere, paging happens through backing files that any kernel
//! can reach, and open files move between hosts by updating state at the
//! I/O server rather than copying data.
//!
//! This crate provides:
//!
//! * [`SpriteFs`] — the network-wide facade: create/open/read/write/close,
//!   paging, pseudo-device requests, and the stream-migration hook the
//!   migration mechanism calls;
//! * [`ServerState`] — per-server namespaces, authoritative file contents,
//!   the consistency protocol \[NWO88\], and a genuinely contended server CPU;
//! * [`BlockCache`] — per-client write-back block caches;
//! * [`StreamTable`] — streams and the shadow-stream machinery \[Wel90\] that
//!   keeps shared access positions correct across migrations.
//!
//! Every operation is costed against the era-calibrated
//! [`CostModel`](sprite_net::CostModel) and returns its simulated completion
//! time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod file;
#[allow(clippy::module_inception)]
mod fs;
mod path;
mod replica;
mod server;
mod shard;
mod stream;

pub use cache::{BlockAddr, BlockCache};
pub use file::{FileId, FileKind, OpenMode};
pub use fs::{FsConfig, FsError, FsResult, FsStats, ServerLoad, SpriteFs};
pub use path::SpritePath;
pub use replica::{ReplicaSet, ReplicaTable, HOT_THRESHOLD};
pub use server::{ConsistencyActions, OpenRecord, ServerFile, ServerState};
pub use shard::{ShardGroup, ShardMap};
pub use stream::{MoveOutcome, ReleaseOutcome, Stream, StreamId, StreamTable};
