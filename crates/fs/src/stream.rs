//! Streams and shadow streams.
//!
//! A *stream* is Sprite's open-file object: it names a file, an access mode
//! and an access position. Streams are shared — `fork` gives parent and
//! child the *same* stream, so they share one access position. Process
//! migration can therefore leave a single stream referenced from two hosts;
//! when that happens the access position can no longer live safely in either
//! kernel, so Sprite moves it to the I/O server and marks the client-side
//! objects as *shadow streams* \[Wel90\]. Every subsequent read or write pays
//! a server round trip to use the shared offset — a genuine, measurable cost
//! of transparency that experiment E3/E12 quantifies.
//!
//! The table itself is a *generational slab*: a [`StreamId`] embeds the slot
//! index and the slot's generation at open time. Lookups are one bounds
//! check and one generation compare — no hashing — and a stale id (a stream
//! closed and its slot reused) fails the generation compare instead of
//! silently resolving to the unrelated stream now in that slot.

use std::cell::Cell;
use std::fmt;

use sprite_net::HostId;
use sprite_sim::StateDigest;

use crate::{FileId, FileKind, OpenMode};

/// Identifies one stream (open-file object) network-wide.
///
/// Packs `(slot, generation)` into 64 bits: the low half indexes the stream
/// table's slab, the high half must match the slot's current generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(u64);

impl StreamId {
    pub(crate) const fn pack(slot: u32, gen: u32) -> Self {
        StreamId(((gen as u64) << 32) | slot as u64)
    }

    pub(crate) const fn slot(self) -> u32 {
        self.0 as u32
    }

    pub(crate) const fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw packed identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}.{}", self.slot(), self.generation())
    }
}

/// One open-file object, possibly referenced from several hosts.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The file this stream reads/writes.
    pub file: FileId,
    /// The I/O server managing the file.
    pub server: HostId,
    /// Access mode fixed at open time.
    pub mode: OpenMode,
    /// What kind of object the file is.
    pub kind: FileKind,
    offset: u64,
    /// Reference counts per holding host (fork shares within a host;
    /// migration moves references between hosts). Almost always one or two
    /// entries, so a flat vector beats any map.
    holders: Vec<(HostId, u32)>,
}

impl Stream {
    /// Current access position.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Sets the access position (lseek).
    pub fn set_offset(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// Advances the access position after a transfer of `n` bytes.
    pub fn advance(&mut self, n: u64) {
        self.offset += n;
    }

    /// Total references across all hosts.
    pub fn total_refs(&self) -> u32 {
        self.holders.iter().map(|(_, n)| n).sum()
    }

    /// References held by one host.
    pub fn refs_on(&self, host: HostId) -> u32 {
        self.holders
            .iter()
            .find(|(h, _)| *h == host)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Hosts currently holding references.
    pub fn holder_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.holders.iter().map(|(h, _)| *h)
    }

    /// True when references exist on more than one host: the access
    /// position must then be managed at the I/O server (shadow streams).
    pub fn is_shadowed(&self) -> bool {
        self.holders.len() > 1
    }

    fn add_holder(&mut self, host: HostId, n: u32) {
        match self.holders.iter_mut().find(|(h, _)| *h == host) {
            Some((_, count)) => *count += n,
            None => self.holders.push((host, n)),
        }
    }

    /// Drops `n` references from `host`; returns `None` if the host holds
    /// fewer than `n`, otherwise whether the host dropped its last reference.
    fn drop_holder(&mut self, host: HostId, n: u32) -> Option<bool> {
        let pos = self.holders.iter().position(|(h, _)| *h == host)?;
        if self.holders[pos].1 < n {
            return None;
        }
        self.holders[pos].1 -= n;
        if self.holders[pos].1 == 0 {
            self.holders.remove(pos);
            Some(true)
        } else {
            Some(false)
        }
    }
}

/// One slab slot: the generation counts how many streams have lived here.
#[derive(Debug, Default)]
struct StreamSlot {
    gen: u32,
    stream: Option<Stream>,
}

/// The network-wide table of streams, as a generational slab.
///
/// In the real system each kernel has its own stream table with shadow
/// entries at servers; one logical table with per-host reference counts is
/// observationally equivalent in a single-address-space simulation and makes
/// the sharing invariants directly checkable.
#[derive(Debug, Default)]
pub struct StreamTable {
    slots: Vec<StreamSlot>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    stale_lookups: Cell<u64>,
}

impl StreamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StreamTable::default()
    }

    /// Creates a stream for `host` on `file`.
    pub fn open(
        &mut self,
        file: FileId,
        server: HostId,
        kind: FileKind,
        mode: OpenMode,
        host: HostId,
    ) -> StreamId {
        let stream = Stream {
            file,
            server,
            mode,
            kind,
            offset: 0,
            holders: vec![(host, 1)],
        };
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(StreamSlot::default());
                (self.slots.len() - 1) as u32
            }
        };
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.stream.is_none(), "allocated a live slot");
        s.stream = Some(stream);
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        StreamId::pack(slot, s.gen)
    }

    /// Looks up a stream. Stale ids (the slot was reused since this id was
    /// minted) return `None`, never another stream.
    pub fn get(&self, id: StreamId) -> Option<&Stream> {
        let s = self.slots.get(id.slot() as usize)?;
        if s.gen != id.generation() {
            self.stale_lookups.set(self.stale_lookups.get() + 1);
            return None;
        }
        s.stream.as_ref()
    }

    /// Mutable access to a stream.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut Stream> {
        let s = self.slots.get_mut(id.slot() as usize)?;
        if s.gen != id.generation() {
            self.stale_lookups.set(self.stale_lookups.get() + 1);
            return None;
        }
        s.stream.as_mut()
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no streams are open.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Most streams ever simultaneously open (slab occupancy high-water).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Slots allocated (live + free); the slab's memory footprint.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lookups that presented a stale (reused-slot) identifier.
    pub fn stale_lookups(&self) -> u64 {
        self.stale_lookups.get()
    }

    fn retire(&mut self, id: StreamId) {
        let slot = &mut self.slots[id.slot() as usize];
        debug_assert_eq!(slot.gen, id.generation(), "retiring a stale id");
        slot.stream = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
    }

    /// Adds a reference from `host` (fork duplicating a descriptor).
    /// Returns false for an unknown stream.
    pub fn add_ref(&mut self, id: StreamId, host: HostId) -> bool {
        match self.get_mut(id) {
            Some(s) => {
                s.add_holder(host, 1);
                true
            }
            None => false,
        }
    }

    /// Drops one reference from `host`. Returns what remains.
    pub fn release(&mut self, id: StreamId, host: HostId) -> ReleaseOutcome {
        let Some(s) = self.get_mut(id) else {
            return ReleaseOutcome::UnknownStream;
        };
        let Some(host_dropped) = s.drop_holder(host, 1) else {
            return ReleaseOutcome::NotAHolder;
        };
        if s.holders.is_empty() {
            self.retire(id);
            ReleaseOutcome::StreamClosed
        } else {
            let shadowed = s.is_shadowed();
            ReleaseOutcome::StillOpen {
                host_dropped_file_ref: host_dropped,
                shadowed,
            }
        }
    }

    /// Moves `n` references from `from` to `to` (process migration).
    /// Returns the stream's shadowing state after the move, or `None` if the
    /// stream or references do not exist.
    pub fn move_refs(
        &mut self,
        id: StreamId,
        from: HostId,
        to: HostId,
        n: u32,
    ) -> Option<MoveOutcome> {
        let s = self.get_mut(id)?;
        if s.refs_on(from) < n {
            return None;
        }
        let from_dropped = s.drop_holder(from, n).expect("refs checked");
        s.add_holder(to, n);
        Some(MoveOutcome {
            shadowed: s.is_shadowed(),
            from_dropped_file_ref: from_dropped,
        })
    }

    /// Iterates over all live streams in slot order (diagnostics, invariant
    /// checks).
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, &Stream)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.stream
                .as_ref()
                .map(|s| (StreamId::pack(i as u32, slot.gen), s))
        })
    }

    /// Folds every live stream (in slot order) plus the slab's occupancy
    /// counters into `d`.
    pub fn digest_into(&self, d: &mut StateDigest) {
        d.write_usize(self.live);
        d.write_usize(self.high_water);
        d.write_usize(self.slots.len());
        d.write_u64(self.stale_lookups.get());
        for (id, s) in self.iter() {
            d.write_u64(id.raw());
            d.write_u64(s.file.raw());
            d.write_usize(s.server.index());
            d.write_u8(s.mode as u8);
            match s.kind {
                FileKind::Regular => d.write_u8(0),
                FileKind::Backing => d.write_u8(1),
                FileKind::Pseudo {
                    server_process_host,
                } => {
                    d.write_u8(2);
                    d.write_usize(server_process_host.index());
                }
            }
            d.write_u64(s.offset);
            d.write_usize(s.holders.len());
            for &(host, refs) in &s.holders {
                d.write_usize(host.index());
                d.write_u32(refs);
            }
        }
    }
}

/// Result of dropping a stream reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// No such stream.
    UnknownStream,
    /// The host did not hold a reference.
    NotAHolder,
    /// The last reference anywhere disappeared; the file close should
    /// propagate to the server.
    StreamClosed,
    /// References remain.
    StillOpen {
        /// This host dropped its last reference (server open-record for the
        /// host should be released).
        host_dropped_file_ref: bool,
        /// Whether the stream is still shadowed after the release.
        shadowed: bool,
    },
}

/// Result of migrating stream references between hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveOutcome {
    /// True if the stream is now referenced from more than one host and the
    /// access position must be managed at the I/O server.
    pub shadowed: bool,
    /// True if the source host no longer references the stream at all.
    pub from_dropped_file_ref: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn table_with_stream() -> (StreamTable, StreamId) {
        let mut t = StreamTable::new();
        let id = t.open(
            FileId::new(1),
            h(0),
            FileKind::Regular,
            OpenMode::ReadWrite,
            h(1),
        );
        (t, id)
    }

    #[test]
    fn open_creates_single_holder() {
        let (t, id) = table_with_stream();
        let s = t.get(id).unwrap();
        assert_eq!(s.total_refs(), 1);
        assert_eq!(s.refs_on(h(1)), 1);
        assert!(!s.is_shadowed());
        assert_eq!(s.offset(), 0);
    }

    #[test]
    fn fork_shares_offset() {
        let (mut t, id) = table_with_stream();
        assert!(t.add_ref(id, h(1)));
        t.get_mut(id).unwrap().advance(100);
        let s = t.get(id).unwrap();
        assert_eq!(s.total_refs(), 2);
        assert_eq!(s.offset(), 100, "parent and child share one position");
        assert!(!s.is_shadowed(), "same-host sharing needs no shadow");
    }

    #[test]
    fn migration_of_one_ref_creates_shadow() {
        let (mut t, id) = table_with_stream();
        t.add_ref(id, h(1)); // forked child stays home
        let outcome = t.move_refs(id, h(1), h(2), 1).unwrap();
        assert!(outcome.shadowed, "refs now on two hosts");
        assert!(!outcome.from_dropped_file_ref);
        assert!(t.get(id).unwrap().is_shadowed());
    }

    #[test]
    fn migration_of_sole_ref_does_not_shadow() {
        let (mut t, id) = table_with_stream();
        let outcome = t.move_refs(id, h(1), h(2), 1).unwrap();
        assert!(!outcome.shadowed);
        assert!(outcome.from_dropped_file_ref);
        assert_eq!(t.get(id).unwrap().refs_on(h(2)), 1);
    }

    #[test]
    fn move_more_refs_than_held_fails() {
        let (mut t, id) = table_with_stream();
        assert!(t.move_refs(id, h(1), h(2), 2).is_none());
        assert!(t.move_refs(id, h(9), h(2), 1).is_none());
    }

    #[test]
    fn release_sequences() {
        let (mut t, id) = table_with_stream();
        t.add_ref(id, h(1));
        t.move_refs(id, h(1), h(2), 1);
        // Two holders now: h1 x1, h2 x1.
        match t.release(id, h(1)) {
            ReleaseOutcome::StillOpen {
                host_dropped_file_ref,
                shadowed,
            } => {
                assert!(host_dropped_file_ref);
                assert!(!shadowed, "back to a single host");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.release(id, h(2)), ReleaseOutcome::StreamClosed);
        assert_eq!(t.release(id, h(2)), ReleaseOutcome::UnknownStream);
        assert!(t.is_empty());
    }

    #[test]
    fn release_by_non_holder() {
        let (mut t, id) = table_with_stream();
        assert_eq!(t.release(id, h(5)), ReleaseOutcome::NotAHolder);
    }

    #[test]
    fn shadow_collapses_when_refs_reunite() {
        let (mut t, id) = table_with_stream();
        t.add_ref(id, h(1));
        t.move_refs(id, h(1), h(2), 1);
        assert!(t.get(id).unwrap().is_shadowed());
        // The stay-home process migrates to join the other: one host again.
        let outcome = t.move_refs(id, h(1), h(2), 1).unwrap();
        assert!(!outcome.shadowed);
        assert_eq!(t.get(id).unwrap().refs_on(h(2)), 2);
    }

    #[test]
    fn stale_id_does_not_resolve_after_slot_reuse() {
        let (mut t, id) = table_with_stream();
        assert_eq!(t.release(id, h(1)), ReleaseOutcome::StreamClosed);
        // The next open reuses the freed slot at a new generation.
        let id2 = t.open(
            FileId::new(2),
            h(0),
            FileKind::Regular,
            OpenMode::Read,
            h(2),
        );
        assert_eq!(id2.slot(), id.slot(), "slot was reused");
        assert_ne!(id2.generation(), id.generation());
        assert!(t.get(id).is_none(), "stale id must not resolve");
        assert!(t.get_mut(id).is_none());
        assert!(!t.add_ref(id, h(1)));
        assert_eq!(t.release(id, h(2)), ReleaseOutcome::UnknownStream);
        assert_eq!(t.get(id2).unwrap().file, FileId::new(2));
        assert!(t.stale_lookups() >= 3);
    }

    #[test]
    fn occupancy_high_water_tracks_peak() {
        let mut t = StreamTable::new();
        let ids: Vec<StreamId> = (0..5)
            .map(|i| {
                t.open(
                    FileId::new(i),
                    h(0),
                    FileKind::Regular,
                    OpenMode::Read,
                    h(1),
                )
            })
            .collect();
        assert_eq!(t.high_water(), 5);
        for id in &ids {
            t.release(*id, h(1));
        }
        assert!(t.is_empty());
        assert_eq!(t.high_water(), 5, "high water survives the drain");
        assert_eq!(t.capacity(), 5, "slots are recycled, not dropped");
    }
}
