//! Streams and shadow streams.
//!
//! A *stream* is Sprite's open-file object: it names a file, an access mode
//! and an access position. Streams are shared — `fork` gives parent and
//! child the *same* stream, so they share one access position. Process
//! migration can therefore leave a single stream referenced from two hosts;
//! when that happens the access position can no longer live safely in either
//! kernel, so Sprite moves it to the I/O server and marks the client-side
//! objects as *shadow streams* \[Wel90\]. Every subsequent read or write pays
//! a server round trip to use the shared offset — a genuine, measurable cost
//! of transparency that experiment E3/E12 quantifies.

use std::collections::HashMap;
use std::fmt;

use sprite_net::HostId;

use crate::{FileId, FileKind, OpenMode};

/// Identifies one stream (open-file object) network-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(u64);

impl StreamId {
    pub(crate) const fn new(raw: u64) -> Self {
        StreamId(raw)
    }

    /// The raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// One open-file object, possibly referenced from several hosts.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The file this stream reads/writes.
    pub file: FileId,
    /// The I/O server managing the file.
    pub server: HostId,
    /// Access mode fixed at open time.
    pub mode: OpenMode,
    /// What kind of object the file is.
    pub kind: FileKind,
    offset: u64,
    /// Reference counts per holding host (fork shares within a host;
    /// migration moves references between hosts).
    holders: HashMap<HostId, u32>,
}

impl Stream {
    /// Current access position.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Sets the access position (lseek).
    pub fn set_offset(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// Advances the access position after a transfer of `n` bytes.
    pub fn advance(&mut self, n: u64) {
        self.offset += n;
    }

    /// Total references across all hosts.
    pub fn total_refs(&self) -> u32 {
        self.holders.values().sum()
    }

    /// References held by one host.
    pub fn refs_on(&self, host: HostId) -> u32 {
        self.holders.get(&host).copied().unwrap_or(0)
    }

    /// Hosts currently holding references.
    pub fn holder_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.holders.keys().copied()
    }

    /// True when references exist on more than one host: the access
    /// position must then be managed at the I/O server (shadow streams).
    pub fn is_shadowed(&self) -> bool {
        self.holders.len() > 1
    }
}

/// The network-wide table of streams.
///
/// In the real system each kernel has its own stream table with shadow
/// entries at servers; one logical table with per-host reference counts is
/// observationally equivalent in a single-address-space simulation and makes
/// the sharing invariants directly checkable.
#[derive(Debug, Default)]
pub struct StreamTable {
    streams: HashMap<StreamId, Stream>,
    next: u64,
}

impl StreamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StreamTable::default()
    }

    /// Creates a stream for `host` on `file`.
    pub fn open(
        &mut self,
        file: FileId,
        server: HostId,
        kind: FileKind,
        mode: OpenMode,
        host: HostId,
    ) -> StreamId {
        let id = StreamId::new(self.next);
        self.next += 1;
        let mut holders = HashMap::new();
        holders.insert(host, 1);
        self.streams.insert(
            id,
            Stream {
                file,
                server,
                mode,
                kind,
                offset: 0,
                holders,
            },
        );
        id
    }

    /// Looks up a stream.
    pub fn get(&self, id: StreamId) -> Option<&Stream> {
        self.streams.get(&id)
    }

    /// Mutable access to a stream.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut Stream> {
        self.streams.get_mut(&id)
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True if no streams are open.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Adds a reference from `host` (fork duplicating a descriptor).
    /// Returns false for an unknown stream.
    pub fn add_ref(&mut self, id: StreamId, host: HostId) -> bool {
        match self.streams.get_mut(&id) {
            Some(s) => {
                *s.holders.entry(host).or_insert(0) += 1;
                true
            }
            None => false,
        }
    }

    /// Drops one reference from `host`. Returns what remains.
    pub fn release(&mut self, id: StreamId, host: HostId) -> ReleaseOutcome {
        let Some(s) = self.streams.get_mut(&id) else {
            return ReleaseOutcome::UnknownStream;
        };
        let Some(count) = s.holders.get_mut(&host) else {
            return ReleaseOutcome::NotAHolder;
        };
        *count -= 1;
        let host_dropped = *count == 0;
        if host_dropped {
            s.holders.remove(&host);
        }
        if s.holders.is_empty() {
            self.streams.remove(&id);
            ReleaseOutcome::StreamClosed
        } else {
            ReleaseOutcome::StillOpen {
                host_dropped_file_ref: host_dropped,
                shadowed: self.streams[&id].is_shadowed(),
            }
        }
    }

    /// Moves `n` references from `from` to `to` (process migration).
    /// Returns the stream's shadowing state after the move, or `None` if the
    /// stream or references do not exist.
    pub fn move_refs(
        &mut self,
        id: StreamId,
        from: HostId,
        to: HostId,
        n: u32,
    ) -> Option<MoveOutcome> {
        let s = self.streams.get_mut(&id)?;
        let have = s.holders.get_mut(&from)?;
        if *have < n {
            return None;
        }
        *have -= n;
        let from_dropped = *have == 0;
        if from_dropped {
            s.holders.remove(&from);
        }
        *s.holders.entry(to).or_insert(0) += n;
        Some(MoveOutcome {
            shadowed: s.is_shadowed(),
            from_dropped_file_ref: from_dropped,
        })
    }

    /// Iterates over all streams (diagnostics, invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, &Stream)> {
        self.streams.iter().map(|(id, s)| (*id, s))
    }
}

/// Result of dropping a stream reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// No such stream.
    UnknownStream,
    /// The host did not hold a reference.
    NotAHolder,
    /// The last reference anywhere disappeared; the file close should
    /// propagate to the server.
    StreamClosed,
    /// References remain.
    StillOpen {
        /// This host dropped its last reference (server open-record for the
        /// host should be released).
        host_dropped_file_ref: bool,
        /// Whether the stream is still shadowed after the release.
        shadowed: bool,
    },
}

/// Result of migrating stream references between hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveOutcome {
    /// True if the stream is now referenced from more than one host and the
    /// access position must be managed at the I/O server.
    pub shadowed: bool,
    /// True if the source host no longer references the stream at all.
    pub from_dropped_file_ref: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn table_with_stream() -> (StreamTable, StreamId) {
        let mut t = StreamTable::new();
        let id = t.open(
            FileId::new(1),
            h(0),
            FileKind::Regular,
            OpenMode::ReadWrite,
            h(1),
        );
        (t, id)
    }

    #[test]
    fn open_creates_single_holder() {
        let (t, id) = table_with_stream();
        let s = t.get(id).unwrap();
        assert_eq!(s.total_refs(), 1);
        assert_eq!(s.refs_on(h(1)), 1);
        assert!(!s.is_shadowed());
        assert_eq!(s.offset(), 0);
    }

    #[test]
    fn fork_shares_offset() {
        let (mut t, id) = table_with_stream();
        assert!(t.add_ref(id, h(1)));
        t.get_mut(id).unwrap().advance(100);
        let s = t.get(id).unwrap();
        assert_eq!(s.total_refs(), 2);
        assert_eq!(s.offset(), 100, "parent and child share one position");
        assert!(!s.is_shadowed(), "same-host sharing needs no shadow");
    }

    #[test]
    fn migration_of_one_ref_creates_shadow() {
        let (mut t, id) = table_with_stream();
        t.add_ref(id, h(1)); // forked child stays home
        let outcome = t.move_refs(id, h(1), h(2), 1).unwrap();
        assert!(outcome.shadowed, "refs now on two hosts");
        assert!(!outcome.from_dropped_file_ref);
        assert!(t.get(id).unwrap().is_shadowed());
    }

    #[test]
    fn migration_of_sole_ref_does_not_shadow() {
        let (mut t, id) = table_with_stream();
        let outcome = t.move_refs(id, h(1), h(2), 1).unwrap();
        assert!(!outcome.shadowed);
        assert!(outcome.from_dropped_file_ref);
        assert_eq!(t.get(id).unwrap().refs_on(h(2)), 1);
    }

    #[test]
    fn move_more_refs_than_held_fails() {
        let (mut t, id) = table_with_stream();
        assert!(t.move_refs(id, h(1), h(2), 2).is_none());
        assert!(t.move_refs(id, h(9), h(2), 1).is_none());
    }

    #[test]
    fn release_sequences() {
        let (mut t, id) = table_with_stream();
        t.add_ref(id, h(1));
        t.move_refs(id, h(1), h(2), 1);
        // Two holders now: h1 x1, h2 x1.
        match t.release(id, h(1)) {
            ReleaseOutcome::StillOpen {
                host_dropped_file_ref,
                shadowed,
            } => {
                assert!(host_dropped_file_ref);
                assert!(!shadowed, "back to a single host");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.release(id, h(2)), ReleaseOutcome::StreamClosed);
        assert_eq!(t.release(id, h(2)), ReleaseOutcome::UnknownStream);
        assert!(t.is_empty());
    }

    #[test]
    fn release_by_non_holder() {
        let (mut t, id) = table_with_stream();
        assert_eq!(t.release(id, h(5)), ReleaseOutcome::NotAHolder);
    }

    #[test]
    fn shadow_collapses_when_refs_reunite() {
        let (mut t, id) = table_with_stream();
        t.add_ref(id, h(1));
        t.move_refs(id, h(1), h(2), 1);
        assert!(t.get(id).unwrap().is_shadowed());
        // The stay-home process migrates to join the other: one host again.
        let outcome = t.move_refs(id, h(1), h(2), 1).unwrap();
        assert!(!outcome.shadowed);
        assert_eq!(t.get(id).unwrap().refs_on(h(2)), 2);
    }
}
