//! The network-wide file system facade.
//!
//! [`SpriteFs`] wires together the per-server state, the per-client block
//! caches and the stream table, and charges every operation's simulated cost
//! to the network and the server CPUs. It implements the behaviour Chapter 5
//! of the thesis depends on:
//!
//! * name lookup at the server, costed per pathname component;
//! * client caching with the \[NWO88\] consistency protocol — recall of dirty
//!   blocks on sequential write-sharing, caching disabled on concurrent
//!   write-sharing;
//! * streams with server-managed (shadow) access positions once migration
//!   spreads a stream across hosts;
//! * paging traffic for the VM system through backing files;
//! * pseudo-devices for IPC with user-level servers \[WO88\].
//!
//! Every public operation takes the current simulated time and the shared
//! typed [`Transport`], and returns its completion time alongside its
//! result. Each server interaction is tagged with its [`RpcOp`] so the
//! transport's per-op table attributes file traffic to opens, lookups,
//! block reads/writes, consistency actions and paging separately.

use sprite_net::{wire_size, HostId, RpcError, RpcOp, Transport, CONTROL_BYTES, PAGE_SIZE};
use sprite_sim::{DetHashMap, DetHashSet, SimDuration, SimTime, StateDigest};

use crate::cache::{BlockAddr, BlockCache};
use crate::replica::ReplicaTable;
use crate::server::ServerState;
use crate::shard::ShardMap;
use crate::stream::{MoveOutcome, ReleaseOutcome, StreamId, StreamTable};
use crate::{FileId, FileKind, OpenMode, SpritePath};

/// Tunables for the file system.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Client block-cache capacity, in blocks (Sprite workstations devoted a
    /// few megabytes of main memory to the FS cache).
    pub client_cache_blocks: usize,
    /// Server block-cache capacity, in blocks.
    pub server_cache_blocks: usize,
    /// Flush a host's dirty blocks for a file when the host drops its last
    /// stream to it (Sprite used 30-second delayed writes; flushing on final
    /// close is the same traffic, scheduled deterministically).
    pub flush_on_close: bool,
    /// Cache name-to-file translations at clients, skipping the server's
    /// per-component lookup work on repeat opens. Sprite did NOT have this
    /// (the consistency of name caches is hard), and Nelson estimated adding
    /// it "would reduce file server utilization by as much as a factor of
    /// two" \[Nel88\] — the A1 ablation measures exactly that. Name removal
    /// invalidates other hosts' entries at no modelled cost.
    pub client_name_caching: bool,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            client_cache_blocks: 1024, // 4 MB
            server_cache_blocks: 8192, // 32 MB
            flush_on_close: true,
            client_name_caching: false,
        }
    }
}

/// Why a file-system operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No such file.
    NotFound(SpritePath),
    /// Name already exists.
    AlreadyExists(SpritePath),
    /// No server exports a domain covering the path.
    NoDomain(SpritePath),
    /// The stream does not exist or is not held by the acting host.
    BadStream(StreamId),
    /// The stream's mode forbids the operation.
    BadMode(StreamId),
    /// Operation not valid for this file kind.
    WrongKind(FileId),
    /// A cross-kernel RPC the operation depended on failed (timeout,
    /// partition, crashed peer); carries the transport's diagnosis.
    Rpc(RpcError),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::AlreadyExists(p) => write!(f, "name already exists: {p}"),
            FsError::NoDomain(p) => write!(f, "no server exports a domain for {p}"),
            FsError::BadStream(s) => write!(f, "bad stream reference: {s}"),
            FsError::BadMode(s) => write!(f, "operation violates open mode of {s}"),
            FsError::WrongKind(id) => write!(f, "operation not valid for {id}"),
            FsError::Rpc(e) => write!(f, "rpc failed: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<RpcError> for FsError {
    fn from(e: RpcError) -> Self {
        FsError::Rpc(e)
    }
}

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

/// Operation counters for the evaluation tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStats {
    /// Name lookups performed at servers.
    pub lookups: u64,
    /// Stream opens.
    pub opens: u64,
    /// Stream closes.
    pub closes: u64,
    /// Blocks fetched from servers into client caches.
    pub block_fetches: u64,
    /// Dirty blocks written back to servers.
    pub block_writebacks: u64,
    /// Consistency recalls (flush demanded from a previous writer).
    pub consistency_recalls: u64,
    /// Times caching was disabled by concurrent write-sharing.
    pub cache_disables: u64,
    /// Read/write operations that bypassed caching.
    pub uncached_ops: u64,
    /// Operations that paid a shadow-stream round trip for the offset.
    pub shadow_ops: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
    /// VM page-ins served.
    pub pageins: u64,
    /// VM page-outs served.
    pub pageouts: u64,
    /// Pseudo-device request/response round trips.
    pub pseudo_requests: u64,
    /// Opens that skipped the server lookup thanks to a client name cache.
    pub name_cache_hits: u64,
    /// First-contact prefix-table fetches for striped domains.
    pub shard_redirects: u64,
    /// Block fetches served by a read replica instead of the home server.
    pub replica_hits: u64,
    /// Replica copies dropped because a write-open bumped the version.
    pub replica_invalidates: u64,
}

/// One server daemon's load sample, for the evaluation tables. The
/// sharded service reports these per server instead of folding everything
/// into one aggregate, so the worst-loaded daemon is visible.
#[derive(Debug, Clone, Copy)]
pub struct ServerLoad {
    /// The machine the daemon runs on.
    pub host: HostId,
    /// Total CPU busy time.
    pub busy: SimDuration,
    /// Total time requests spent queued behind the busy CPU.
    pub queue_wait: SimDuration,
    /// Requests serviced by the CPU.
    pub requests: u64,
    /// Block touches served (memory-cache hits and misses).
    pub block_ops: u64,
    /// Block touches that went to disk.
    pub disk_reads: u64,
}

/// The shared, network-wide file system.
///
/// # Examples
///
/// ```
/// use sprite_fs::{FsConfig, OpenMode, SpriteFs, SpritePath};
/// use sprite_net::{CostModel, HostId, Transport};
/// use sprite_sim::SimTime;
///
/// # fn main() -> Result<(), sprite_fs::FsError> {
/// let mut net = Transport::new(CostModel::sun3(), 4);
/// let mut fs = SpriteFs::new(FsConfig::default(), 4);
/// fs.add_server(HostId::new(0), SpritePath::new("/"));
///
/// let client = HostId::new(1);
/// let t0 = SimTime::ZERO;
/// let (_, t1) = fs.create(&mut net, t0, client, SpritePath::new("/tmp/x"))?;
/// let (stream, t2) = fs.open(&mut net, t1, client, SpritePath::new("/tmp/x"), OpenMode::ReadWrite)?;
/// let t3 = fs.write(&mut net, t2, client, stream, b"hello sprite")?;
/// fs.seek(stream, 0)?;
/// let (data, _t4) = fs.read(&mut net, t3, client, stream, 12)?;
/// assert_eq!(data, b"hello sprite");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SpriteFs {
    shards: ShardMap,
    /// Dense per-host server table: `servers[h.index()]` is `Some` exactly
    /// when host `h` runs a file server. One bounds check per access.
    servers: Vec<Option<ServerState>>,
    clients: Vec<BlockCache>,
    name_caches: Vec<DetHashMap<SpritePath, FileId>>,
    /// Striped-domain prefixes each host has fetched the member table for
    /// (first contact pays one `fs-shard-redirect` round trip).
    shard_known: Vec<DetHashSet<SpritePath>>,
    replicas: ReplicaTable,
    streams: StreamTable,
    /// Dense file→server table indexed by the file's sequential id.
    file_home: Vec<Option<HostId>>,
    /// Shard-group index each file was created under (same indexing).
    file_group: Vec<Option<u16>>,
    next_file: u64,
    stats: FsStats,
    config: FsConfig,
}

impl SpriteFs {
    /// Creates a file system for a cluster of `hosts` machines with no
    /// servers yet; call [`SpriteFs::add_server`] before creating files.
    pub fn new(config: FsConfig, hosts: usize) -> Self {
        SpriteFs {
            shards: ShardMap::new(),
            servers: (0..hosts).map(|_| None).collect(),
            clients: (0..hosts)
                .map(|_| BlockCache::new(config.client_cache_blocks))
                .collect(),
            name_caches: vec![DetHashMap::default(); hosts],
            shard_known: vec![DetHashSet::default(); hosts],
            replicas: ReplicaTable::new(),
            streams: StreamTable::new(),
            file_home: Vec::new(),
            file_group: Vec::new(),
            next_file: 1,
            stats: FsStats::default(),
            config,
        }
    }

    /// Declares that `host` runs a file server exporting the subtree at
    /// `prefix`. Longest-prefix match routes names to domains; registering
    /// a second host under the *same* prefix turns the domain into a
    /// striped group whose names are spread across the members by hashing
    /// the path text (see [`crate::shard::ShardMap`]).
    pub fn add_server(&mut self, host: HostId, prefix: SpritePath) {
        let slot = &mut self.servers[host.index()];
        if slot.is_none() {
            *slot = Some(ServerState::new(host, self.config.server_cache_blocks));
        }
        self.shards.add(host, prefix);
    }

    /// Which server owns `path`: longest prefix picks the domain group,
    /// the path-text hash picks the member.
    pub fn resolve(&self, path: &SpritePath) -> FsResult<HostId> {
        self.shards
            .route(path)
            .map(|(_, h)| h)
            .ok_or_else(|| FsError::NoDomain(path.clone()))
    }

    /// The namespace partition table (diagnostics).
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// The widest server-group size — 1 means the namespace is unsharded.
    pub fn fs_shards(&self) -> usize {
        self.shards.max_group_size()
    }

    /// Operation counters so far.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Resets operation counters (measurement-phase boundary).
    pub fn reset_stats(&mut self) {
        self.stats = FsStats::default();
    }

    /// Read access to a server's state (diagnostics, invariant checks).
    pub fn server(&self, host: HostId) -> Option<&ServerState> {
        self.servers.get(host.index()).and_then(|s| s.as_ref())
    }

    /// Read access to a client cache.
    pub fn client_cache(&self, host: HostId) -> &BlockCache {
        &self.clients[host.index()]
    }

    /// Read access to the stream table.
    pub fn streams(&self) -> &StreamTable {
        &self.streams
    }

    /// Folds the file system's observable state into `d`: operation
    /// counters, the stream table (live streams in slot order plus slab
    /// occupancy), and each server's CPU horizon, stored-file count and
    /// disk reads, in host order.
    pub fn digest_into(&self, d: &mut StateDigest) {
        d.write_u64(self.stats.lookups);
        d.write_u64(self.stats.opens);
        d.write_u64(self.stats.closes);
        d.write_u64(self.stats.block_fetches);
        d.write_u64(self.stats.block_writebacks);
        d.write_u64(self.stats.consistency_recalls);
        d.write_u64(self.stats.cache_disables);
        d.write_u64(self.stats.uncached_ops);
        d.write_u64(self.stats.shadow_ops);
        d.write_u64(self.stats.bytes_read);
        d.write_u64(self.stats.bytes_written);
        d.write_u64(self.stats.pageins);
        d.write_u64(self.stats.pageouts);
        d.write_u64(self.stats.pseudo_requests);
        d.write_u64(self.stats.name_cache_hits);
        d.write_u64(self.stats.shard_redirects);
        d.write_u64(self.stats.replica_hits);
        d.write_u64(self.stats.replica_invalidates);
        d.write_u64(self.next_file);
        self.streams.digest_into(d);
        self.replicas.digest_into(d);
        for server in self.servers.iter().flatten() {
            d.write_usize(server.host.index());
            d.write_u64(server.cpu.busy_until().as_micros());
            d.write_usize(server.file_count());
            d.write_u64(server.disk_reads());
            d.write_u64(server.queue_wait().as_micros());
            d.write_u64(server.block_ops());
        }
    }

    /// Per-server load samples in host order: the sharded service breaks
    /// the old single-server contention story out per daemon.
    pub fn server_loads(&self) -> Vec<ServerLoad> {
        self.servers
            .iter()
            .flatten()
            .map(|s| ServerLoad {
                host: s.host,
                busy: s.cpu.busy_time(),
                queue_wait: s.queue_wait(),
                requests: s.cpu.requests(),
                block_ops: s.block_ops(),
                disk_reads: s.disk_reads(),
            })
            .collect()
    }

    /// Busy time of the worst-loaded server (the e05 saturation signal).
    pub fn server_busy_max(&self) -> SimDuration {
        self.servers
            .iter()
            .flatten()
            .map(|s| s.cpu.busy_time())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The server host storing `file`.
    pub fn home_of(&self, file: FileId) -> Option<HostId> {
        self.file_home.get(file.raw() as usize).copied().flatten()
    }

    // ----- internal helpers ------------------------------------------------

    fn srv(&self, host: HostId) -> &ServerState {
        self.servers[host.index()].as_ref().expect("known server")
    }

    fn srv_mut(&mut self, host: HostId) -> &mut ServerState {
        self.servers[host.index()].as_mut().expect("known server")
    }

    fn set_home(&mut self, file: FileId, server: HostId) {
        let i = file.raw() as usize;
        if self.file_home.len() <= i {
            self.file_home.resize(i + 1, None);
        }
        self.file_home[i] = Some(server);
    }

    fn clear_home(&mut self, file: FileId) {
        if let Some(slot) = self.file_home.get_mut(file.raw() as usize) {
            *slot = None;
        }
    }

    /// Charges one client→server service interaction at the op's canonical
    /// wire sizes: a local kernel call if the client *is* the server
    /// machine, otherwise a typed RPC whose service time queues on the
    /// server CPU. Remote charges surface the transport's [`RpcError`] as
    /// [`FsError::Rpc`]; local calls cannot fail.
    fn charge_typed(
        &mut self,
        net: &mut Transport,
        op: RpcOp,
        now: SimTime,
        client: HostId,
        server: HostId,
        extra: SimDuration,
    ) -> FsResult<SimTime> {
        let size = wire_size(op);
        self.charge_sized(
            net,
            op,
            now,
            client,
            server,
            size.request,
            size.reply,
            extra,
        )
    }

    /// Like [`SpriteFs::charge_typed`] but with caller-sized payloads, for
    /// ops that move variable amounts of data (block writes, page flushes).
    #[allow(clippy::too_many_arguments)]
    fn charge_sized(
        &mut self,
        net: &mut Transport,
        op: RpcOp,
        now: SimTime,
        client: HostId,
        server: HostId,
        req_bytes: u64,
        reply_bytes: u64,
        extra: SimDuration,
    ) -> FsResult<SimTime> {
        let srv = self.srv_mut(server);
        // Sampled at dispatch: how long this request sits behind earlier
        // ones (per-server contention, reported by `server_loads`).
        let wait = srv.cpu.wait_at(now);
        srv.note_queue_wait(wait);
        if client == server {
            let local = net.cost().local_kernel_call;
            Ok(srv
                .cpu
                .acquire(now + local, extra + net.cost().cache_block_op))
        } else {
            let d = net.send_sized(
                op,
                now,
                client,
                server,
                req_bytes,
                reply_bytes,
                extra,
                Some(&mut srv.cpu),
            )?;
            Ok(d.done)
        }
    }

    /// Flushes one dirty block to its server, charging transfer + service.
    /// If the write-back RPC fails, the block is re-marked dirty in the
    /// client's cache (its clean copy stayed resident), so the bytes remain
    /// scheduled for a future flush rather than silently lost.
    fn write_back_block(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        from: HostId,
        addr: BlockAddr,
        data: Vec<u8>,
    ) -> FsResult<SimTime> {
        let server = self.home_of(addr.file).expect("file has a home");
        let extra = net.cost().cache_block_op;
        let done = match self.charge_sized(
            net,
            RpcOp::FsBlockWrite,
            now,
            from,
            server,
            data.len() as u64 + CONTROL_BYTES,
            CONTROL_BYTES,
            extra,
        ) {
            Ok(done) => done,
            Err(e) => {
                self.clients[from.index()].mark_dirty(addr);
                return Err(e);
            }
        };
        let srv = self.srv_mut(server);
        srv.touch_block(addr.file, addr.block);
        if let Some(file) = srv.file_mut(addr.file) {
            file.write_at(addr.block * PAGE_SIZE, &data);
        }
        self.stats.block_writebacks += 1;
        Ok(done)
    }

    /// Recalls all dirty blocks of `file` from `host` (server-initiated
    /// flush). Returns completion time.
    fn recall_dirty(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        file: FileId,
    ) -> FsResult<SimTime> {
        let server = self.home_of(file).expect("file has a home");
        let dirty = self.clients[host.index()].take_dirty_blocks(file);
        if dirty.is_empty() {
            return Ok(now);
        }
        // The recall request itself.
        let mut t = if host == server {
            now
        } else {
            net.send(RpcOp::FsConsistency, now, server, host, None)?
                .done
        };
        for (addr, data) in dirty {
            t = self.write_back_block(net, t, host, addr, data)?;
        }
        self.stats.consistency_recalls += 1;
        Ok(t)
    }

    /// Drops every cached block of `file` on `host`, writing dirty ones
    /// back first (caching got disabled).
    fn invalidate_on_host(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        file: FileId,
    ) -> FsResult<SimTime> {
        let dirty = self.clients[host.index()].invalidate_file(file);
        let mut t = now;
        for (addr, data) in dirty {
            t = self.write_back_block(net, t, host, addr, data)?;
        }
        Ok(t)
    }

    /// Routes `path` to its owning server, charging the first-contact
    /// `fs-shard-redirect` round trip when `host` has never talked to this
    /// striped domain before (a client learns the member table from the
    /// group's anchor server once, then routes directly). Group members
    /// already hold the table and never pay the redirect.
    fn route_charged(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: &SpritePath,
    ) -> FsResult<(u16, HostId, SimTime)> {
        let (gi, prefix, anchor, owner, is_member, multi) = {
            let (gi, g) = self
                .shards
                .group_of(path)
                .ok_or_else(|| FsError::NoDomain(path.clone()))?;
            (
                gi as u16,
                g.prefix.clone(),
                g.servers[0],
                g.owner_of(path),
                g.servers.contains(&host),
                g.servers.len() > 1,
            )
        };
        let mut t = now;
        if multi && !is_member && !self.shard_known[host.index()].contains(&prefix) {
            if host != anchor {
                t = self.charge_typed(
                    net,
                    RpcOp::FsShardRedirect,
                    t,
                    host,
                    anchor,
                    SimDuration::ZERO,
                )?;
            }
            self.shard_known[host.index()].insert(prefix);
            self.stats.shard_redirects += 1;
        }
        Ok((gi, owner, t))
    }

    /// The shard-group peers of `home` for `file`, or empty when the file
    /// lives in a single-server domain.
    fn group_peers(&self, file: FileId, home: HostId) -> Vec<HostId> {
        self.file_group
            .get(file.raw() as usize)
            .copied()
            .flatten()
            .and_then(|gi| self.shards.group(gi as usize))
            .map(|g| g.servers.iter().copied().filter(|&s| s != home).collect())
            .unwrap_or_default()
    }

    /// Pushes read replicas of a hot file to its group peers: one
    /// `fs-replica-read` pull per peer, sized to the file, served by the
    /// home CPU. A peer whose pull fails is simply left out; the read that
    /// triggered the install never fails because of it. Only regular,
    /// cacheable files with no open writers are eligible — anything else
    /// and a peer copy could go stale outside the open/close protocol.
    fn try_install_replicas(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        file: FileId,
        home: HostId,
        peers: Vec<HostId>,
    ) -> SimTime {
        let (eligible, version, size) = match self.srv(home).file(file) {
            Some(f) => (
                matches!(f.kind, FileKind::Regular)
                    && f.cacheable
                    && f.writer_hosts().next().is_none(),
                f.version,
                f.logical_size(),
            ),
            None => (false, 0, 0),
        };
        if !eligible {
            return now;
        }
        let blocks = size.div_ceil(PAGE_SIZE).max(1);
        let extra = net.cost().cache_block_op;
        let mut t = now;
        let mut installed = Vec::new();
        for peer in peers {
            if let Ok(done) = self.charge_sized(
                net,
                RpcOp::FsReplicaRead,
                t,
                peer,
                home,
                CONTROL_BYTES,
                size + CONTROL_BYTES,
                extra,
            ) {
                t = done;
                // The copy lands in the peer's memory cache: warm it so
                // replica serves reflect residency, not phantom misses.
                let srv = self.srv_mut(peer);
                for b in 0..blocks {
                    srv.touch_block(file, b);
                }
                installed.push(peer);
            }
        }
        if !installed.is_empty() {
            // The home server joins the serve rotation: it already holds
            // the authoritative copy, and leaving it out would swap the
            // read load onto the peers instead of spreading it.
            installed.push(home);
            self.replicas.install(file, installed, version);
        }
        t
    }

    /// Drops `file`'s replica set, notifying each peer with one
    /// `fs-replica-invalidate` (home-initiated, like the consistency
    /// notices). The set is gone before any notice is sent, so even a
    /// notice that fails leaves no path to a stale replica read.
    fn invalidate_replicas(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        file: FileId,
    ) -> FsResult<SimTime> {
        let Some(peers) = self.replicas.drop_set(file) else {
            return Ok(now);
        };
        let home = self.home_of(file).expect("replicated file has a home");
        let mut t = now;
        for peer in peers {
            // The home server is in the serve rotation but holds the
            // authoritative copy; only actual peers get a notice.
            if peer != home {
                self.stats.replica_invalidates += 1;
                t = net
                    .send(RpcOp::FsReplicaInvalidate, t, home, peer, None)?
                    .done;
            }
        }
        Ok(t)
    }

    // ----- namespace operations -------------------------------------------

    /// Creates a regular file at `path`.
    pub fn create(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: SpritePath,
    ) -> FsResult<(FileId, SimTime)> {
        self.create_kind(net, now, host, path, FileKind::Regular)
    }

    /// Creates a backing (swap) file for the VM system.
    pub fn create_backing(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: SpritePath,
    ) -> FsResult<(FileId, SimTime)> {
        self.create_kind(net, now, host, path, FileKind::Backing)
    }

    /// Creates a pseudo-device served by a user process on `server_host`.
    pub fn create_pseudo_device(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: SpritePath,
        server_process_host: HostId,
    ) -> FsResult<(FileId, SimTime)> {
        self.create_kind(
            net,
            now,
            host,
            path,
            FileKind::Pseudo {
                server_process_host,
            },
        )
    }

    fn create_kind(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: SpritePath,
        kind: FileKind,
    ) -> FsResult<(FileId, SimTime)> {
        let (group, server, t) = self.route_charged(net, now, host, &path)?;
        let lookup = net.cost().name_lookup_component * path.depth();
        let done = self.charge_typed(net, RpcOp::FsLookup, t, host, server, lookup)?;
        self.stats.lookups += 1;
        let id = FileId::new(self.next_file);
        let srv = self.srv_mut(server);
        match srv.create(path.clone(), id, kind) {
            Some(id) => {
                self.next_file += 1;
                self.set_home(id, server);
                let i = id.raw() as usize;
                if self.file_group.len() <= i {
                    self.file_group.resize(i + 1, None);
                }
                self.file_group[i] = Some(group);
                Ok((id, done))
            }
            None => Err(FsError::AlreadyExists(path)),
        }
    }

    /// Removes a name. Fails if the file does not exist.
    ///
    /// Divergence from UNIX: streams still open on the file read end-of-file
    /// afterwards rather than retaining the old contents until close.
    /// Sprite's servers kept unlinked-but-open files alive; the simulation
    /// truncates instead, which no workload in the evaluation exercises
    /// (pinned by `unlink_while_open_reads_eof`).
    pub fn unlink(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: &SpritePath,
    ) -> FsResult<SimTime> {
        let (_, server, t) = self.route_charged(net, now, host, path)?;
        let lookup = net.cost().name_lookup_component * path.depth();
        let mut done = self.charge_typed(net, RpcOp::FsLookup, t, host, server, lookup)?;
        self.stats.lookups += 1;
        let id = match self.srv(server).lookup(path) {
            Some(id) => id,
            None => return Err(FsError::NotFound(path.clone())),
        };
        // Peer replica copies of the dying file must go first.
        done = self.invalidate_replicas(net, done, id)?;
        self.replicas.forget(id);
        self.srv_mut(server).unlink(path);
        self.clear_home(id);
        if let Some(slot) = self.file_group.get_mut(id.raw() as usize) {
            *slot = None;
        }
        self.clients[host.index()].invalidate_file(id);
        for cache in &mut self.name_caches {
            cache.remove(path);
        }
        Ok(done)
    }

    // ----- stream operations ------------------------------------------------

    /// Opens `path` from `host`, running the consistency protocol.
    pub fn open(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        path: SpritePath,
        mode: OpenMode,
    ) -> FsResult<(StreamId, SimTime)> {
        let (_, server, t0) = self.route_charged(net, now, host, &path)?;
        let cached_name =
            self.config.client_name_caching && self.name_caches[host.index()].contains_key(&path);
        let lookup = if cached_name {
            self.stats.name_cache_hits += 1;
            SimDuration::ZERO
        } else {
            self.stats.lookups += 1;
            net.cost().name_lookup_component * path.depth()
        };
        let mut t = self.charge_typed(net, RpcOp::FsOpen, t0, host, server, lookup)?;
        let srv = self.srv_mut(server);
        let Some(id) = srv.lookup(&path) else {
            self.name_caches[host.index()].remove(&path);
            return Err(FsError::NotFound(path));
        };
        let kind = srv.file(id).expect("looked-up file").kind;
        let actions = srv.open(id, host, mode);
        if mode.writes() {
            // The version just bumped: peer read replicas are now stale and
            // must be dropped before the open completes.
            t = self.invalidate_replicas(net, t, id)?;
        }
        for flush_host in &actions.flush_from {
            t = self.recall_dirty(net, t, *flush_host, id)?;
        }
        if !actions.invalidate_on.is_empty() {
            self.stats.cache_disables += 1;
            for inv_host in &actions.invalidate_on {
                // Notify the host (server-initiated) then drop its blocks.
                if *inv_host != server {
                    t = net
                        .send(RpcOp::FsConsistency, t, server, *inv_host, None)?
                        .done;
                }
                t = self.invalidate_on_host(net, t, *inv_host, id)?;
            }
        }
        // Bring the opener's cache in line with the (possibly bumped)
        // version: still-current copies are re-stamped. Stale copies need
        // no action — block lookups are version-keyed, so a copy stamped
        // with an older version simply misses and refetches [NWO88]. (An
        // eager drop here would throw away every cached block of a file
        // whose *last* writer was another host, even when the opener's
        // copies were fetched after that write and are perfectly current.)
        if actions.cacheable
            && !actions.invalidate_on.contains(&host)
            && actions.opener_cache_current
        {
            let version = self.server_file_version(server, id);
            self.clients[host.index()].revalidate_file(id, version);
        }
        if self.config.client_name_caching {
            self.name_caches[host.index()].insert(path, id);
        }
        let stream = self.streams.open(id, server, kind, mode, host);
        self.stats.opens += 1;
        Ok((stream, t))
    }

    /// Duplicates a stream reference on the same host (`fork`, `dup`). The
    /// duplicate shares the access position, as UNIX semantics demand.
    pub fn dup(&mut self, stream: StreamId, host: HostId) -> FsResult<()> {
        let s = self.streams.get(stream).ok_or(FsError::BadStream(stream))?;
        if s.refs_on(host) == 0 {
            return Err(FsError::BadStream(stream));
        }
        self.streams.add_ref(stream, host);
        Ok(())
    }

    /// Repositions a stream (lseek). Purely local.
    pub fn seek(&mut self, stream: StreamId, offset: u64) -> FsResult<()> {
        self.streams
            .get_mut(stream)
            .ok_or(FsError::BadStream(stream))?
            .set_offset(offset);
        Ok(())
    }

    /// Reads up to `len` bytes from `stream` at its access position.
    pub fn read(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        stream: StreamId,
        len: u64,
    ) -> FsResult<(Vec<u8>, SimTime)> {
        let (file, server, mode, kind, shadowed, offset) = self.stream_info(stream, host)?;
        if !mode.reads() {
            return Err(FsError::BadMode(stream));
        }
        if matches!(kind, FileKind::Pseudo { .. }) {
            return Err(FsError::WrongKind(file));
        }
        let mut t = now + net.cost().local_kernel_call;
        if shadowed {
            // The access position lives at the I/O server.
            t = self.charge_typed(
                net,
                RpcOp::FsShadowStream,
                t,
                host,
                server,
                SimDuration::ZERO,
            )?;
            self.stats.shadow_ops += 1;
        }
        let cacheable = self.server_file_cacheable(server, file);
        let version = self.server_file_version(server, file);
        let logical = self.server_file_len(server, file);
        let end = (offset + len).min(logical);
        let mut data = Vec::with_capacity(len as usize);
        let mut pos = offset;
        while pos < end {
            let block = pos / PAGE_SIZE;
            let block_start = block * PAGE_SIZE;
            let take_from = (pos - block_start) as usize;
            let take_to = ((end - block_start).min(PAGE_SIZE)) as usize;
            let bytes = if cacheable {
                let addr = BlockAddr { file, block };
                match self.clients[host.index()].lookup(addr, version) {
                    Some(b) => b,
                    None => {
                        t = self.fetch_block(net, t, host, server, file, block, version)?;
                        self.clients[host.index()]
                            .lookup(addr, version)
                            .expect("block just inserted")
                    }
                }
            } else {
                self.stats.uncached_ops += 1;
                let extra = net.cost().cache_block_op + self.disk_penalty(net, server, file, block);
                t = self.charge_typed(net, RpcOp::FsBlockRead, t, host, server, extra)?;
                self.server_block(server, file, block)
            };
            let have = bytes.len().min(take_to);
            if take_from < have {
                data.extend_from_slice(&bytes[take_from..have]);
            }
            // Zero-fill sparse holes within logical size.
            let expected = take_to.saturating_sub(take_from.min(take_to));
            while data.len() < (pos - offset) as usize + expected {
                data.push(0);
            }
            pos = block_start + take_to as u64;
        }
        let n = data.len() as u64;
        if let Some(s) = self.streams.get_mut(stream) {
            s.advance(n);
        }
        self.stats.bytes_read += n;
        Ok((data, t))
    }

    /// Writes `bytes` at the stream's access position.
    pub fn write(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        stream: StreamId,
        bytes: &[u8],
    ) -> FsResult<SimTime> {
        let (file, server, mode, kind, shadowed, offset) = self.stream_info(stream, host)?;
        if !mode.writes() {
            return Err(FsError::BadMode(stream));
        }
        if matches!(kind, FileKind::Pseudo { .. }) {
            return Err(FsError::WrongKind(file));
        }
        let mut t = now + net.cost().local_kernel_call;
        if shadowed {
            t = self.charge_typed(
                net,
                RpcOp::FsShadowStream,
                t,
                host,
                server,
                SimDuration::ZERO,
            )?;
            self.stats.shadow_ops += 1;
        }
        let cacheable = self.server_file_cacheable(server, file);
        let version = self.server_file_version(server, file);
        let end = offset + bytes.len() as u64;
        let mut pos = offset;
        while pos < end {
            let block = pos / PAGE_SIZE;
            let block_start = block * PAGE_SIZE;
            let within = (pos - block_start) as usize;
            let upto = ((end - block_start).min(PAGE_SIZE)) as usize;
            let chunk = &bytes[(pos - offset) as usize..(pos - offset) as usize + (upto - within)];
            if cacheable {
                let addr = BlockAddr { file, block };
                // Read-modify-write for partial blocks.
                let mut current = self.clients[host.index()]
                    .lookup(addr, version)
                    .unwrap_or_else(|| self.server_block(server, file, block));
                if current.len() < upto {
                    current.resize(upto, 0);
                }
                current[within..upto].copy_from_slice(chunk);
                if let Some((evicted, data)) =
                    self.clients[host.index()].insert_dirty(addr, version, current)
                {
                    t = self.write_back_block(net, t, host, evicted, data)?;
                }
                // Metadata-only size update rides along with the next RPC in
                // the real system; the logical size must grow now so reads
                // see the right end of file.
                self.note_size(server, file, block_start + upto as u64);
            } else {
                self.stats.uncached_ops += 1;
                let extra = net.cost().cache_block_op;
                t = self.charge_sized(
                    net,
                    RpcOp::FsBlockWrite,
                    t,
                    host,
                    server,
                    chunk.len() as u64 + CONTROL_BYTES,
                    CONTROL_BYTES,
                    extra,
                )?;
                let srv = self.srv_mut(server);
                srv.touch_block(file, block);
                if let Some(f) = srv.file_mut(file) {
                    f.write_at(block_start + within as u64, chunk);
                }
            }
            pos = block_start + upto as u64;
        }
        let n = bytes.len() as u64;
        if let Some(s) = self.streams.get_mut(stream) {
            s.advance(n);
        }
        self.stats.bytes_written += n;
        Ok(t)
    }

    /// Forces a host's dirty blocks for the stream's file to the server.
    pub fn fsync(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        stream: StreamId,
    ) -> FsResult<SimTime> {
        let (file, _, _, _, _, _) = self.stream_info(stream, host)?;
        let dirty = self.clients[host.index()].take_dirty_blocks(file);
        let mut t = now;
        for (addr, data) in dirty {
            t = self.write_back_block(net, t, host, addr, data)?;
        }
        Ok(t)
    }

    /// Closes one reference to `stream` held by `host`.
    pub fn close(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        stream: StreamId,
    ) -> FsResult<SimTime> {
        let (file, server, mode, _, _, _) = self.stream_info(stream, host)?;
        let mut t = now + net.cost().local_kernel_call;
        match self.streams.release(stream, host) {
            ReleaseOutcome::UnknownStream | ReleaseOutcome::NotAHolder => {
                return Err(FsError::BadStream(stream))
            }
            ReleaseOutcome::StreamClosed => {
                if self.config.flush_on_close {
                    let dirty = self.clients[host.index()].take_dirty_blocks(file);
                    for (addr, data) in dirty {
                        t = self.write_back_block(net, t, host, addr, data)?;
                    }
                }
                t = self.charge_typed(net, RpcOp::FsClose, t, host, server, SimDuration::ZERO)?;
                let srv = self.srv_mut(server);
                srv.close(file, host, mode);
            }
            ReleaseOutcome::StillOpen {
                host_dropped_file_ref,
                ..
            } => {
                if host_dropped_file_ref {
                    if self.config.flush_on_close {
                        let dirty = self.clients[host.index()].take_dirty_blocks(file);
                        for (addr, data) in dirty {
                            t = self.write_back_block(net, t, host, addr, data)?;
                        }
                    }
                    t =
                        self.charge_typed(net, RpcOp::FsClose, t, host, server, SimDuration::ZERO)?;
                    let srv = self.srv_mut(server);
                    srv.close(file, host, mode);
                }
            }
        }
        self.stats.closes += 1;
        Ok(t)
    }

    // ----- migration support -------------------------------------------------

    /// Moves `nrefs` references of `stream` from `from` to `to` as part of
    /// process migration (Ch. 5.3): flushes `from`'s dirty blocks for the
    /// file, atomically updates the I/O server's open records, and reports
    /// whether the stream is now shadowed.
    pub fn migrate_stream(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        stream: StreamId,
        from: HostId,
        to: HostId,
        nrefs: u32,
    ) -> FsResult<(MoveOutcome, SimTime)> {
        let (file, server, mode, _, _, _) = self.stream_info(stream, from)?;
        // 1. Flush the source's dirty blocks so the target (and server) see
        //    current data.
        let dirty = self.clients[from.index()].take_dirty_blocks(file);
        let mut t = now;
        for (addr, data) in dirty {
            t = self.write_back_block(net, t, from, addr, data)?;
        }
        // 2. The arriving host may hold stale cached blocks for this file
        //    from an earlier visit; migration acts like an open for
        //    consistency purposes, so those copies are dropped (dirty ones
        //    written back first) and reads on the target refetch current
        //    data from the server.
        let stale_dirty = self.clients[to.index()].invalidate_file(file);
        for (addr, data) in stale_dirty {
            t = self.write_back_block(net, t, to, addr, data)?;
        }
        // 3. One RPC to the I/O server to move the open records; the server
        //    is the single synchronization point, which is what made
        //    Sprite's stream migration safe in the presence of sharing.
        let block_op = net.cost().cache_block_op;
        t = self.charge_typed(net, RpcOp::StreamTransfer, t, from, server, block_op)?;
        let outcome = self
            .streams
            .move_refs(stream, from, to, nrefs)
            .ok_or(FsError::BadStream(stream))?;
        let srv = self.srv_mut(server);
        if outcome.from_dropped_file_ref {
            srv.move_open(file, from, to, mode);
        } else {
            srv.open_for_migration(file, to, mode);
        }
        // 4. Concurrent write-sharing created by the move disables caching.
        let (cacheable, holders) = {
            let f = srv.file(file).expect("file exists");
            (f.cacheable, f.open_hosts().collect::<Vec<_>>())
        };
        if mode.writes() {
            // A migrating write stream is a write-open for consistency
            // purposes; peer replicas version-miss and must be dropped.
            t = self.invalidate_replicas(net, t, file)?;
        }
        if !cacheable {
            self.stats.cache_disables += 1;
            for h in holders {
                t = self.invalidate_on_host(net, t, h, file)?;
            }
        }
        Ok((outcome, t))
    }

    // ----- paging (backing files) ---------------------------------------------

    /// Writes one page to a backing file (dirty-page flush during normal
    /// paging or migration). Bypasses the client cache.
    pub fn page_out(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        file: FileId,
        page: u64,
        bytes: &[u8],
    ) -> FsResult<SimTime> {
        let home = self.backing_server(file)?;
        let io = self.paging_server(file, page).unwrap_or(home);
        let extra = net.cost().cache_block_op;
        let mut t = self.charge_sized(
            net,
            RpcOp::VmPageFlush,
            now,
            host,
            io,
            bytes.len() as u64 + CONTROL_BYTES,
            CONTROL_BYTES,
            extra,
        )?;
        // Paging writes bypass the open/close protocol, so any replica set
        // on the file (possible for a regular file that gets paged) is
        // dropped here rather than at a write-open.
        t = self.invalidate_replicas(net, t, file)?;
        self.srv_mut(io).touch_block(file, page);
        self.srv_mut(home)
            .file_mut(file)
            .expect("backing file exists")
            .write_at(page * PAGE_SIZE, bytes);
        self.stats.pageouts += 1;
        Ok(t)
    }

    /// Reads one page from a backing file (demand page-in).
    pub fn page_in(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        file: FileId,
        page: u64,
    ) -> FsResult<(Vec<u8>, SimTime)> {
        let home = self.backing_server(file)?;
        let io = self.paging_server(file, page).unwrap_or(home);
        let extra = net.cost().cache_block_op + self.disk_penalty(net, io, file, page);
        let t = self.charge_typed(net, RpcOp::VmPageFetch, now, host, io, extra)?;
        let srv = self.srv_mut(home);
        let mut data = srv
            .file(file)
            .expect("backing file exists")
            .read_block(page);
        data.resize(PAGE_SIZE as usize, 0);
        self.stats.pageins += 1;
        Ok((data, t))
    }

    fn backing_server(&self, file: FileId) -> FsResult<HostId> {
        let server = self.home_of(file).ok_or(FsError::WrongKind(file))?;
        let kind = self
            .srv(server)
            .file(file)
            .ok_or(FsError::WrongKind(file))?
            .kind;
        match kind {
            FileKind::Backing | FileKind::Regular => Ok(server),
            FileKind::Pseudo { .. } => Err(FsError::WrongKind(file)),
        }
    }

    /// For a backing file in a striped domain, the group member whose
    /// disk and CPU serve `page`: pages round-robin across the group by
    /// `(file, page)`, so one large swap file saturates N spindles instead
    /// of one. Returns `None` in single-server domains. The home server
    /// keeps the authoritative byte image; only service is striped.
    fn paging_server(&self, file: FileId, page: u64) -> Option<HostId> {
        let gi = self
            .file_group
            .get(file.raw() as usize)
            .copied()
            .flatten()?;
        let g = self.shards.group(gi as usize)?;
        if g.servers.len() < 2 {
            return None;
        }
        let n = g.servers.len() as u64;
        Some(g.servers[(file.raw().wrapping_add(page) % n) as usize])
    }

    // ----- pseudo-devices -------------------------------------------------------

    /// Performs one request/response round trip with the user-level server
    /// behind a pseudo-device stream \[WO88\]. `service` is the server
    /// process's think time.
    #[allow(clippy::too_many_arguments)]
    pub fn pseudo_request(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        stream: StreamId,
        req_bytes: u64,
        reply_bytes: u64,
        service: SimDuration,
    ) -> FsResult<SimTime> {
        let (file, _, _, kind, _, _) = self.stream_info(stream, host)?;
        let FileKind::Pseudo {
            server_process_host,
        } = kind
        else {
            return Err(FsError::WrongKind(file));
        };
        self.stats.pseudo_requests += 1;
        let cost = net.cost();
        if server_process_host == host {
            // Local rendezvous: two kernel crossings and two context
            // switches into and out of the server process.
            Ok(now + cost.local_kernel_call * 2 + cost.context_switch * 2 + service)
        } else {
            let switch = cost.context_switch * 2;
            let done = net
                .send_sized(
                    RpcOp::FsPseudo,
                    now,
                    host,
                    server_process_host,
                    req_bytes,
                    reply_bytes,
                    service + switch,
                    None,
                )?
                .done;
            Ok(done)
        }
    }

    // ----- small internal accessors ----------------------------------------

    #[allow(clippy::type_complexity)]
    fn stream_info(
        &self,
        stream: StreamId,
        host: HostId,
    ) -> FsResult<(FileId, HostId, OpenMode, FileKind, bool, u64)> {
        let s = self.streams.get(stream).ok_or(FsError::BadStream(stream))?;
        if s.refs_on(host) == 0 {
            return Err(FsError::BadStream(stream));
        }
        Ok((
            s.file,
            s.server,
            s.mode,
            s.kind,
            s.is_shadowed(),
            s.offset(),
        ))
    }

    fn server_file_version(&self, server: HostId, file: FileId) -> u64 {
        self.srv(server).file(file).map(|f| f.version).unwrap_or(0)
    }

    fn server_file_cacheable(&self, server: HostId, file: FileId) -> bool {
        self.srv(server)
            .file(file)
            .map(|f| f.cacheable)
            .unwrap_or(false)
    }

    fn server_file_len(&self, server: HostId, file: FileId) -> u64 {
        self.srv(server)
            .file(file)
            .map(|f| f.logical_size())
            .unwrap_or(0)
    }

    fn server_block(&self, server: HostId, file: FileId, block: u64) -> Vec<u8> {
        self.srv(server)
            .file(file)
            .map(|f| f.read_block(block))
            .unwrap_or_default()
    }

    fn note_size(&mut self, server: HostId, file: FileId, end: u64) {
        if let Some(f) = self.servers[server.index()]
            .as_mut()
            .and_then(|s| s.file_mut(file))
        {
            f.note_logical_size(end);
        }
    }

    fn disk_penalty(
        &mut self,
        net: &Transport,
        server: HostId,
        file: FileId,
        block: u64,
    ) -> SimDuration {
        let srv = self.srv_mut(server);
        if srv.touch_block(file, block) {
            SimDuration::ZERO
        } else {
            net.cost().disk_access
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fetch_block(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        host: HostId,
        server: HostId,
        file: FileId,
        block: u64,
        version: u64,
    ) -> FsResult<SimTime> {
        // A hot file with a live replica set is served by a group peer
        // chosen from the reading host's identity, spreading the read load
        // across the striped domain. Replica sets only exist between an
        // install and the next write-open (which drops them), so a peer
        // serve is current by construction; bytes still come from the home
        // server's authoritative copy.
        let serve_from = match self.replicas.set(file) {
            Some(set) if host != server => set.servers[host.index() % set.servers.len()],
            _ => server,
        };
        let t = if serve_from != server {
            self.stats.replica_hits += 1;
            let extra = net.cost().cache_block_op + self.disk_penalty(net, serve_from, file, block);
            self.charge_typed(net, RpcOp::FsReplicaRead, now, host, serve_from, extra)?
        } else {
            let extra = net.cost().cache_block_op + self.disk_penalty(net, server, file, block);
            let mut t = self.charge_typed(net, RpcOp::FsBlockRead, now, host, server, extra)?;
            if host != server {
                let peers = self.group_peers(file, server);
                if !peers.is_empty() && self.replicas.note_fetch(file, host) {
                    t = self.try_install_replicas(net, t, file, server, peers);
                }
            }
            t
        };
        let mut data = self.server_block(server, file, block);
        if data.is_empty() {
            // Sparse or unwritten region: cache a zero block so the entry
            // exists (short tail blocks stay short).
            data = Vec::new();
        }
        let addr = BlockAddr { file, block };
        if let Some((evicted, dirty)) = self.clients[host.index()].insert_clean(addr, version, data)
        {
            let t2 = self.write_back_block(net, t, host, evicted, dirty)?;
            self.stats.block_fetches += 1;
            return Ok(t2);
        }
        self.stats.block_fetches += 1;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_net::CostModel;

    fn setup(hosts: usize) -> (Transport, SpriteFs) {
        let net = Transport::new(CostModel::sun3(), hosts);
        let mut fs = SpriteFs::new(FsConfig::default(), hosts);
        fs.add_server(HostId::new(0), SpritePath::new("/"));
        (net, fs)
    }

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn create_open_write_read_round_trip() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        let (_, t1) = fs
            .create(&mut net, t0, h(1), SpritePath::new("/a"))
            .unwrap();
        let (s, t2) = fs
            .open(
                &mut net,
                t1,
                h(1),
                SpritePath::new("/a"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let t3 = fs.write(&mut net, t2, h(1), s, &payload).unwrap();
        fs.seek(s, 0).unwrap();
        let (back, t4) = fs
            .read(&mut net, t3, h(1), s, payload.len() as u64)
            .unwrap();
        assert_eq!(back, payload);
        assert!(t4 > t0);
        fs.close(&mut net, t4, h(1), s).unwrap();
        // After close-with-flush the server holds the authoritative bytes.
        let file = fs.server(h(0)).unwrap();
        let id = fs.streams();
        assert!(id.is_empty());
        let stored = file
            .file(FileId::new(1))
            .unwrap()
            .read_at(0, payload.len() as u64);
        assert_eq!(stored, payload);
    }

    #[test]
    fn second_host_sees_writers_data_via_recall() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        let (id, t1) = fs
            .create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s1, t2) = fs
            .open(&mut net, t1, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t3 = fs
            .write(&mut net, t2, h(1), s1, b"written by host1")
            .unwrap();
        let t4 = fs.close(&mut net, t3, h(1), s1).unwrap();
        // Leave a dirty footprint: re-open and write without closing.
        let (s2, t5) = fs
            .open(&mut net, t4, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t6 = fs.write(&mut net, t5, h(1), s2, b"WRITTEN").unwrap();
        assert!(fs.client_cache(h(1)).dirty_block_count(id) > 0);
        let t7 = fs.close(&mut net, t6, h(1), s2).unwrap();
        // Host 2 opens for read; any remaining dirty data must be recalled.
        let (s3, t8) = fs
            .open(&mut net, t7, h(2), SpritePath::new("/f"), OpenMode::Read)
            .unwrap();
        let (data, _) = fs.read(&mut net, t8, h(2), s3, 16).unwrap();
        assert_eq!(&data, b"WRITTEN by host1");
        assert_eq!(fs.client_cache(h(1)).dirty_block_count(id), 0);
    }

    #[test]
    fn recall_happens_when_writer_still_has_file_open() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s1, t1) = fs
            .open(&mut net, t0, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s1, b"dirty").unwrap();
        // Writer has NOT closed. A reader on another host forces concurrent
        // sharing: caching disabled, dirty data flushed.
        let (s2, t3) = fs
            .open(&mut net, t2, h(2), SpritePath::new("/f"), OpenMode::Read)
            .unwrap();
        assert!(fs.stats().cache_disables >= 1);
        let (data, _) = fs.read(&mut net, t3, h(2), s2, 5).unwrap();
        assert_eq!(&data, b"dirty");
        // Writer's further writes go through to the server immediately.
        let t4 = fs.write(&mut net, t3, h(1), s1, b" more").unwrap();
        assert!(fs.stats().uncached_ops > 0);
        fs.seek(s2, 0).unwrap();
        let (data2, _) = fs.read(&mut net, t4, h(2), s2, 10).unwrap();
        assert_eq!(&data2, b"dirty more");
    }

    #[test]
    fn shadowed_stream_pays_server_round_trip() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/f"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        fs.dup(s, h(1)).unwrap(); // forked child shares the stream
        let t2 = fs.write(&mut net, t1, h(1), s, b"0123456789").unwrap();
        // One ref migrates to host 2: stream becomes shadowed.
        let (outcome, t3) = fs.migrate_stream(&mut net, t2, s, h(1), h(2), 1).unwrap();
        assert!(outcome.shadowed);
        let before = fs.stats().shadow_ops;
        fs.seek(s, 0).unwrap();
        let (data, _) = fs.read(&mut net, t3, h(2), s, 4).unwrap();
        assert_eq!(&data, b"0123");
        assert_eq!(fs.stats().shadow_ops, before + 1);
        // The shared access position is visible from the home host too.
        let (data2, _) = fs.read(&mut net, t3, h(1), s, 3).unwrap();
        assert_eq!(&data2, b"456");
    }

    #[test]
    fn migrating_sole_reference_does_not_shadow() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(&mut net, t0, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, b"data").unwrap();
        let (outcome, t3) = fs.migrate_stream(&mut net, t2, s, h(1), h(2), 1).unwrap();
        assert!(!outcome.shadowed);
        // Writes continue transparently from the new host.
        let t4 = fs.write(&mut net, t3, h(2), s, b"more").unwrap();
        assert!(t4 > t3);
        assert_eq!(fs.streams().get(s).unwrap().offset(), 8);
    }

    #[test]
    fn migrate_stream_flushes_source_dirty_blocks() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        let (id, _) = fs
            .create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(&mut net, t0, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, &[7u8; 20_000]).unwrap();
        assert!(fs.client_cache(h(1)).dirty_block_count(id) > 0);
        let (_, _t3) = fs.migrate_stream(&mut net, t2, s, h(1), h(2), 1).unwrap();
        assert_eq!(fs.client_cache(h(1)).dirty_block_count(id), 0);
        let server_data = fs
            .server(h(0))
            .unwrap()
            .file(id)
            .unwrap()
            .read_at(0, 20_000);
        assert_eq!(server_data, vec![7u8; 20_000]);
    }

    #[test]
    fn paging_round_trip() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        let (swap, t1) = fs
            .create_backing(&mut net, t0, h(1), SpritePath::new("/swap/p1"))
            .unwrap();
        let page = vec![0xabu8; PAGE_SIZE as usize];
        let t2 = fs.page_out(&mut net, t1, h(1), swap, 3, &page).unwrap();
        let (back, t3) = fs.page_in(&mut net, t2, h(1), swap, 3).unwrap();
        assert_eq!(back, page);
        assert!(t3 > t2);
        let (zeros, _) = fs.page_in(&mut net, t3, h(1), swap, 0).unwrap();
        assert_eq!(zeros, vec![0u8; PAGE_SIZE as usize]);
        assert_eq!(fs.stats().pageouts, 1);
        assert_eq!(fs.stats().pageins, 2);
    }

    #[test]
    fn pseudo_device_round_trips() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        fs.create_pseudo_device(&mut net, t0, h(1), SpritePath::new("/dev/migd"), h(0))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/dev/migd"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let t2 = fs
            .pseudo_request(
                &mut net,
                t1,
                h(1),
                s,
                128,
                128,
                SimDuration::from_micros(200),
            )
            .unwrap();
        assert!(t2.elapsed_since(t1) >= net.cost().small_rpc_round_trip());
        // Reads and writes are meaningless on pseudo-devices.
        assert!(matches!(
            fs.read(&mut net, t2, h(1), s, 4),
            Err(FsError::WrongKind(_))
        ));
        assert_eq!(fs.stats().pseudo_requests, 1);
    }

    #[test]
    fn local_pseudo_request_is_cheaper() {
        let (mut net, mut fs) = setup(3);
        let t0 = SimTime::ZERO;
        fs.create_pseudo_device(&mut net, t0, h(1), SpritePath::new("/dev/d"), h(1))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/dev/d"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let local = fs
            .pseudo_request(&mut net, t1, h(1), s, 64, 64, SimDuration::ZERO)
            .unwrap()
            .elapsed_since(t1);
        assert!(local < net.cost().small_rpc_round_trip());
    }

    #[test]
    fn deeper_paths_cost_more_to_open() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/a"))
            .unwrap();
        fs.create(&mut net, t0, h(1), SpritePath::new("/x/y/z/w/deep"))
            .unwrap();
        let shallow = {
            let (s, t) = fs
                .open(&mut net, t0, h(1), SpritePath::new("/a"), OpenMode::Read)
                .unwrap();
            fs.close(&mut net, t, h(1), s).unwrap();
            t.elapsed_since(t0)
        };
        let deep = {
            let (s, t) = fs
                .open(
                    &mut net,
                    t0,
                    h(1),
                    SpritePath::new("/x/y/z/w/deep"),
                    OpenMode::Read,
                )
                .unwrap();
            fs.close(&mut net, t, h(1), s).unwrap();
            t.elapsed_since(t0)
        };
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn errors_are_reported() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        assert!(matches!(
            fs.open(&mut net, t0, h(1), SpritePath::new("/nope"), OpenMode::Read),
            Err(FsError::NotFound(_))
        ));
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        assert!(matches!(
            fs.create(&mut net, t0, h(1), SpritePath::new("/f")),
            Err(FsError::AlreadyExists(_))
        ));
        let (s, t1) = fs
            .open(&mut net, t0, h(1), SpritePath::new("/f"), OpenMode::Read)
            .unwrap();
        assert!(matches!(
            fs.write(&mut net, t1, h(1), s, b"x"),
            Err(FsError::BadMode(_))
        ));
        // A host that holds no reference cannot use the stream.
        assert!(matches!(
            fs.read(&mut net, t1, h(0), s, 1),
            Err(FsError::BadStream(_))
        ));
        let fs2 = SpriteFs::new(FsConfig::default(), 2);
        assert!(matches!(
            fs2.resolve(&SpritePath::new("/anything")),
            Err(FsError::NoDomain(_))
        ));
    }

    #[test]
    fn unlink_removes_and_invalidates() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(&mut net, t0, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, b"bytes").unwrap();
        let t3 = fs.close(&mut net, t2, h(1), s).unwrap();
        fs.unlink(&mut net, t3, h(1), &SpritePath::new("/f"))
            .unwrap();
        assert!(matches!(
            fs.open(&mut net, t3, h(1), SpritePath::new("/f"), OpenMode::Read),
            Err(FsError::NotFound(_))
        ));
        assert!(matches!(
            fs.unlink(&mut net, t3, h(1), &SpritePath::new("/f")),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn cache_hits_avoid_server_traffic() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/f"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, &[1u8; 8192]).unwrap();
        let fetches_before = fs.stats().block_fetches;
        fs.seek(s, 0).unwrap();
        let (_, t3) = fs.read(&mut net, t2, h(1), s, 8192).unwrap();
        // All blocks are dirty in the local cache: no fetches.
        assert_eq!(fs.stats().block_fetches, fetches_before);
        fs.seek(s, 0).unwrap();
        let (_, _t4) = fs.read(&mut net, t3, h(1), s, 8192).unwrap();
        assert_eq!(fs.stats().block_fetches, fetches_before);
        let (hits, _) = fs.client_cache(h(1)).hit_stats();
        assert!(hits >= 4);
    }

    #[test]
    fn fsync_pushes_dirty_blocks() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        let (id, _) = fs
            .create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(&mut net, t0, h(1), SpritePath::new("/f"), OpenMode::Write)
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, b"sync me").unwrap();
        assert_eq!(fs.client_cache(h(1)).dirty_block_count(id), 1);
        let t3 = fs.fsync(&mut net, t2, h(1), s).unwrap();
        assert!(t3 > t2);
        assert_eq!(fs.client_cache(h(1)).dirty_block_count(id), 0);
        assert_eq!(
            fs.server(h(0)).unwrap().file(id).unwrap().read_at(0, 7),
            b"sync me"
        );
    }

    #[test]
    fn reads_past_eof_are_short() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/f"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, b"abc").unwrap();
        fs.seek(s, 0).unwrap();
        let (data, _) = fs.read(&mut net, t2, h(1), s, 100).unwrap();
        assert_eq!(&data, b"abc");
        let (empty, _) = fs.read(&mut net, t2, h(1), s, 100).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn name_cache_skips_lookup_cost_on_repeat_opens() {
        let mut net = Transport::new(sprite_net::CostModel::sun3(), 2);
        let mut fs = SpriteFs::new(
            FsConfig {
                client_name_caching: true,
                ..FsConfig::default()
            },
            2,
        );
        fs.add_server(h(0), SpritePath::new("/"));
        let t0 = SimTime::ZERO;
        let deep = SpritePath::new("/a/b/c/d/e/f");
        fs.create(&mut net, t0, h(1), deep.clone()).unwrap();
        let (s1, t1) = fs
            .open(&mut net, t0, h(1), deep.clone(), OpenMode::Read)
            .unwrap();
        let first = t1.elapsed_since(t0);
        let t1b = fs.close(&mut net, t1, h(1), s1).unwrap();
        let (s2, t2) = fs
            .open(&mut net, t1b, h(1), deep.clone(), OpenMode::Read)
            .unwrap();
        let second = t2.elapsed_since(t1b);
        assert!(
            second < first,
            "repeat open {second} should beat first {first}"
        );
        assert_eq!(fs.stats().name_cache_hits, 1);
        fs.close(&mut net, t2, h(1), s2).unwrap();
        // Unlink invalidates the cached name: the next open must fail, not
        // resurrect the file through a stale translation.
        fs.unlink(&mut net, t2, h(1), &deep).unwrap();
        assert!(matches!(
            fs.open(&mut net, t2, h(1), deep, OpenMode::Read),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn second_server_owns_its_domain() {
        let mut net = Transport::new(sprite_net::CostModel::sun3(), 3);
        let mut fs = SpriteFs::new(FsConfig::default(), 3);
        fs.add_server(h(0), SpritePath::new("/"));
        fs.add_server(h(2), SpritePath::new("/swap"));
        assert_eq!(fs.resolve(&SpritePath::new("/src/x.c")).unwrap(), h(0));
        assert_eq!(fs.resolve(&SpritePath::new("/swap/p1.heap")).unwrap(), h(2));
        let t0 = SimTime::ZERO;
        let (swap_file, t) = fs
            .create_backing(&mut net, t0, h(1), SpritePath::new("/swap/p1.heap"))
            .unwrap();
        let (root_file, t) = fs
            .create(&mut net, t, h(1), SpritePath::new("/src/x.c"))
            .unwrap();
        // Each file lives on its own server.
        assert_eq!(fs.home_of(swap_file), Some(h(2)));
        assert_eq!(fs.home_of(root_file), Some(h(0)));
        assert!(fs
            .server(h(2))
            .unwrap()
            .lookup(&SpritePath::new("/swap/p1.heap"))
            .is_some());
        assert!(fs
            .server(h(0))
            .unwrap()
            .lookup(&SpritePath::new("/swap/p1.heap"))
            .is_none());
        // Paging traffic charges the swap server's CPU, not the root's.
        let before_root = fs.server(h(0)).unwrap().cpu.busy_time();
        let before_swap = fs.server(h(2)).unwrap().cpu.busy_time();
        fs.page_out(&mut net, t, h(1), swap_file, 0, &[1u8; 4096])
            .unwrap();
        assert_eq!(fs.server(h(0)).unwrap().cpu.busy_time(), before_root);
        assert!(fs.server(h(2)).unwrap().cpu.busy_time() > before_swap);
    }

    #[test]
    fn unlink_while_open_reads_eof() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/u"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/u"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, b"gone soon").unwrap();
        let t3 = fs
            .unlink(&mut net, t2, h(1), &SpritePath::new("/u"))
            .unwrap();
        fs.seek(s, 0).unwrap();
        let (data, _) = fs.read(&mut net, t3, h(1), s, 16).unwrap();
        assert!(
            data.is_empty(),
            "documented divergence: unlinked file reads EOF"
        );
        // Closing the orphaned stream must not error.
        fs.close(&mut net, t3, h(1), s).unwrap();
    }

    #[test]
    fn stats_reset_is_complete() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/r"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/r"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        fs.write(&mut net, t1, h(1), s, b"x").unwrap();
        assert!(fs.stats().opens > 0 && fs.stats().bytes_written > 0);
        fs.reset_stats();
        let st = fs.stats();
        assert_eq!(st.opens, 0);
        assert_eq!(st.bytes_written, 0);
        assert_eq!(st.lookups, 0);
    }

    fn sharded_setup(hosts: usize, shards: usize) -> (Transport, SpriteFs) {
        let net = Transport::new(CostModel::sun3(), hosts);
        let mut fs = SpriteFs::new(FsConfig::default(), hosts);
        for i in 0..shards {
            fs.add_server(HostId::new(i as u32), SpritePath::new("/"));
        }
        (net, fs)
    }

    #[test]
    fn striped_domain_spreads_files_across_members() {
        let (mut net, mut fs) = sharded_setup(6, 3);
        assert_eq!(fs.fs_shards(), 3);
        let mut t = SimTime::ZERO;
        let mut homes = std::collections::BTreeSet::new();
        for i in 0..32 {
            let (id, t1) = fs
                .create(&mut net, t, h(4), SpritePath::new(format!("/src/f{i}.c")))
                .unwrap();
            t = t1;
            let home = fs.home_of(id).unwrap();
            assert_eq!(
                fs.resolve(&SpritePath::new(format!("/src/f{i}.c")))
                    .unwrap(),
                home
            );
            homes.insert(home);
        }
        assert_eq!(homes.len(), 3, "files should land on all three members");
    }

    #[test]
    fn first_contact_pays_one_shard_redirect_per_host() {
        let (mut net, mut fs) = sharded_setup(6, 3);
        let t0 = SimTime::ZERO;
        let (_, t1) = fs
            .create(&mut net, t0, h(4), SpritePath::new("/a"))
            .unwrap();
        assert_eq!(fs.stats().shard_redirects, 1);
        let (_, t2) = fs
            .create(&mut net, t1, h(4), SpritePath::new("/b"))
            .unwrap();
        assert_eq!(fs.stats().shard_redirects, 1, "table cached at the client");
        let (s, t3) = fs
            .open(&mut net, t2, h(5), SpritePath::new("/a"), OpenMode::Read)
            .unwrap();
        assert_eq!(fs.stats().shard_redirects, 2, "each host learns it once");
        fs.close(&mut net, t3, h(5), s).unwrap();
        // A group member never pays the redirect.
        let (_, _) = fs
            .create(&mut net, t3, h(0), SpritePath::new("/c"))
            .unwrap();
        assert_eq!(fs.stats().shard_redirects, 2);
    }

    #[test]
    fn hot_file_is_replicated_and_write_open_invalidates() {
        let (mut net, mut fs) = sharded_setup(9, 2);
        let t0 = SimTime::ZERO;
        let payload = vec![3u8; 12 * PAGE_SIZE as usize];
        fs.create(&mut net, t0, h(2), SpritePath::new("/hot"))
            .unwrap();
        let (w, t1) = fs
            .open(&mut net, t0, h(2), SpritePath::new("/hot"), OpenMode::Write)
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(2), w, &payload).unwrap();
        let t3 = fs.close(&mut net, t2, h(2), w).unwrap();
        // A parade of distinct readers: each switch of reading host heats
        // the file; once HOT_THRESHOLD switches accumulate the home pushes
        // a copy to the group peer and later reads rotate over both.
        let mut t = t3;
        let mut last = Vec::new();
        for reader in [h(3), h(4), h(5), h(6), h(7), h(8)] {
            let (r, t4) = fs
                .open(&mut net, t, reader, SpritePath::new("/hot"), OpenMode::Read)
                .unwrap();
            let (data, t5) = fs
                .read(&mut net, t4, reader, r, payload.len() as u64)
                .unwrap();
            assert_eq!(data, payload);
            t = fs.close(&mut net, t5, reader, r).unwrap();
            last = data;
        }
        assert_eq!(last, payload);
        assert!(
            fs.stats().replica_hits > 0,
            "late readers should be served by the replica peer"
        );
        let t5 = t;
        let home = fs.resolve(&SpritePath::new("/hot")).unwrap();
        let peer = if home == h(0) { h(1) } else { h(0) };
        assert!(
            fs.server(peer).unwrap().cpu.busy_time() > SimDuration::ZERO,
            "replica peer CPU did real work"
        );
        // A write-open bumps the version and drops the replica set.
        let (w2, t6) = fs
            .open(&mut net, t5, h(2), SpritePath::new("/hot"), OpenMode::Write)
            .unwrap();
        assert!(fs.stats().replica_invalidates > 0);
        let t7 = fs.write(&mut net, t6, h(2), w2, b"NEW").unwrap();
        let t8 = fs.close(&mut net, t7, h(2), w2).unwrap();
        // A reader re-opens and must see the new bytes, never a stale
        // replica copy.
        let (r2, t9) = fs
            .open(&mut net, t8, h(4), SpritePath::new("/hot"), OpenMode::Read)
            .unwrap();
        let (head, _) = fs.read(&mut net, t9, h(4), r2, 3).unwrap();
        assert_eq!(&head, b"NEW");
    }

    #[test]
    fn striped_paging_spreads_service_across_the_group() {
        let (mut net, mut fs) = sharded_setup(4, 2);
        let t0 = SimTime::ZERO;
        let (swap, t1) = fs
            .create_backing(&mut net, t0, h(3), SpritePath::new("/swap/big"))
            .unwrap();
        let page = vec![0x5au8; PAGE_SIZE as usize];
        let mut t = t1;
        for p in 0..6 {
            t = fs.page_out(&mut net, t, h(3), swap, p, &page).unwrap();
        }
        for p in 0..6 {
            let (back, t2) = fs.page_in(&mut net, t, h(3), swap, p).unwrap();
            assert_eq!(back, page);
            t = t2;
        }
        assert!(fs.server(h(0)).unwrap().cpu.busy_time() > SimDuration::ZERO);
        assert!(fs.server(h(1)).unwrap().cpu.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn server_loads_report_per_daemon_contention() {
        let (mut net, mut fs) = sharded_setup(4, 2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(2), SpritePath::new("/x"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(2),
                SpritePath::new("/x"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        let t2 = fs.write(&mut net, t1, h(2), s, &[1u8; 9000]).unwrap();
        fs.close(&mut net, t2, h(2), s).unwrap();
        let loads = fs.server_loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.iter().any(|l| l.requests > 0));
        assert_eq!(
            fs.server_busy_max(),
            loads.iter().map(|l| l.busy).max().unwrap()
        );
    }

    #[test]
    fn sparse_writes_read_back_zero_filled() {
        let (mut net, mut fs) = setup(2);
        let t0 = SimTime::ZERO;
        fs.create(&mut net, t0, h(1), SpritePath::new("/f"))
            .unwrap();
        let (s, t1) = fs
            .open(
                &mut net,
                t0,
                h(1),
                SpritePath::new("/f"),
                OpenMode::ReadWrite,
            )
            .unwrap();
        fs.seek(s, 3 * PAGE_SIZE).unwrap();
        let t2 = fs.write(&mut net, t1, h(1), s, b"tail").unwrap();
        fs.seek(s, PAGE_SIZE).unwrap();
        let (data, _) = fs.read(&mut net, t2, h(1), s, PAGE_SIZE).unwrap();
        assert_eq!(data, vec![0u8; PAGE_SIZE as usize]);
        fs.seek(s, 3 * PAGE_SIZE).unwrap();
        let (tail, _) = fs.read(&mut net, t2, h(1), s, 4).unwrap();
        assert_eq!(&tail, b"tail");
    }
}
