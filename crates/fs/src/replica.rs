//! Read replicas for hot files, generalizing NWO88 to server peers.
//!
//! The cache-consistency protocol already tracks a per-file `version` that
//! is bumped on every write-open, and uses it to decide whether a *client*
//! cache is current. This module rides the same machinery one level up:
//! when a file in a striped domain turns out to be read-hot and is not
//! write-shared, the home server pushes a copy to its group peers
//! (`fs-replica-read` pulls), and subsequent block reads are served by a
//! peer chosen from the reading host's identity. Any write-open bumps the
//! version exactly as before, and the home server drops the replica set
//! with one `fs-replica-invalidate` notice per peer — a replica set is
//! therefore *valid by construction*: it only exists between an install
//! and the next version bump.

use sprite_net::HostId;
use sprite_sim::{DetHashMap, StateDigest};

use crate::FileId;

/// Number of reader-host *switches* after which a file in a striped domain
/// is considered hot enough to replicate. Counting switches (a remote fetch
/// from a different host than the previous one) rather than raw fetches
/// keeps one client streaming a large file cold, while a shared header
/// pulled by every host in the cluster heats up after a handful of reads.
pub const HOT_THRESHOLD: u32 = 4;

/// The live replica set for one file.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    /// Servers holding a current copy (the home server plus the group
    /// peers that pulled one), sorted by host id so reads spread over the
    /// whole group rather than swapping load onto the peers.
    pub servers: Vec<HostId>,
    /// File version the copies were taken at (diagnostic; the set is
    /// dropped before the version can move, so readers never check it).
    pub version: u64,
}

/// Tracks read heat and live replica sets for the whole file service.
#[derive(Debug, Clone, Default)]
pub struct ReplicaTable {
    sets: DetHashMap<FileId, ReplicaSet>,
    /// Per file: the last remote reader seen and how many times the reader
    /// changed.
    heat: DetHashMap<FileId, (HostId, u32)>,
}

impl ReplicaTable {
    /// An empty table.
    pub fn new() -> Self {
        ReplicaTable::default()
    }

    /// Records one home-served remote fetch of `file` by `host`. Returns
    /// true when the file's reader-switch count has crossed
    /// [`HOT_THRESHOLD`] and it has no live set — the caller should try to
    /// install replicas.
    pub fn note_fetch(&mut self, file: FileId, host: HostId) -> bool {
        let e = self.heat.entry(file).or_insert((host, 0));
        if e.0 != host {
            e.0 = host;
            e.1 = e.1.saturating_add(1);
        }
        e.1 >= HOT_THRESHOLD && !self.sets.contains_key(&file)
    }

    /// Installs a replica set for `file` at `version`. Peers are stored
    /// sorted so reader→peer assignment is independent of install order.
    pub fn install(&mut self, file: FileId, mut servers: Vec<HostId>, version: u64) {
        if servers.is_empty() {
            return;
        }
        servers.sort();
        servers.dedup();
        self.sets.insert(file, ReplicaSet { servers, version });
    }

    /// The live replica set for `file`, if any.
    pub fn set(&self, file: FileId) -> Option<&ReplicaSet> {
        self.sets.get(&file)
    }

    /// Drops the replica set for `file`, returning the peers that must be
    /// sent an invalidation notice. Heat is kept: a file that stays hot
    /// after the write closes can be re-replicated.
    pub fn drop_set(&mut self, file: FileId) -> Option<Vec<HostId>> {
        self.sets.remove(&file).map(|s| s.servers)
    }

    /// Forgets `file` entirely (unlink).
    pub fn forget(&mut self, file: FileId) {
        self.sets.remove(&file);
        self.heat.remove(&file);
    }

    /// Number of live replica sets.
    pub fn live_sets(&self) -> usize {
        self.sets.len()
    }

    /// Folds the table into `d` in sorted-key order (determinism audit).
    pub fn digest_into(&self, d: &mut StateDigest) {
        let mut keys: Vec<FileId> = self.sets.keys().copied().collect();
        keys.sort();
        d.write_u64(keys.len() as u64);
        for k in keys {
            let s = &self.sets[&k];
            d.write_u64(k.raw());
            d.write_u64(s.version);
            d.write_u64(s.servers.len() as u64);
            for h in &s.servers {
                d.write_u64(h.index() as u64);
            }
        }
        let mut hot: Vec<(FileId, (HostId, u32))> =
            self.heat.iter().map(|(k, v)| (*k, *v)).collect();
        hot.sort();
        d.write_u64(hot.len() as u64);
        for (k, (last, switches)) in hot {
            d.write_u64(k.raw());
            d.write_u64(last.index() as u64);
            d.write_u64(switches as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn heat_counts_reader_switches_not_raw_fetches() {
        let mut t = ReplicaTable::new();
        // One client streaming many blocks never heats the file up.
        for _ in 0..10 * HOT_THRESHOLD {
            assert!(!t.note_fetch(f(1), h(5)));
        }
        // Alternating readers cross the threshold quickly.
        for i in 0..HOT_THRESHOLD - 1 {
            assert!(!t.note_fetch(f(1), h(6 + (i % 2))));
        }
        assert!(
            t.note_fetch(f(1), h(9)),
            "threshold crossing requests install"
        );
        t.install(f(1), vec![h(2), h(1)], 1);
        assert!(
            !t.note_fetch(f(1), h(5)),
            "live set suppresses further install requests"
        );
        assert_eq!(t.set(f(1)).unwrap().servers, vec![h(1), h(2)]);
        assert_eq!(t.drop_set(f(1)), Some(vec![h(1), h(2)]));
        assert!(t.set(f(1)).is_none());
        // Heat persists: the very next reader switch asks for re-install.
        assert!(t.note_fetch(f(1), h(6)));
    }

    #[test]
    fn forget_clears_heat_too() {
        let mut t = ReplicaTable::new();
        for i in 0..2 * HOT_THRESHOLD {
            t.note_fetch(f(7), h(i % 3));
        }
        t.install(f(7), vec![h(3)], 4);
        t.forget(f(7));
        assert!(t.set(f(7)).is_none());
        for i in 0..HOT_THRESHOLD {
            assert!(
                !t.note_fetch(f(7), h(i % 2)),
                "heat restarts from zero after forget"
            );
        }
    }

    #[test]
    fn digest_is_order_independent() {
        let mut a = ReplicaTable::new();
        let mut b = ReplicaTable::new();
        a.install(f(1), vec![h(1), h(2)], 2);
        a.install(f(9), vec![h(3)], 5);
        b.install(f(9), vec![h(3)], 5);
        b.install(f(1), vec![h(2), h(1)], 2);
        let (mut da, mut db) = (StateDigest::new(), StateDigest::new());
        a.digest_into(&mut da);
        b.digest_into(&mut db);
        assert_eq!(da.finish(), db.finish());
    }
}
