//! File-server state.
//!
//! Each server owns a set of domains (subtrees) of the shared name space,
//! stores file contents, tracks which clients have each file open in which
//! mode, and runs the cache-consistency protocol \[NWO88\]: caching is
//! disabled for a file that is concurrently write-shared, and a client
//! opening a file last written by a different client forces that writer's
//! dirty blocks back first. The server's CPU is a real simulated resource —
//! name lookups and block operations queue on it, and its saturation is what
//! limits parallel compilation (E5) exactly as Nelson predicted \[Nel88\].

use std::collections::VecDeque;

use sprite_net::{HostId, PAGE_SIZE};
use sprite_sim::{DetHashMap, DetHashSet, FcfsResource, SimDuration};

use crate::{FileId, FileKind, OpenMode, SpritePath};

/// One client's open instances of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRecord {
    /// The client host.
    pub host: HostId,
    /// Mode of this open instance.
    pub mode: OpenMode,
    /// Number of streams this host has open in this mode.
    pub count: u32,
}

/// Server-side state for one file.
#[derive(Debug)]
pub struct ServerFile {
    /// The authoritative contents.
    pub data: Vec<u8>,
    /// Bumped each time a client opens the file for writing; clients use it
    /// to detect stale cached blocks (sequential write-sharing).
    pub version: u64,
    /// What kind of object this is.
    pub kind: FileKind,
    /// False when concurrent write-sharing has disabled client caching.
    pub cacheable: bool,
    /// Which hosts have the file open, per mode.
    pub opens: Vec<OpenRecord>,
    /// The client that most recently had the file open for writing (it may
    /// hold dirty blocks the server must recall before another host reads).
    pub last_writer: Option<HostId>,
    /// Size including delayed writes still cached at clients. Size updates
    /// travel with write RPC batches in the real system, so the server's
    /// notion of length is current even when data is not.
    noted_size: u64,
}

impl ServerFile {
    fn new(kind: FileKind) -> Self {
        ServerFile {
            data: Vec::new(),
            version: 1,
            kind,
            cacheable: !matches!(kind, FileKind::Pseudo { .. }),
            opens: Vec::new(),
            last_writer: None,
            noted_size: 0,
        }
    }

    /// The file's logical length, counting delayed writes still cached at
    /// clients.
    pub fn logical_size(&self) -> u64 {
        self.noted_size.max(self.data.len() as u64)
    }

    /// Records that a client's cached write extended the file to `end`.
    pub fn note_logical_size(&mut self, end: u64) {
        self.noted_size = self.noted_size.max(end);
    }

    /// Hosts with the file open at all.
    pub fn open_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        let mut seen = DetHashSet::default();
        self.opens
            .iter()
            .filter(move |r| seen.insert(r.host))
            .map(|r| r.host)
    }

    /// Hosts with the file open for writing.
    pub fn writer_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        let mut seen = DetHashSet::default();
        self.opens
            .iter()
            .filter(|r| r.mode.writes())
            .filter(move |r| seen.insert(r.host))
            .map(|r| r.host)
    }

    /// True if distinct hosts share the file while at least one writes —
    /// the condition under which Sprite disables caching.
    pub fn concurrently_write_shared(&self) -> bool {
        let hosts: DetHashSet<HostId> = self.open_hosts().collect();
        hosts.len() > 1 && self.writer_hosts().next().is_some()
    }

    fn add_open(&mut self, host: HostId, mode: OpenMode) {
        if let Some(r) = self
            .opens
            .iter_mut()
            .find(|r| r.host == host && r.mode == mode)
        {
            r.count += 1;
        } else {
            self.opens.push(OpenRecord {
                host,
                mode,
                count: 1,
            });
        }
    }

    fn remove_open(&mut self, host: HostId, mode: OpenMode) -> bool {
        if let Some(pos) = self
            .opens
            .iter()
            .position(|r| r.host == host && r.mode == mode)
        {
            self.opens[pos].count -= 1;
            if self.opens[pos].count == 0 {
                self.opens.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Reads `len` bytes at `offset` (short reads at end of file).
    pub fn read_at(&self, offset: u64, len: u64) -> Vec<u8> {
        let start = (offset as usize).min(self.data.len());
        let end = ((offset + len) as usize).min(self.data.len());
        self.data[start..end].to_vec()
    }

    /// Writes `bytes` at `offset`, growing the file if needed.
    pub fn write_at(&mut self, offset: u64, bytes: &[u8]) {
        let end = offset as usize + bytes.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[offset as usize..end].copy_from_slice(bytes);
    }

    /// Reads one whole block (short at end of file).
    pub fn read_block(&self, block: u64) -> Vec<u8> {
        self.read_at(block * PAGE_SIZE, PAGE_SIZE)
    }
}

/// Consistency work a client open triggers, computed by the server.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConsistencyActions {
    /// Hosts that must flush their dirty blocks of the file to the server
    /// before the open completes (sequential write-sharing).
    pub flush_from: Vec<HostId>,
    /// Hosts that must drop all cached blocks of the file because caching
    /// is now disabled (concurrent write-sharing), including the opener.
    pub invalidate_on: Vec<HostId>,
    /// Whether the file is cacheable after this open.
    pub cacheable: bool,
    /// True when the opener's own cached blocks are still current — nobody
    /// else wrote the file since the opener last did. The opener may then
    /// keep its cache across the version bump instead of refetching.
    pub opener_cache_current: bool,
}

/// One file server.
#[derive(Debug)]
pub struct ServerState {
    /// The machine this server runs on.
    pub host: HostId,
    /// The server's CPU; lookups and block service queue here.
    pub cpu: FcfsResource,
    namespace: DetHashMap<SpritePath, FileId>,
    files: DetHashMap<FileId, ServerFile>,
    /// Server main-memory block cache residency (LRU set). Contents always
    /// live in `files`; this set only decides whether service costs a disk
    /// access.
    mem_cache: DetHashSet<(FileId, u64)>,
    mem_lru: VecDeque<(FileId, u64)>,
    mem_capacity: usize,
    disk_reads: u64,
    queue_wait: SimDuration,
    block_ops: u64,
}

impl ServerState {
    /// Creates a server on `host` with a block cache of `mem_capacity`
    /// blocks.
    pub fn new(host: HostId, mem_capacity: usize) -> Self {
        ServerState {
            host,
            cpu: FcfsResource::new(),
            namespace: DetHashMap::default(),
            files: DetHashMap::default(),
            mem_cache: DetHashSet::default(),
            mem_lru: VecDeque::new(),
            mem_capacity: mem_capacity.max(1),
            disk_reads: 0,
            queue_wait: SimDuration::ZERO,
            block_ops: 0,
        }
    }

    /// Registers a new file under `path`. Returns `None` if the name exists.
    pub fn create(&mut self, path: SpritePath, id: FileId, kind: FileKind) -> Option<FileId> {
        if self.namespace.contains_key(&path) {
            return None;
        }
        self.namespace.insert(path, id);
        self.files.insert(id, ServerFile::new(kind));
        Some(id)
    }

    /// Looks a path up in this server's namespace.
    pub fn lookup(&self, path: &SpritePath) -> Option<FileId> {
        self.namespace.get(path).copied()
    }

    /// Removes a name and its file. Returns true if it existed.
    pub fn unlink(&mut self, path: &SpritePath) -> bool {
        if let Some(id) = self.namespace.remove(path) {
            self.files.remove(&id);
            self.mem_cache.retain(|(f, _)| *f != id);
            self.mem_lru.retain(|(f, _)| *f != id);
            true
        } else {
            false
        }
    }

    /// Accesses a file's state.
    pub fn file(&self, id: FileId) -> Option<&ServerFile> {
        self.files.get(&id)
    }

    /// Mutable access to a file's state.
    pub fn file_mut(&mut self, id: FileId) -> Option<&mut ServerFile> {
        self.files.get_mut(&id)
    }

    /// Number of files stored.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total disk reads performed (server cache misses).
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads
    }

    /// Total time requests spent queued behind this server's busy CPU,
    /// sampled at dispatch (the e05 contention signal).
    pub fn queue_wait(&self) -> SimDuration {
        self.queue_wait
    }

    /// Records the queue delay one request observed at dispatch time.
    pub fn note_queue_wait(&mut self, wait: SimDuration) {
        self.queue_wait += wait;
    }

    /// Block touches served by this server (memory cache hits and misses).
    pub fn block_ops(&self) -> u64 {
        self.block_ops
    }

    /// Registers an open by `host` in `mode`, returning the consistency
    /// actions the caller must carry out *before* granting the open.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist (callers look up first).
    pub fn open(&mut self, id: FileId, host: HostId, mode: OpenMode) -> ConsistencyActions {
        let file = self.files.get_mut(&id).expect("open of unknown file");
        let mut actions = ConsistencyActions {
            cacheable: file.cacheable,
            opener_cache_current: file.last_writer.is_none_or(|w| w == host),
            ..ConsistencyActions::default()
        };
        // Sequential write-sharing: a different host wrote this file last
        // and may hold dirty blocks; recall them so this open sees current
        // data [NWO88].
        if let Some(w) = file.last_writer {
            if w != host {
                actions.flush_from.push(w);
            }
        }
        file.add_open(host, mode);
        if mode.writes() {
            file.version += 1;
            file.last_writer = Some(host);
        }
        // Concurrent write-sharing: disable caching for everyone.
        if file.concurrently_write_shared() && file.cacheable {
            file.cacheable = false;
            actions.invalidate_on = file.open_hosts().collect();
        }
        actions.cacheable = file.cacheable;
        actions
    }

    /// Adds an open record for `host` during stream migration: no version
    /// bump and no recall (the migration protocol already flushed the source
    /// host), but concurrent write-sharing created by the move still
    /// disables caching.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist.
    pub fn open_for_migration(&mut self, id: FileId, host: HostId, mode: OpenMode) {
        let file = self.files.get_mut(&id).expect("migrating unknown file");
        file.add_open(host, mode);
        if mode.writes() {
            // A write stream arriving on a new host is a write-open for
            // consistency purposes: bump the version so blocks cached
            // elsewhere under the old version read as stale.
            file.version += 1;
            file.last_writer = Some(host);
        }
        if file.concurrently_write_shared() {
            file.cacheable = false;
        }
    }

    /// Registers a close by `host`. Re-enables caching when the file is no
    /// longer concurrently write-shared. Returns false for a bogus close.
    pub fn close(&mut self, id: FileId, host: HostId, mode: OpenMode) -> bool {
        let Some(file) = self.files.get_mut(&id) else {
            return false;
        };
        let ok = file.remove_open(host, mode);
        if ok && !file.concurrently_write_shared() {
            file.cacheable = true;
        }
        ok
    }

    /// Transfers `host`'s open records for a migrating stream to `to`.
    /// Part of the stream-migration protocol (Ch. 5.3): the I/O server is
    /// the one place that atomically updates which host holds the stream.
    pub fn move_open(&mut self, id: FileId, from: HostId, to: HostId, mode: OpenMode) -> bool {
        let Some(file) = self.files.get_mut(&id) else {
            return false;
        };
        if !file.remove_open(from, mode) {
            return false;
        }
        file.add_open(to, mode);
        if mode.writes() {
            // Same rule as `open_for_migration`: the stream's arrival is a
            // write-open, so stale copies elsewhere must version-miss.
            file.version += 1;
            file.last_writer = Some(to);
        }
        // Migration can create or destroy concurrent write-sharing.
        file.cacheable = !file.concurrently_write_shared();
        true
    }

    /// Touches a block in the server memory cache; returns true if it was
    /// resident (no disk access needed).
    pub fn touch_block(&mut self, id: FileId, block: u64) -> bool {
        self.block_ops += 1;
        let key = (id, block);
        if self.mem_cache.contains(&key) {
            // Refresh recency.
            if let Some(pos) = self.mem_lru.iter().position(|k| *k == key) {
                self.mem_lru.remove(pos);
            }
            self.mem_lru.push_back(key);
            true
        } else {
            self.disk_reads += 1;
            self.mem_cache.insert(key);
            self.mem_lru.push_back(key);
            while self.mem_cache.len() > self.mem_capacity {
                if let Some(old) = self.mem_lru.pop_front() {
                    self.mem_cache.remove(&old);
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ServerState {
        ServerState::new(HostId::new(0), 64)
    }

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn create_lookup_unlink() {
        let mut s = server();
        let p = SpritePath::new("/a/b");
        assert!(s
            .create(p.clone(), FileId::new(1), FileKind::Regular)
            .is_some());
        assert!(s
            .create(p.clone(), FileId::new(2), FileKind::Regular)
            .is_none());
        assert_eq!(s.lookup(&p), Some(FileId::new(1)));
        assert!(s.unlink(&p));
        assert!(!s.unlink(&p));
        assert_eq!(s.lookup(&p), None);
    }

    #[test]
    fn read_write_round_trip() {
        let mut f = ServerFile::new(FileKind::Regular);
        f.write_at(10, b"hello");
        assert_eq!(f.data.len(), 15);
        assert_eq!(f.read_at(10, 5), b"hello");
        assert_eq!(f.read_at(12, 100), b"llo");
        assert_eq!(f.read_at(100, 5), b"");
    }

    #[test]
    fn single_host_open_is_cacheable_with_no_actions() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        let a = s.open(FileId::new(1), h(1), OpenMode::ReadWrite);
        assert!(a.cacheable);
        assert!(a.flush_from.is_empty());
        assert!(a.invalidate_on.is_empty());
    }

    #[test]
    fn sequential_write_sharing_recalls_from_last_writer() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        s.open(FileId::new(1), h(1), OpenMode::Write);
        s.close(FileId::new(1), h(1), OpenMode::Write);
        let a = s.open(FileId::new(1), h(2), OpenMode::Read);
        assert_eq!(a.flush_from, vec![h(1)]);
        assert!(a.cacheable, "no concurrent sharing, still cacheable");
    }

    #[test]
    fn write_open_bumps_version() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        let v0 = s.file(FileId::new(1)).unwrap().version;
        s.open(FileId::new(1), h(1), OpenMode::Write);
        assert_eq!(s.file(FileId::new(1)).unwrap().version, v0 + 1);
        s.open(FileId::new(1), h(1), OpenMode::Read);
        assert_eq!(s.file(FileId::new(1)).unwrap().version, v0 + 1);
    }

    #[test]
    fn concurrent_write_sharing_disables_caching() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        s.open(FileId::new(1), h(1), OpenMode::Write);
        let a = s.open(FileId::new(1), h(2), OpenMode::Read);
        assert!(!a.cacheable);
        let mut inv = a.invalidate_on.clone();
        inv.sort();
        assert_eq!(inv, vec![h(1), h(2)]);
    }

    #[test]
    fn caching_reenabled_after_sharing_ends() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        s.open(FileId::new(1), h(1), OpenMode::Write);
        s.open(FileId::new(1), h(2), OpenMode::Read);
        assert!(!s.file(FileId::new(1)).unwrap().cacheable);
        s.close(FileId::new(1), h(1), OpenMode::Write);
        assert!(s.file(FileId::new(1)).unwrap().cacheable);
    }

    #[test]
    fn move_open_transfers_sharing() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        s.open(FileId::new(1), h(1), OpenMode::Write);
        assert!(s.move_open(FileId::new(1), h(1), h(2), OpenMode::Write));
        let f = s.file(FileId::new(1)).unwrap();
        assert_eq!(f.open_hosts().collect::<Vec<_>>(), vec![h(2)]);
        assert_eq!(f.last_writer, Some(h(2)));
        assert!(f.cacheable);
        assert!(!s.move_open(FileId::new(1), h(1), h(3), OpenMode::Write));
    }

    #[test]
    fn migration_can_end_concurrent_sharing() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        s.open(FileId::new(1), h(1), OpenMode::Write);
        s.open(FileId::new(1), h(2), OpenMode::Read);
        assert!(!s.file(FileId::new(1)).unwrap().cacheable);
        // The writer migrates to the reader's host: sharing collapses.
        s.move_open(FileId::new(1), h(1), h(2), OpenMode::Write);
        assert!(s.file(FileId::new(1)).unwrap().cacheable);
    }

    #[test]
    fn server_memory_cache_lru() {
        let mut s = ServerState::new(h(0), 2);
        assert!(!s.touch_block(FileId::new(1), 0), "first touch misses");
        assert!(s.touch_block(FileId::new(1), 0), "second touch hits");
        s.touch_block(FileId::new(1), 1);
        s.touch_block(FileId::new(1), 2); // evicts block 0? no: 0 touched recently
                                          // LRU order after touches: 0 (hit), 1, 2 -> capacity 2 keeps {1,2}.
        assert!(!s.touch_block(FileId::new(1), 0), "block 0 was evicted");
        assert_eq!(s.disk_reads(), 4);
    }

    #[test]
    fn double_close_rejected() {
        let mut s = server();
        s.create(SpritePath::new("/f"), FileId::new(1), FileKind::Regular);
        s.open(FileId::new(1), h(1), OpenMode::Read);
        assert!(s.close(FileId::new(1), h(1), OpenMode::Read));
        assert!(!s.close(FileId::new(1), h(1), OpenMode::Read));
    }
}
