//! Pathnames and domains.
//!
//! Sprite presents a single network-wide file name space, partitioned into
//! *domains* each managed by one file server \[Wel90\]. Name lookup happens at
//! the server, one pathname component at a time — which is why lookups are
//! the file servers' dominant CPU cost during parallel compilations \[Nel88\],
//! and why E5's speedup curve bends where it does.
//!
//! Pathnames are *interned*: the first construction of a given normalized
//! path stores its text once in a process-wide table and every
//! [`SpritePath`] after that is a 32-bit symbol plus a cached pointer to the
//! shared text. Equality and hashing compare the symbol (one integer op),
//! cloning is trivial, and the name caches and server namespaces in
//! `sprite-fs` become integer-keyed tables. Ordering still compares the
//! text, so sorted output is identical to the string days. Interned text is
//! never freed — a simulation's working set of distinct paths is small and
//! bounded by the workload, and [`SpritePath::interned_count`] exposes the
//! table size for the data-plane counters report.

use std::fmt;
use std::sync::{OnceLock, RwLock};

use sprite_sim::DetHashMap;

/// The process-wide path intern table. Symbols index `strings`; `map` takes
/// normalized text back to its symbol. Strings are leaked into `'static` so
/// resolved text needs no lock and no copy.
struct Interner {
    map: DetHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: DetHashMap::default(),
            strings: Vec::new(),
        })
    })
}

/// Interns normalized path text, returning its symbol and shared text.
fn intern(normalized: &str) -> (u32, &'static str) {
    let lock = interner();
    if let Some((&text, &sym)) = lock
        .read()
        .expect("interner poisoned")
        .map
        .get_key_value(normalized)
    {
        return (sym, text);
    }
    let mut guard = lock.write().expect("interner poisoned");
    // Double-check: another thread may have interned it between the locks.
    if let Some((&text, &sym)) = guard.map.get_key_value(normalized) {
        return (sym, text);
    }
    let text: &'static str = Box::leak(normalized.to_owned().into_boxed_str());
    let sym = u32::try_from(guard.strings.len()).expect("interner full");
    guard.strings.push(text);
    guard.map.insert(text, sym);
    (sym, text)
}

/// An absolute pathname in the shared name space, as an interned symbol.
///
/// # Examples
///
/// ```
/// use sprite_fs::SpritePath;
///
/// let p = SpritePath::new("/users/douglis/thesis.tex");
/// assert_eq!(p.components().count(), 3);
/// assert_eq!(p.to_string(), "/users/douglis/thesis.tex");
/// ```
#[derive(Clone)]
pub struct SpritePath {
    sym: u32,
    text: &'static str,
}

impl SpritePath {
    /// Creates a path, normalizing to a single leading slash and no
    /// trailing slash.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn new(path: impl Into<String>) -> Self {
        let raw = path.into();
        assert!(!raw.is_empty(), "empty pathname");
        let already_normal =
            raw == "/" || (raw.starts_with('/') && !raw.ends_with('/') && !raw.contains("//"));
        let (sym, text) = if already_normal {
            intern(&raw)
        } else {
            let trimmed = raw.trim_matches('/');
            intern(&format!("/{trimmed}"))
        };
        SpritePath { sym, text }
    }

    /// The pathname components, in order.
    pub fn components(&self) -> impl Iterator<Item = &'static str> {
        self.text.split('/').filter(|c| !c.is_empty())
    }

    /// Number of components (what a server-side lookup pays for).
    pub fn depth(&self) -> u64 {
        self.components().count() as u64
    }

    /// Appends a component.
    pub fn join(&self, component: &str) -> SpritePath {
        SpritePath::new(format!("{}/{}", self.text, component))
    }

    /// True if `self` lies under `prefix` (or equals it).
    pub fn starts_with(&self, prefix: &SpritePath) -> bool {
        if prefix.text == "/" {
            return true;
        }
        self.sym == prefix.sym
            || self
                .text
                .strip_prefix(prefix.text)
                .is_some_and(|rest| rest.starts_with('/'))
    }

    /// The raw string form.
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// This path's intern symbol — the integer the name caches key on.
    pub fn symbol(&self) -> u32 {
        self.sym
    }

    /// Number of distinct paths interned process-wide (data-plane counters).
    pub fn interned_count() -> usize {
        interner().read().expect("interner poisoned").strings.len()
    }
}

impl PartialEq for SpritePath {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for SpritePath {}

impl std::hash::Hash for SpritePath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl PartialOrd for SpritePath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SpritePath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic on the text, same as the pre-interning String form,
        // so anything sorted by path renders in the same order.
        self.text.cmp(other.text)
    }
}

impl fmt::Debug for SpritePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SpritePath").field(&self.text).finish()
    }
}

impl fmt::Display for SpritePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl From<&str> for SpritePath {
    fn from(s: &str) -> Self {
        SpritePath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_slashes() {
        assert_eq!(SpritePath::new("a/b").as_str(), "/a/b");
        assert_eq!(SpritePath::new("/a/b/").as_str(), "/a/b");
        assert_eq!(SpritePath::new("//a//"), SpritePath::new("a"));
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(SpritePath::new("/").depth(), 0);
        assert_eq!(SpritePath::new("/tmp").depth(), 1);
        assert_eq!(SpritePath::new("/users/ouster/x.c").depth(), 3);
    }

    #[test]
    fn join_appends() {
        let base = SpritePath::new("/src");
        assert_eq!(base.join("main.c"), SpritePath::new("/src/main.c"));
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let p = SpritePath::new("/users/douglis/x");
        assert!(p.starts_with(&SpritePath::new("/users")));
        assert!(p.starts_with(&SpritePath::new("/users/douglis")));
        assert!(p.starts_with(&SpritePath::new("/")));
        assert!(!p.starts_with(&SpritePath::new("/use")));
        assert!(!p.starts_with(&SpritePath::new("/users/doug")));
        assert!(p.starts_with(&p.clone()));
    }

    #[test]
    #[should_panic(expected = "empty pathname")]
    fn empty_path_panics() {
        SpritePath::new("");
    }

    #[test]
    fn interning_shares_symbols() {
        let a = SpritePath::new("/interned/once");
        let b = SpritePath::new("interned/once/");
        assert_eq!(a.symbol(), b.symbol());
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "one stored copy");
        assert!(SpritePath::interned_count() > 0);
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern out of lexicographic order on purpose: symbol order and
        // text order must be allowed to disagree.
        let mut v = [
            SpritePath::new("/zz"),
            SpritePath::new("/aa"),
            SpritePath::new("/mm"),
        ];
        v.sort();
        let texts: Vec<&str> = v.iter().map(|p| p.as_str()).collect();
        assert_eq!(texts, vec!["/aa", "/mm", "/zz"]);
    }
}
