//! Pathnames and domains.
//!
//! Sprite presents a single network-wide file name space, partitioned into
//! *domains* each managed by one file server \[Wel90\]. Name lookup happens at
//! the server, one pathname component at a time — which is why lookups are
//! the file servers' dominant CPU cost during parallel compilations \[Nel88\],
//! and why E5's speedup curve bends where it does.

use std::fmt;

/// An absolute pathname in the shared name space.
///
/// # Examples
///
/// ```
/// use sprite_fs::SpritePath;
///
/// let p = SpritePath::new("/users/douglis/thesis.tex");
/// assert_eq!(p.components().count(), 3);
/// assert_eq!(p.to_string(), "/users/douglis/thesis.tex");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpritePath(String);

impl SpritePath {
    /// Creates a path, normalizing to a single leading slash and no
    /// trailing slash.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn new(path: impl Into<String>) -> Self {
        let raw = path.into();
        assert!(!raw.is_empty(), "empty pathname");
        let trimmed = raw.trim_matches('/');
        SpritePath(format!("/{trimmed}"))
    }

    /// The pathname components, in order.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Number of components (what a server-side lookup pays for).
    pub fn depth(&self) -> u64 {
        self.components().count() as u64
    }

    /// Appends a component.
    pub fn join(&self, component: &str) -> SpritePath {
        SpritePath::new(format!("{}/{}", self.0, component))
    }

    /// True if `self` lies under `prefix` (or equals it).
    pub fn starts_with(&self, prefix: &SpritePath) -> bool {
        if prefix.0 == "/" {
            return true;
        }
        self.0 == prefix.0
            || self
                .0
                .strip_prefix(&prefix.0)
                .is_some_and(|rest| rest.starts_with('/'))
    }

    /// The raw string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SpritePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SpritePath {
    fn from(s: &str) -> Self {
        SpritePath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_slashes() {
        assert_eq!(SpritePath::new("a/b").as_str(), "/a/b");
        assert_eq!(SpritePath::new("/a/b/").as_str(), "/a/b");
        assert_eq!(SpritePath::new("//a//"), SpritePath::new("a"));
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(SpritePath::new("/").depth(), 0);
        assert_eq!(SpritePath::new("/tmp").depth(), 1);
        assert_eq!(SpritePath::new("/users/ouster/x.c").depth(), 3);
    }

    #[test]
    fn join_appends() {
        let base = SpritePath::new("/src");
        assert_eq!(base.join("main.c"), SpritePath::new("/src/main.c"));
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let p = SpritePath::new("/users/douglis/x");
        assert!(p.starts_with(&SpritePath::new("/users")));
        assert!(p.starts_with(&SpritePath::new("/users/douglis")));
        assert!(p.starts_with(&SpritePath::new("/")));
        assert!(!p.starts_with(&SpritePath::new("/use")));
        assert!(!p.starts_with(&SpritePath::new("/users/doug")));
        assert!(p.starts_with(&p.clone()));
    }

    #[test]
    #[should_panic(expected = "empty pathname")]
    fn empty_path_panics() {
        SpritePath::new("");
    }
}
