//! File identities, kinds and open modes.

use std::fmt;

use sprite_net::HostId;

/// Identifies a file (or pseudo-device) in the network-wide name space.
///
/// Sprite's real identifier was a `(server, domain, file number)` triple; a
/// dense global counter keeps the simulation simple while preserving the
/// property that the identifier is location-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(u64);

impl FileId {
    pub(crate) const fn new(raw: u64) -> Self {
        FileId(raw)
    }

    /// The raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// What kind of object a name designates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// An ordinary data file, cacheable subject to the consistency protocol.
    Regular,
    /// A swap/backing file used by the virtual-memory system. Paging I/O
    /// bypasses the client block cache and goes straight to the server
    /// (Sprite pages "via the file system", which is exactly what makes
    /// migration's flush-and-demand-page VM strategy natural — Ch. 3.2).
    Backing,
    /// A pseudo-device \[WO88\]: a file-like rendezvous with a user-level
    /// server process on `server_process_host`. Reads and writes become
    /// request/response round trips with that process; the file server only
    /// stores the name. Sprite's IPC — including the migration daemon and
    /// Internet protocol server \[Che87\] — runs over these.
    Pseudo {
        /// Host where the serving user process runs.
        server_process_host: HostId,
    },
}

/// Access mode requested at open time. Determines write-sharing, which
/// drives the cache-consistency protocol \[NWO88\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpenMode {
    /// Read-only.
    Read,
    /// Write-only.
    Write,
    /// Read and write.
    ReadWrite,
}

impl OpenMode {
    /// True if the mode permits reading.
    pub fn reads(self) -> bool {
        matches!(self, OpenMode::Read | OpenMode::ReadWrite)
    }

    /// True if the mode permits writing.
    pub fn writes(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::ReadWrite)
    }
}

impl fmt::Display for OpenMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpenMode::Read => "r",
            OpenMode::Write => "w",
            OpenMode::ReadWrite => "rw",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities() {
        assert!(OpenMode::Read.reads() && !OpenMode::Read.writes());
        assert!(!OpenMode::Write.reads() && OpenMode::Write.writes());
        assert!(OpenMode::ReadWrite.reads() && OpenMode::ReadWrite.writes());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FileId::new(3).to_string(), "file3");
        assert_eq!(OpenMode::ReadWrite.to_string(), "rw");
    }
}
