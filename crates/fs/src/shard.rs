//! Namespace sharding: the two-level prefix → server-group map.
//!
//! PR 8 splits the single-authority file service into N server daemons.
//! The name space is still carved into domains by longest-prefix match
//! (exactly as before), but a domain may now be exported by a *group* of
//! servers instead of one: names inside a striped domain are spread across
//! the group by hashing the path **text**. The hash feeds the same
//! [`HostPartition`] round-robin the sharded simulation engine and the
//! sharded host-selection coordinators use, so every layer that partitions
//! by ID agrees on the mapping.
//!
//! Determinism note: the hash is FNV-1a over [`SpritePath::as_str`], never
//! over the interned symbol — symbol numbering depends on interning order,
//! which differs between runs that create paths in different orders. The
//! path text is the same in every run, so shard placement is a pure
//! function of the name and the group size.

use sprite_net::{HostId, HostPartition};

use crate::SpritePath;

/// One exported domain: a prefix and the servers that jointly export it.
///
/// A group of one is the classic single-server domain. A larger group
/// stripes the domain's names across its members; the member list keeps
/// insertion order so `servers[0]` is the stable "anchor" a client's first
/// contact goes through.
#[derive(Debug, Clone)]
pub struct ShardGroup {
    /// The domain prefix (longest-prefix match against open paths).
    pub prefix: SpritePath,
    /// The servers exporting the domain, in registration order.
    pub servers: Vec<HostId>,
}

impl ShardGroup {
    /// The member that owns `path`, by consistent hashing of the path
    /// text through the canonical [`HostPartition`] mapping.
    pub fn owner_of(&self, path: &SpritePath) -> HostId {
        self.servers[self.member_index(path)]
    }

    /// Index into `servers` for `path` (see [`ShardGroup::owner_of`]).
    pub fn member_index(&self, path: &SpritePath) -> usize {
        if self.servers.len() == 1 {
            return 0;
        }
        let n = self.servers.len() as u32;
        let key = (fnv1a64(path.as_str()) % n as u64) as u32;
        HostPartition::new(n, self.servers.len()).shard_of(HostId::new(key))
    }
}

/// FNV-1a over a name's bytes: stable across runs, platforms and
/// interning order.
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The two-level resolution map: longest prefix picks a [`ShardGroup`],
/// the path hash picks the member server.
#[derive(Debug, Clone, Default)]
pub struct ShardMap {
    groups: Vec<ShardGroup>,
}

impl ShardMap {
    /// An empty map (no domains exported).
    pub fn new() -> Self {
        ShardMap::default()
    }

    /// Registers `host` as an exporter of `prefix`. Registering a second
    /// host under the same prefix turns the domain into a striped group;
    /// re-registering an existing member is a no-op.
    pub fn add(&mut self, host: HostId, prefix: SpritePath) {
        if let Some(g) = self.groups.iter_mut().find(|g| g.prefix == prefix) {
            if !g.servers.contains(&host) {
                g.servers.push(host);
            }
            return;
        }
        self.groups.push(ShardGroup {
            prefix,
            servers: vec![host],
        });
        // Longest prefix first, ties by path order for a stable table.
        self.groups.sort_by(|a, b| {
            b.prefix
                .depth()
                .cmp(&a.prefix.depth())
                .then_with(|| a.prefix.cmp(&b.prefix))
        });
    }

    /// The group exporting the domain containing `path`, with its index
    /// in the (stable) group table.
    pub fn group_of(&self, path: &SpritePath) -> Option<(usize, &ShardGroup)> {
        self.groups
            .iter()
            .enumerate()
            .find(|(_, g)| path.starts_with(&g.prefix))
    }

    /// Full route for `path`: group index and the owning member server.
    pub fn route(&self, path: &SpritePath) -> Option<(usize, HostId)> {
        self.group_of(path).map(|(i, g)| (i, g.owner_of(path)))
    }

    /// Group by index (the index [`ShardMap::group_of`] reported).
    pub fn group(&self, index: usize) -> Option<&ShardGroup> {
        self.groups.get(index)
    }

    /// All groups, longest prefix first.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// Number of exported domains.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no domain is exported yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The widest group size — 1 means the namespace is unsharded.
    pub fn max_group_size(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.servers.len())
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn single_server_group_routes_everything_to_it() {
        let mut m = ShardMap::new();
        m.add(h(0), SpritePath::new("/"));
        assert_eq!(m.route(&SpritePath::new("/a/b")), Some((0, h(0))));
        assert_eq!(m.route(&SpritePath::new("/x")), Some((0, h(0))));
    }

    #[test]
    fn longest_prefix_wins_over_group_size() {
        let mut m = ShardMap::new();
        m.add(h(0), SpritePath::new("/"));
        m.add(h(1), SpritePath::new("/"));
        m.add(h(2), SpritePath::new("/swap"));
        let (_, owner) = m.route(&SpritePath::new("/swap/p1")).unwrap();
        assert_eq!(owner, h(2));
        let (gi, g) = m.group_of(&SpritePath::new("/src/a.c")).unwrap();
        assert_eq!(g.servers, vec![h(0), h(1)]);
        assert_eq!(m.group(gi).unwrap().prefix, SpritePath::new("/"));
    }

    #[test]
    fn striped_group_spreads_names_and_is_stable() {
        let mut m = ShardMap::new();
        m.add(h(0), SpritePath::new("/"));
        m.add(h(3), SpritePath::new("/"));
        m.add(h(5), SpritePath::new("/"));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            let p = SpritePath::new(format!("/src/file{i}.c"));
            let (_, owner) = m.route(&p).unwrap();
            // Placement is a pure function of the text: re-resolving agrees.
            assert_eq!(m.route(&p).unwrap().1, owner);
            seen.insert(owner);
        }
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec![h(0), h(3), h(5)],
            "64 names should land on all three members"
        );
    }

    #[test]
    fn duplicate_registration_is_ignored() {
        let mut m = ShardMap::new();
        m.add(h(0), SpritePath::new("/"));
        m.add(h(0), SpritePath::new("/"));
        assert_eq!(m.groups()[0].servers, vec![h(0)]);
        assert_eq!(m.max_group_size(), 1);
    }

    #[test]
    fn hash_is_over_text_not_symbol() {
        // Interning two fresh paths in opposite orders must not change
        // their placement: the hash reads the text.
        let a = fnv1a64("/prop/shard-hash-a");
        let b = fnv1a64("/prop/shard-hash-b");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a64("/prop/shard-hash-a"));
    }
}
