//! Property test: the write-back LRU block cache never loses dirty data,
//! no matter the interleaving of inserts, lookups, evictions, recalls and
//! invalidations — checked against a flat reference model.
//!
//! "Never loses dirty data" means: at any drain point, (bytes in dirty
//! cache blocks) ∪ (bytes previously returned for write-back) equals the
//! reference contents.
//!
//! Cases are generated from [`DetRng`] with a fixed seed (reproducible);
//! the `heavy-tests` feature multiplies the case count.

use sprite_sim::DetHashMap;

use sprite_fs::{BlockAddr, BlockCache, FileKind, OpenMode, SpriteFs, SpritePath};
use sprite_net::HostId;
use sprite_sim::{DetRng, SimTime};

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

/// Mint distinct FileIds through a real SpriteFs (the constructor is
/// intentionally private).
fn mint_file_ids(n: usize) -> Vec<sprite_fs::FileId> {
    let mut net = sprite_net::Transport::new(sprite_net::CostModel::sun3(), 2);
    let mut fs = SpriteFs::new(sprite_fs::FsConfig::default(), 2);
    fs.add_server(HostId::new(0), SpritePath::new("/"));
    let _ = (FileKind::Regular, OpenMode::Read); // exercised elsewhere
    (0..n)
        .map(|i| {
            fs.create(
                &mut net,
                SimTime::ZERO,
                HostId::new(1),
                SpritePath::new(format!("/m/{i}")),
            )
            .unwrap()
            .0
        })
        .collect()
}

#[derive(Debug, Clone)]
enum CacheOp {
    InsertClean { file: u8, block: u8, byte: u8 },
    InsertDirty { file: u8, block: u8, byte: u8 },
    Lookup { file: u8, block: u8 },
    TakeDirty { file: u8 },
    Invalidate { file: u8 },
}

fn cache_op(rng: &mut DetRng) -> CacheOp {
    let file = rng.uniform_u64(3) as u8;
    match rng.pick_index(5) {
        0 => CacheOp::InsertClean {
            file,
            block: rng.uniform_u64(6) as u8,
            byte: rng.uniform_u64(256) as u8,
        },
        1 => CacheOp::InsertDirty {
            file,
            block: rng.uniform_u64(6) as u8,
            byte: rng.uniform_u64(256) as u8,
        },
        2 => CacheOp::Lookup {
            file,
            block: rng.uniform_u64(6) as u8,
        },
        3 => CacheOp::TakeDirty { file },
        _ => CacheOp::Invalidate { file },
    }
}

#[test]
fn dirty_data_is_never_lost() {
    let mut rng = DetRng::seed_from(0xCAC8E);
    for case in 0..cases(128) {
        let nops = 1 + rng.pick_index(79);
        let ops: Vec<CacheOp> = (0..nops).map(|_| cache_op(&mut rng)).collect();

        let files = mint_file_ids(3);
        // Deliberately tiny cache so evictions are constant.
        let mut cache = BlockCache::new(4);
        // Reference: latest bytes written per (file, block), and whether the
        // latest version is safely "at the server" (from eviction/flush) or
        // must still be dirty in the cache.
        let mut latest: DetHashMap<(u8, u8), u8> = DetHashMap::default();
        let mut at_server: DetHashMap<(u8, u8), u8> = DetHashMap::default();
        const V: u64 = 1;

        let note_writeback =
            |addr: BlockAddr,
             data: &[u8],
             files: &[sprite_fs::FileId],
             at_server: &mut DetHashMap<(u8, u8), u8>| {
                let f = files.iter().position(|f| *f == addr.file).unwrap() as u8;
                at_server.insert((f, addr.block as u8), data[0]);
            };

        for op in ops {
            match op {
                CacheOp::InsertClean { file, block, byte } => {
                    // A clean insert models a fetch: only allowed if it
                    // matches the server's copy; use the at_server byte if
                    // known, else this byte becomes the server truth.
                    let b = *at_server.entry((file, block)).or_insert(byte);
                    // Only meaningful if the block is not dirty in cache
                    // (the real FS never refetches over a dirty block).
                    if cache
                        .lookup(
                            BlockAddr {
                                file: files[file as usize],
                                block: block as u64,
                            },
                            V,
                        )
                        .is_none()
                        || latest.get(&(file, block)) == at_server.get(&(file, block))
                    {
                        if let Some((addr, data)) = cache.insert_clean(
                            BlockAddr {
                                file: files[file as usize],
                                block: block as u64,
                            },
                            V,
                            vec![b; 8],
                        ) {
                            note_writeback(addr, &data, &files, &mut at_server);
                        }
                        latest.entry((file, block)).or_insert(b);
                    }
                }
                CacheOp::InsertDirty { file, block, byte } => {
                    if let Some((addr, data)) = cache.insert_dirty(
                        BlockAddr {
                            file: files[file as usize],
                            block: block as u64,
                        },
                        V,
                        vec![byte; 8],
                    ) {
                        note_writeback(addr, &data, &files, &mut at_server);
                    }
                    latest.insert((file, block), byte);
                }
                CacheOp::Lookup { file, block } => {
                    let got = cache.lookup(
                        BlockAddr {
                            file: files[file as usize],
                            block: block as u64,
                        },
                        V,
                    );
                    if let Some(data) = got {
                        // Whatever the cache returns must be either the
                        // latest write or the server's copy.
                        let f = latest.get(&(file, block)).copied();
                        let s = at_server.get(&(file, block)).copied();
                        assert!(
                            Some(data[0]) == f || Some(data[0]) == s,
                            "case {case}: cache returned {} but latest={f:?} server={s:?}",
                            data[0]
                        );
                    }
                }
                CacheOp::TakeDirty { file } => {
                    for (addr, data) in cache.take_dirty_blocks(files[file as usize]) {
                        note_writeback(addr, &data, &files, &mut at_server);
                    }
                }
                CacheOp::Invalidate { file } => {
                    for (addr, data) in cache.invalidate_file(files[file as usize]) {
                        note_writeback(addr, &data, &files, &mut at_server);
                    }
                }
            }
        }
        // Drain everything; afterwards the server must hold every latest
        // byte ever written.
        for f in 0u8..3 {
            for (addr, data) in cache.take_dirty_blocks(files[f as usize]) {
                at_server.insert((f, addr.block as u8), data[0]);
            }
        }
        for ((file, block), byte) in &latest {
            assert_eq!(
                at_server.get(&(*file, *block)),
                Some(byte),
                "case {case}: file {file} block {block}: latest byte lost"
            );
        }
    }
}
