//! The four host-selection architectures of Chapter 6.
//!
//! Sprite needed to answer "which idle host should take this process?" and
//! the thesis compares four ways to organize the answer (Table 6.2):
//!
//! * **shared file** — the original Sprite design: every host writes its
//!   status into one file; selectors read the whole file under a lock. The
//!   file is write-shared, so caching is disabled and every access pounds
//!   the file server.
//! * **central server** — the final design (`migd`): a user-level daemon
//!   reached through a pseudo-device holds the state and the assignment
//!   table; selection and release are one round trip each (56 ms end to end
//!   on DECstation-era hardware \[DO91\]).
//! * **probabilistic distributed** — MOSIX-style \[BS85\]: each host gossips
//!   its load to a few random peers; selection is purely local but the
//!   information is stale, so picks conflict.
//! * **multicast** — Theimer/Lantz-style \[TL88\]: no state at all; ask the
//!   network and take whoever answers. Cheap selections, but every idle
//!   host answers every query, so traffic scales with cluster size.
//!
//! Every implementation counts its messages, its conflicts (picks that turn
//! out stale against ground truth) and its selection latency; experiment
//! E10 tabulates them side by side.

use std::collections::BTreeMap;

use sprite_net::{HostId, RpcError, RpcOp, Transport, CONTROL_BYTES, LOAD_REPORT_BYTES};
use sprite_sim::{DetRng, FcfsResource, OnlineStats, SimDuration, SimTime};

use crate::load::{AvailabilityPolicy, HostInfo};

/// Counters every selector keeps.
#[derive(Debug, Clone, Default)]
pub struct SelectorStats {
    /// Selection requests received.
    pub requests: u64,
    /// Requests granted a host.
    pub granted: u64,
    /// Requests denied (no host available).
    pub denied: u64,
    /// Picks that proved stale against ground truth and were retried.
    pub conflicts: u64,
    /// Control messages sent (status updates + selection traffic).
    pub messages: u64,
    /// End-to-end selection latency.
    pub select_latency: OnlineStats,
    /// Age of the granted host's cached entry at grant time (seconds) —
    /// the staleness the architecture acted on. Selectors without
    /// age-stamped state leave it empty.
    pub info_age: OnlineStats,
}

/// A host-selection architecture.
///
/// The simulation driver calls [`HostSelector::report`] periodically for
/// each host (the per-host load daemon), [`HostSelector::select`] when a
/// process wants an idle host, and [`HostSelector::release`] when it gives
/// one back. `truth` at selection time is the ground-truth host state the
/// architecture may only have a stale view of; implementations use it to
/// detect (and count) conflicts, never to cheat their own view.
///
/// # Examples
///
/// ```
/// use sprite_hostsel::{AvailabilityPolicy, CentralServer, HostInfo, HostSelector};
/// use sprite_net::{CostModel, HostId, Transport};
/// use sprite_sim::{SimDuration, SimTime};
///
/// let mut net = Transport::new(CostModel::sun3(), 4);
/// let mut migd = CentralServer::new(HostId::new(0), AvailabilityPolicy::default());
/// // Load daemons report in...
/// let world: Vec<HostInfo> = (0..4)
///     .map(|i| HostInfo::idle_host(HostId::new(i), SimDuration::from_secs(600)))
///     .collect();
/// let mut t = SimTime::ZERO;
/// for info in &world {
///     t = migd.report(&mut net, t, *info);
/// }
/// // ...and a user on host 1 asks for an idle machine.
/// let (host, _t) = migd.select(&mut net, t, HostId::new(1), &world);
/// assert!(host.is_some());
/// ```
pub trait HostSelector {
    /// Architecture name for tables.
    fn name(&self) -> &'static str;

    /// Periodic status report from `info.host`'s load daemon.
    fn report(&mut self, net: &mut Transport, now: SimTime, info: HostInfo) -> SimTime;

    /// Picks one available host for `requester`, or `None`.
    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime);

    /// Returns `host` to the pool.
    fn release(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime;

    /// Counters so far.
    fn stats(&self) -> &SelectorStats;
}

pub(crate) fn truth_available(
    truth: &[HostInfo],
    policy: &AvailabilityPolicy,
    host: HostId,
) -> bool {
    truth
        .iter()
        .find(|i| i.host == host)
        .map(|i| policy.is_available(i))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Central server (migd)
// ---------------------------------------------------------------------------

/// The centralized migration daemon, Sprite's final architecture.
#[derive(Debug)]
pub struct CentralServer {
    server: HostId,
    policy: AvailabilityPolicy,
    /// Host state plus the stamp of its last refresh, so grants can report
    /// the information age they acted on.
    table: BTreeMap<HostId, (HostInfo, SimTime)>,
    assigned: BTreeMap<HostId, HostId>,
    /// What each host last told the server, to suppress no-change traffic.
    last_reported_available: BTreeMap<HostId, bool>,
    /// Hosts currently held, per requester (for fair allocation).
    holdings: BTreeMap<HostId, u32>,
    /// Cap on hosts one requester may hold at once, if fairness is on.
    fair_share: Option<u32>,
    cpu: FcfsResource,
    per_request_service: SimDuration,
    stats: SelectorStats,
}

impl CentralServer {
    /// Creates the daemon on `server`.
    pub fn new(server: HostId, policy: AvailabilityPolicy) -> Self {
        CentralServer {
            server,
            policy,
            table: BTreeMap::new(),
            assigned: BTreeMap::new(),
            last_reported_available: BTreeMap::new(),
            holdings: BTreeMap::new(),
            fair_share: None,
            cpu: FcfsResource::new(),
            per_request_service: SimDuration::from_micros(500),
            stats: SelectorStats::default(),
        }
    }

    /// Hosts currently assigned out.
    pub fn assigned_count(&self) -> usize {
        self.assigned.len()
    }

    /// Caps how many hosts one requester may hold at once. The thesis's
    /// `migd` allocated hosts fairly when demand exceeded supply, so one
    /// user's 100-way pmake could not starve everyone else (Ch. 6).
    pub fn set_fair_share(&mut self, limit: u32) {
        self.fair_share = Some(limit);
    }

    /// Hosts `requester` currently holds.
    pub fn held_by(&self, requester: HostId) -> u32 {
        self.holdings.get(&requester).copied().unwrap_or(0)
    }

    fn round_trip(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        from: HostId,
    ) -> Result<SimTime, RpcError> {
        self.stats.messages += 2;
        if from == self.server {
            Ok(self.cpu.acquire(
                now + net.cost().context_switch * 2,
                self.per_request_service,
            ))
        } else {
            Ok(net
                .send_with_service(
                    RpcOp::HostselQuery,
                    now,
                    from,
                    self.server,
                    self.per_request_service,
                    Some(&mut self.cpu),
                )?
                .done)
        }
    }
}

impl HostSelector for CentralServer {
    fn name(&self) -> &'static str {
        "central-server"
    }

    fn report(&mut self, net: &mut Transport, now: SimTime, info: HostInfo) -> SimTime {
        // Only idle/busy *transitions* are reported — Theimer and Lantz
        // showed a central server scales to thousands of clients when
        // updates are limited this way [TL88].
        let avail = self.policy.is_available(&info);
        let changed = self
            .last_reported_available
            .get(&info.host)
            .map(|prev| *prev != avail)
            .unwrap_or(true);
        if !changed {
            // Still refresh our own table silently (the daemon's timer
            // fires locally on the reporting host at no network cost).
            self.table.insert(info.host, (info, now));
            return now;
        }
        if info.host == self.server {
            self.last_reported_available.insert(info.host, avail);
            self.table.insert(info.host, (info, now));
            return now;
        }
        self.stats.messages += 1;
        match net.send_datagram(
            RpcOp::HostselReport,
            now,
            info.host,
            self.server,
            LOAD_REPORT_BYTES,
        ) {
            Ok(d) => {
                self.last_reported_available.insert(info.host, avail);
                self.table.insert(info.host, (info, now));
                d.done
            }
            // The transition report never reached the daemon: its table
            // keeps the stale entry, and the host will re-announce the
            // (still unacknowledged) transition on its next timer tick.
            Err(e) => e.at(),
        }
    }

    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime) {
        self.stats.requests += 1;
        let t = match self.round_trip(net, now, requester) {
            Ok(t) => t,
            // The daemon is unreachable: the request is denied outright.
            Err(e) => {
                self.stats.denied += 1;
                let t = e.at();
                self.stats
                    .select_latency
                    .record_duration(t.elapsed_since(now));
                return (None, t);
            }
        };
        // Fair allocation: a requester at its share gets denied before the
        // server even searches.
        if let Some(limit) = self.fair_share {
            if self.held_by(requester) >= limit {
                self.stats.denied += 1;
                self.stats
                    .select_latency
                    .record_duration(t.elapsed_since(now));
                return (None, t);
            }
        }
        // Longest-idle available host not already assigned out; Mutka and
        // Livny say long-idle hosts stay idle [ML87].
        let mut candidates: Vec<(HostInfo, SimTime)> = self
            .table
            .values()
            .filter(|(i, _)| {
                i.host != requester
                    && self.policy.is_available(i)
                    && !self.assigned.contains_key(&i.host)
            })
            .copied()
            .collect();
        candidates.sort_by(|a, b| b.0.idle.cmp(&a.0.idle).then(a.0.host.cmp(&b.0.host)));
        for (c, written) in candidates {
            if truth_available(truth, &self.policy, c.host) {
                self.assigned.insert(c.host, requester);
                *self.holdings.entry(requester).or_insert(0) += 1;
                // Flood prevention: count the incoming process against the
                // host's load before it arrives [BSW89].
                if let Some((e, _)) = self.table.get_mut(&c.host) {
                    e.load += 1.0;
                }
                self.stats
                    .info_age
                    .record_duration(now.saturating_elapsed_since(written));
                self.stats.granted += 1;
                self.stats
                    .select_latency
                    .record_duration(t.elapsed_since(now));
                return (Some(c.host), t);
            }
            // The central table said available but the world moved on.
            self.stats.conflicts += 1;
        }
        self.stats.denied += 1;
        self.stats
            .select_latency
            .record_duration(t.elapsed_since(now));
        (None, t)
    }

    fn release(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime {
        let t = match self.round_trip(net, now, requester) {
            Ok(t) => t,
            // A lost release leaves the daemon's table stale: the host
            // stays assigned out until somebody reaches the server again.
            Err(e) => return e.at(),
        };
        self.assigned.remove(&host);
        if let Some(held) = self.holdings.get_mut(&requester) {
            *held = held.saturating_sub(1);
        }
        if let Some((e, _)) = self.table.get_mut(&host) {
            e.load = (e.load - 1.0).max(0.0);
        }
        t
    }

    fn stats(&self) -> &SelectorStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// Shared file
// ---------------------------------------------------------------------------

/// The original Sprite design: host state in one write-shared file.
#[derive(Debug)]
pub struct SharedFileBoard {
    file_server: HostId,
    policy: AvailabilityPolicy,
    entries: BTreeMap<HostId, (HostInfo, SimTime)>,
    assigned: BTreeMap<HostId, HostId>,
    server_cpu: FcfsResource,
    entry_bytes: u64,
    stats: SelectorStats,
}

impl SharedFileBoard {
    /// Creates the board stored on `file_server`.
    pub fn new(file_server: HostId, policy: AvailabilityPolicy) -> Self {
        SharedFileBoard {
            file_server,
            policy,
            entries: BTreeMap::new(),
            assigned: BTreeMap::new(),
            server_cpu: FcfsResource::new(),
            entry_bytes: CONTROL_BYTES,
            stats: SelectorStats::default(),
        }
    }

    fn server_rpc(
        &mut self,
        net: &mut Transport,
        op: RpcOp,
        now: SimTime,
        from: HostId,
        req: u64,
        reply: u64,
    ) -> Result<SimTime, RpcError> {
        self.stats.messages += 2;
        let service = net.cost().cache_block_op;
        if from == self.file_server {
            Ok(self.server_cpu.acquire(now, service))
        } else {
            Ok(net
                .send_sized(
                    op,
                    now,
                    from,
                    self.file_server,
                    req,
                    reply,
                    service,
                    Some(&mut self.server_cpu),
                )?
                .done)
        }
    }

    /// The fallible body of [`HostSelector::select`]: lock, read the whole
    /// board, pick, write the assignment, unlock. Any RPC that cannot reach
    /// the file server aborts the sequence (the lock lease simply expires).
    fn try_select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> Result<(Option<HostId>, SimTime), RpcError> {
        // Lock the file.
        let mut t = self.server_rpc(
            net,
            RpcOp::HostselQuery,
            now,
            requester,
            CONTROL_BYTES,
            CONTROL_BYTES,
        )?;
        // Read the whole table, uncached, a block at a time.
        let total = self.entries.len() as u64 * self.entry_bytes;
        let blocks = total.div_ceil(sprite_net::PAGE_SIZE).max(1);
        for _ in 0..blocks {
            t = self.server_rpc(
                net,
                RpcOp::HostselQuery,
                t,
                requester,
                CONTROL_BYTES,
                sprite_net::PAGE_SIZE,
            )?;
        }
        let mut candidates: Vec<HostInfo> = self
            .entries
            .values()
            .map(|(i, _)| *i)
            .filter(|i| {
                i.host != requester
                    && self.policy.is_available(i)
                    && !self.assigned.contains_key(&i.host)
            })
            .collect();
        candidates.sort_by(|a, b| b.idle.cmp(&a.idle).then(a.host.cmp(&b.host)));
        let mut chosen = None;
        for c in candidates {
            if truth_available(truth, &self.policy, c.host) {
                chosen = Some(c.host);
                break;
            }
            self.stats.conflicts += 1;
        }
        if let Some(host) = chosen {
            // Write the assignment entry, then unlock. The entry exists
            // only once the write reaches the board.
            t = self.server_rpc(
                net,
                RpcOp::HostselQuery,
                t,
                requester,
                self.entry_bytes + CONTROL_BYTES,
                CONTROL_BYTES,
            )?;
            self.assigned.insert(host, requester);
        }
        // Unlock.
        t = self.server_rpc(
            net,
            RpcOp::HostselQuery,
            t,
            requester,
            CONTROL_BYTES,
            CONTROL_BYTES,
        )?;
        Ok((chosen, t))
    }
}

impl HostSelector for SharedFileBoard {
    fn name(&self) -> &'static str {
        "shared-file"
    }

    fn report(&mut self, net: &mut Transport, now: SimTime, info: HostInfo) -> SimTime {
        // The file is concurrently write-shared by every host, so client
        // caching is off and *every* update is a server write.
        match self.server_rpc(
            net,
            RpcOp::HostselReport,
            now,
            info.host,
            self.entry_bytes + CONTROL_BYTES,
            CONTROL_BYTES,
        ) {
            Ok(t) => {
                self.entries.insert(info.host, (info, now));
                t
            }
            // The write never reached the board: the file keeps the host's
            // old (stale) entry until a later report gets through.
            Err(e) => e.at(),
        }
    }

    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime) {
        self.stats.requests += 1;
        let (chosen, t) = match self.try_select(net, now, requester, truth) {
            Ok(r) => r,
            // Somewhere in the lock/read/write/unlock chain the file
            // server became unreachable: the selection is denied.
            Err(e) => (None, e.at()),
        };
        if chosen.is_some() {
            self.stats.granted += 1;
        } else {
            self.stats.denied += 1;
        }
        self.stats
            .select_latency
            .record_duration(t.elapsed_since(now));
        (chosen, t)
    }

    fn release(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime {
        match self.server_rpc(
            net,
            RpcOp::HostselRelease,
            now,
            requester,
            self.entry_bytes + CONTROL_BYTES,
            CONTROL_BYTES,
        ) {
            Ok(t) => {
                self.assigned.remove(&host);
                t
            }
            // The board still shows the host as assigned; it stays
            // unselectable until a successful write clears the entry.
            Err(e) => e.at(),
        }
    }

    fn stats(&self) -> &SelectorStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// Probabilistic distributed (MOSIX)
// ---------------------------------------------------------------------------

/// MOSIX-style gossip: each host pushes its load to a few random peers and
/// selects from its own (stale) table \[BS85\].
#[derive(Debug)]
pub struct Probabilistic {
    policy: AvailabilityPolicy,
    hosts: usize,
    fanout: usize,
    /// tables[h] = what host h believes about its peers.
    tables: Vec<BTreeMap<HostId, (HostInfo, SimTime)>>,
    rng: DetRng,
    /// Entries older than this are distrusted entirely.
    max_age: SimDuration,
    stats: SelectorStats,
}

impl Probabilistic {
    /// Creates the gossip fabric for `hosts` hosts, each updating `fanout`
    /// random peers per report.
    pub fn new(hosts: usize, fanout: usize, policy: AvailabilityPolicy, seed: u64) -> Self {
        Probabilistic {
            policy,
            hosts,
            fanout: fanout.max(1),
            tables: vec![BTreeMap::new(); hosts],
            rng: DetRng::seed_from(seed),
            max_age: SimDuration::from_secs(20),
            stats: SelectorStats::default(),
        }
    }
}

impl HostSelector for Probabilistic {
    fn name(&self) -> &'static str {
        "probabilistic"
    }

    fn report(&mut self, net: &mut Transport, now: SimTime, info: HostInfo) -> SimTime {
        let mut t = now;
        for _ in 0..self.fanout {
            let peer = HostId::new(self.rng.uniform_u64(self.hosts as u64) as u32);
            if peer == info.host {
                continue;
            }
            self.stats.messages += 1;
            match net.send_datagram(RpcOp::HostselReport, t, info.host, peer, LOAD_REPORT_BYTES) {
                Ok(d) => {
                    t = d.done;
                    self.tables[peer.index()].insert(info.host, (info, now));
                }
                // The gossip packet vanished: the peer keeps its old entry,
                // which will age out if no later round gets through.
                Err(e) => t = e.at(),
            }
        }
        t
    }

    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime) {
        let _ = net; // selection is purely local
        self.stats.requests += 1;
        let t = now + SimDuration::from_micros(200); // table scan
        let table = &mut self.tables[requester.index()];
        let mut candidates: Vec<(HostInfo, SimTime)> = table
            .values()
            .filter(|(i, written)| {
                i.host != requester
                    && now.saturating_elapsed_since(*written) <= self.max_age
                    && self.policy.is_available(i)
            })
            .map(|(i, w)| (*i, *w))
            .collect();
        // Prefer fresher data, then idler hosts: aging gives more weight to
        // recent reports, exactly as Barak and Shiloh describe [BS85].
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(b.0.idle.cmp(&a.0.idle))
                .then(a.0.host.cmp(&b.0.host))
        });
        for (c, _) in candidates {
            if truth_available(truth, &self.policy, c.host) {
                // Anticipate load locally so this requester will not dump
                // its next process on the same host.
                if let Some((e, _)) = table.get_mut(&c.host) {
                    e.load += 1.0;
                }
                self.stats.granted += 1;
                self.stats
                    .select_latency
                    .record_duration(t.elapsed_since(now));
                return (Some(c.host), t);
            }
            self.stats.conflicts += 1;
        }
        self.stats.denied += 1;
        self.stats
            .select_latency
            .record_duration(t.elapsed_since(now));
        (None, t)
    }

    fn release(
        &mut self,
        _net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime {
        if let Some((e, _)) = self.tables[requester.index()].get_mut(&host) {
            e.load = (e.load - 1.0).max(0.0);
        }
        now
    }

    fn stats(&self) -> &SelectorStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// Multicast query
// ---------------------------------------------------------------------------

/// Stateless multicast: ask everyone, take whoever answers first \[TL88\].
#[derive(Debug)]
pub struct MulticastQuery {
    policy: AvailabilityPolicy,
    /// Hosts already handed out (the requesters remember; the network does
    /// not — this mirrors the paper's observation that the querying
    /// approach has "no global information about previous assignments").
    claimed: BTreeMap<HostId, HostId>,
    stats: SelectorStats,
}

impl MulticastQuery {
    /// Creates the stateless selector.
    pub fn new(policy: AvailabilityPolicy) -> Self {
        MulticastQuery {
            policy,
            claimed: BTreeMap::new(),
            stats: SelectorStats::default(),
        }
    }
}

impl HostSelector for MulticastQuery {
    fn name(&self) -> &'static str {
        "multicast"
    }

    fn report(&mut self, _net: &mut Transport, now: SimTime, _info: HostInfo) -> SimTime {
        // No advance state: nothing to report.
        now
    }

    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime) {
        self.stats.requests += 1;
        // One query on the wire...
        self.stats.messages += 1;
        let mut t =
            match net.send_multicast(RpcOp::HostselMulticast, now, requester, LOAD_REPORT_BYTES) {
                Ok(d) => d.done,
                // Nobody heard the query: nobody answers.
                Err(e) => {
                    self.stats.denied += 1;
                    let t = e.at();
                    self.stats
                        .select_latency
                        .record_duration(t.elapsed_since(now));
                    return (None, t);
                }
            };
        // ...and every available host replies. This reply implosion is what
        // limits the design to a few hundred hosts [TL88].
        let mut responders: Vec<HostId> = truth
            .iter()
            .filter(|i| {
                i.host != requester
                    && self.policy.is_available(i)
                    && !self.claimed.contains_key(&i.host)
            })
            .map(|i| i.host)
            .collect();
        responders.sort();
        let mut heard: Vec<HostId> = Vec::new();
        for r in &responders {
            self.stats.messages += 1;
            match net.send_datagram(RpcOp::HostselReply, t, *r, requester, CONTROL_BYTES) {
                Ok(d) => {
                    t = d.done;
                    heard.push(*r);
                }
                // A reply that never arrives drops that host from the
                // requester's view of who volunteered.
                Err(e) => t = e.at(),
            }
        }
        let chosen = heard.first().copied();
        match chosen {
            Some(host) => {
                self.claimed.insert(host, requester);
                self.stats.granted += 1;
            }
            None => self.stats.denied += 1,
        }
        self.stats
            .select_latency
            .record_duration(t.elapsed_since(now));
        (chosen, t)
    }

    fn release(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime {
        // The claim lives in the requester's memory, so it is forgotten
        // even if the courtesy release datagram below is lost.
        self.claimed.remove(&host);
        if requester == host {
            return now;
        }
        self.stats.messages += 1;
        match net.send_datagram(RpcOp::HostselRelease, now, requester, host, CONTROL_BYTES) {
            Ok(d) => d.done,
            Err(e) => e.at(),
        }
    }

    fn stats(&self) -> &SelectorStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_net::CostModel;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn net(hosts: usize) -> Transport {
        Transport::new(CostModel::sun3(), hosts)
    }

    /// Ground truth: hosts 1..n idle for (60 + i) seconds; host 0 busy.
    fn truth(n: u32) -> Vec<HostInfo> {
        (0..n)
            .map(|i| {
                if i == 0 {
                    HostInfo {
                        host: h(0),
                        load: 2.0,
                        idle: SimDuration::ZERO,
                        console_active: true,
                    }
                } else {
                    HostInfo::idle_host(h(i), SimDuration::from_secs(60 + i as u64))
                }
            })
            .collect()
    }

    fn feed_reports<S: HostSelector + ?Sized>(s: &mut S, net: &mut Transport, truth: &[HostInfo]) {
        let mut t = SimTime::ZERO;
        for info in truth {
            t = s.report(net, t, *info);
        }
    }

    fn selectors(n: usize) -> Vec<Box<dyn HostSelector>> {
        let policy = AvailabilityPolicy::default();
        vec![
            Box::new(CentralServer::new(h(0), policy)),
            Box::new(SharedFileBoard::new(h(0), policy)),
            Box::new(Probabilistic::new(n, 4, policy, 42)),
            Box::new(MulticastQuery::new(policy)),
            Box::new(crate::ShardedCoordinator::new(n, 2, policy)),
            Box::new(crate::GossipDissemination::new(n, 4, 8, policy, 42)),
        ]
    }

    #[test]
    fn every_architecture_finds_an_idle_host() {
        let world = truth(8);
        for mut s in selectors(8) {
            let mut n = net(8);
            // Gossip needs several rounds to spread information.
            for _ in 0..8 {
                feed_reports(s.as_mut(), &mut n, &world);
            }
            let (pick, t) = s.select(&mut n, SimTime::ZERO, h(1), &world);
            let pick = pick.unwrap_or_else(|| panic!("{} found no host", s.name()));
            assert_ne!(pick, h(0), "{}: busy host must not be picked", s.name());
            assert_ne!(pick, h(1), "{}: requester must not self-select", s.name());
            assert!(t >= SimTime::ZERO);
            assert_eq!(s.stats().granted, 1, "{}", s.name());
        }
    }

    #[test]
    fn no_architecture_double_assigns() {
        let world = truth(5); // 4 available hosts (2,3,4 + ...), requester h1
        for mut s in selectors(5) {
            let mut n = net(5);
            for _ in 0..8 {
                feed_reports(s.as_mut(), &mut n, &world);
            }
            let mut picked = sprite_sim::DetHashSet::default();
            let mut t = SimTime::ZERO;
            loop {
                let (pick, t2) = s.select(&mut n, t, h(1), &world);
                t = t2;
                match pick {
                    Some(p) => assert!(picked.insert(p), "{} double-assigned {p}", s.name()),
                    None => break,
                }
                if picked.len() > 5 {
                    panic!("{} granted more hosts than exist", s.name());
                }
            }
            assert!(
                !picked.is_empty(),
                "{} should grant at least one host",
                s.name()
            );
        }
    }

    #[test]
    fn released_hosts_become_selectable_again() {
        let world = truth(3); // only h2 is available
        for mut s in selectors(3) {
            let mut n = net(3);
            for _ in 0..8 {
                feed_reports(s.as_mut(), &mut n, &world);
            }
            let (p1, t) = s.select(&mut n, SimTime::ZERO, h(1), &world);
            assert_eq!(p1, Some(h(2)), "{}", s.name());
            let (none, t) = s.select(&mut n, t, h(1), &world);
            assert_eq!(none, None, "{}: the only host is taken", s.name());
            let t = s.release(&mut n, t, h(1), h(2));
            // Refresh state (central server needs no refresh; gossip does).
            for _ in 0..8 {
                feed_reports(s.as_mut(), &mut n, &world);
            }
            let (p2, _) = s.select(&mut n, t, h(1), &world);
            assert_eq!(p2, Some(h(2)), "{} must reissue released host", s.name());
        }
    }

    #[test]
    fn stale_information_causes_conflicts_not_bad_grants() {
        // Tell the selectors the world is idle, then flip ground truth.
        let idle_world = truth(6);
        let mut busy_world = idle_world.clone();
        for i in &mut busy_world {
            i.console_active = true;
            i.idle = SimDuration::ZERO;
        }
        for mut s in selectors(6) {
            if s.name() == "multicast" {
                continue; // stateless: it has no stale view by construction
            }
            let mut n = net(6);
            for _ in 0..8 {
                feed_reports(s.as_mut(), &mut n, &idle_world);
            }
            let (pick, _) = s.select(&mut n, SimTime::ZERO, h(1), &busy_world);
            assert_eq!(pick, None, "{} granted an unavailable host", s.name());
            assert!(
                s.stats().conflicts > 0,
                "{} should have recorded conflicts",
                s.name()
            );
        }
    }

    #[test]
    fn multicast_message_count_scales_with_available_hosts() {
        let world = truth(40);
        let mut s = MulticastQuery::new(AvailabilityPolicy::default());
        let mut n = net(40);
        s.select(&mut n, SimTime::ZERO, h(1), &world);
        // 1 query + 38 replies (39 idle hosts minus the requester... host 0 busy).
        assert_eq!(s.stats().messages, 1 + 38);
    }

    #[test]
    fn central_server_suppresses_no_change_updates() {
        let world = truth(10);
        let mut s = CentralServer::new(h(0), AvailabilityPolicy::default());
        let mut n = net(10);
        feed_reports(&mut s, &mut n, &world);
        let first = s.stats().messages;
        feed_reports(&mut s, &mut n, &world);
        assert_eq!(
            s.stats().messages,
            first,
            "identical state must produce no new update traffic"
        );
    }

    #[test]
    fn central_server_prefers_longest_idle() {
        let world = truth(6);
        let mut s = CentralServer::new(h(0), AvailabilityPolicy::default());
        let mut n = net(6);
        feed_reports(&mut s, &mut n, &world);
        let (pick, _) = s.select(&mut n, SimTime::ZERO, h(1), &world);
        assert_eq!(pick, Some(h(5)), "host 5 has been idle longest");
    }

    #[test]
    fn burst_of_requests_cannot_flood_one_host() {
        // Ten requests arrive before any load report could reflect the
        // earlier grants: anticipation (flood prevention [BSW89]) must
        // spread them anyway.
        let world = truth(12);
        let mut s = CentralServer::new(h(0), AvailabilityPolicy::default());
        let mut n = net(12);
        feed_reports(&mut s, &mut n, &world);
        let mut granted = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let (pick, t2) = s.select(&mut n, t, h(1), &world);
            t = t2;
            if let Some(p) = pick {
                granted.push(p);
            }
        }
        let unique: sprite_sim::DetHashSet<_> = granted.iter().collect();
        assert_eq!(unique.len(), granted.len(), "each grant a distinct host");
        assert!(granted.len() >= 9, "ten idle hosts minus the requester");
    }

    #[test]
    fn probabilistic_tables_age_out_stale_entries() {
        let world = truth(6);
        let mut s = Probabilistic::new(6, 5, AvailabilityPolicy::default(), 17);
        let mut n = net(6);
        for _ in 0..8 {
            feed_reports(&mut s, &mut n, &world);
        }
        // Far in the future every gossip entry is older than max_age: the
        // selector must refuse rather than act on ancient information.
        let much_later = SimTime::ZERO + SimDuration::from_secs(3600);
        let (pick, _) = s.select(&mut n, much_later, h(1), &world);
        assert_eq!(pick, None, "aged-out entries must not be trusted");
    }

    #[test]
    fn fair_share_prevents_host_hogging() {
        let world = truth(12); // 11 available hosts
        let mut s = CentralServer::new(h(0), AvailabilityPolicy::default());
        s.set_fair_share(3);
        let mut n = net(12);
        feed_reports(&mut s, &mut n, &world);
        let mut t = SimTime::ZERO;
        let mut got = Vec::new();
        // Requester h1 asks for everything.
        for _ in 0..6 {
            let (pick, t2) = s.select(&mut n, t, h(1), &world);
            t = t2;
            if let Some(p) = pick {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 3, "capped at the fair share");
        assert_eq!(s.held_by(h(1)), 3);
        // A second requester is unaffected.
        let (pick, t2) = s.select(&mut n, t, h(2), &world);
        assert!(pick.is_some());
        // Releasing makes room under the cap again.
        let t3 = s.release(&mut n, t2, h(1), got[0]);
        let (pick2, _) = s.select(&mut n, t3, h(1), &world);
        assert!(pick2.is_some());
        assert_eq!(s.held_by(h(1)), 3);
    }

    #[test]
    fn lost_load_reports_leave_the_central_table_stale() {
        use sprite_net::PartitionPolicy;

        let mut world = truth(4);
        world[2].idle = SimDuration::from_secs(600); // most attractive host
        let mut s = CentralServer::new(h(0), AvailabilityPolicy::default());
        let mut n = net(4);
        feed_reports(&mut s, &mut n, &world);

        // Cut host 2 off, then have it report that its owner came back.
        let start = SimTime::ZERO + SimDuration::from_secs(1);
        n.set_policy(Box::new(PartitionPolicy::new(
            vec![h(2)],
            start,
            start + SimDuration::from_secs(3600),
        )));
        world[2] = HostInfo {
            host: h(2),
            load: 3.0,
            idle: SimDuration::ZERO,
            console_active: true,
        };
        let t = s.report(&mut n, start, world[2]);

        // The transition report was lost: the daemon still advertises the
        // now-busy host, tries it first, and pays a conflict against
        // ground truth instead of granting it.
        let before = s.stats().conflicts;
        let (pick, _) = s.select(&mut n, t, h(1), &world);
        assert!(pick.is_some(), "another idle host exists");
        assert_ne!(pick, Some(h(2)), "ground truth vetoes the stale entry");
        assert!(
            s.stats().conflicts > before,
            "the stale advertisement must cost a conflict"
        );
    }

    #[test]
    fn shared_file_reads_grow_with_cluster_size() {
        let small = truth(8);
        let big = truth(250);
        let mut msgs = Vec::new();
        for world in [&small, &big] {
            let mut s = SharedFileBoard::new(h(0), AvailabilityPolicy::default());
            let mut n = net(world.len());
            feed_reports(&mut s, &mut n, world);
            let before = s.stats().messages;
            s.select(&mut n, SimTime::ZERO, h(1), world);
            msgs.push(s.stats().messages - before);
        }
        assert!(
            msgs[1] > msgs[0],
            "reading a bigger board must cost more messages: {msgs:?}"
        );
    }
}
