//! Load metrics and idle-host detection.
//!
//! Sprite considered a workstation *available* when its owner had not
//! touched keyboard or mouse for a while and its runnable-process load was
//! low. Mutka and Livny's observation \[ML87\] — hosts idle a long time tend
//! to stay idle — motivates ranking candidates by idle time.

use sprite_net::HostId;
use sprite_sim::{SimDuration, SimTime};

/// An exponentially-decaying average of the runnable-process count, like the
/// UNIX one-minute load average.
///
/// # Examples
///
/// ```
/// use sprite_hostsel::LoadAverage;
/// use sprite_sim::{SimDuration, SimTime};
///
/// let mut load = LoadAverage::new(SimDuration::from_secs(60));
/// let mut t = SimTime::ZERO;
/// for _ in 0..300 {
///     t += SimDuration::from_secs(1);
///     load.sample(t, 2.0);
/// }
/// assert!((load.value() - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct LoadAverage {
    tau: f64,
    value: f64,
    last: Option<SimTime>,
}

impl LoadAverage {
    /// Creates a load average with time constant `tau`.
    pub fn new(tau: SimDuration) -> Self {
        LoadAverage {
            tau: tau.as_secs_f64().max(1e-9),
            value: 0.0,
            last: None,
        }
    }

    /// Feeds one sample of the instantaneous runnable count.
    pub fn sample(&mut self, now: SimTime, runnable: f64) {
        match self.last {
            None => {
                self.value = runnable;
            }
            Some(prev) => {
                let dt = now.saturating_elapsed_since(prev).as_secs_f64();
                let alpha = (-dt / self.tau).exp();
                self.value = self.value * alpha + runnable * (1.0 - alpha);
            }
        }
        self.last = Some(now);
    }

    /// The current smoothed load.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Adds anticipated load for processes about to arrive — MOSIX-style
    /// flood prevention \[BSW89\]: a host that just accepted work reports
    /// itself busier than it has yet become.
    pub fn anticipate(&mut self, incoming: f64) {
        self.value += incoming;
    }
}

/// A snapshot of one host's availability-relevant state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostInfo {
    /// Which host.
    pub host: HostId,
    /// Smoothed runnable-process load.
    pub load: f64,
    /// Time since the last keyboard/mouse input.
    pub idle: SimDuration,
    /// Whether the owner is actively at the console.
    pub console_active: bool,
}

impl HostInfo {
    /// A fully-idle snapshot, for tests and initialization.
    pub fn idle_host(host: HostId, idle: SimDuration) -> Self {
        HostInfo {
            host,
            load: 0.0,
            idle,
            console_active: false,
        }
    }
}

/// When a host counts as an eligible migration target.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityPolicy {
    /// Minimum input-idle time (Sprite waited on the order of 30 s so a
    /// briefly-pausing user did not lose the machine).
    pub min_idle: SimDuration,
    /// Maximum smoothed load.
    pub max_load: f64,
}

impl Default for AvailabilityPolicy {
    fn default() -> Self {
        AvailabilityPolicy {
            min_idle: SimDuration::from_secs(30),
            max_load: 0.30,
        }
    }
}

impl AvailabilityPolicy {
    /// Does `info` describe an available host?
    pub fn is_available(&self, info: &HostInfo) -> bool {
        !info.console_active && info.idle >= self.min_idle && info.load <= self.max_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn first_sample_initializes() {
        let mut l = LoadAverage::new(SimDuration::from_secs(60));
        l.sample(t(0), 3.0);
        assert_eq!(l.value(), 3.0);
    }

    #[test]
    fn decays_toward_new_level() {
        let mut l = LoadAverage::new(SimDuration::from_secs(60));
        l.sample(t(0), 4.0);
        for s in 1..=60 {
            l.sample(t(s), 0.0);
        }
        // After one time constant the old level should have decayed to ~37%.
        assert!(l.value() < 4.0 * 0.45, "value {}", l.value());
        assert!(l.value() > 4.0 * 0.25, "value {}", l.value());
    }

    #[test]
    fn anticipation_raises_load_immediately() {
        let mut l = LoadAverage::new(SimDuration::from_secs(60));
        l.sample(t(0), 0.0);
        l.anticipate(1.0);
        assert!(l.value() >= 1.0);
    }

    #[test]
    fn availability_policy_thresholds() {
        let p = AvailabilityPolicy::default();
        let mut info = HostInfo::idle_host(HostId::new(1), SimDuration::from_secs(60));
        assert!(p.is_available(&info));
        info.console_active = true;
        assert!(!p.is_available(&info));
        info.console_active = false;
        info.idle = SimDuration::from_secs(10);
        assert!(!p.is_available(&info), "recently-touched keyboard");
        info.idle = SimDuration::from_secs(60);
        info.load = 1.5;
        assert!(!p.is_available(&info), "loaded host");
    }
}
