//! Bounded, age-stamped load caches and the allocation-free ranking fast
//! path shared by the decentralized selection architectures.
//!
//! The centralized selectors keep `BTreeMap` tables and build a fresh
//! `Vec` of candidates per query — fine for one daemon, fatal for a
//! per-host cache at 10 000 hosts. [`LoadCache`] is a fixed-slot array
//! (no hashing, no allocation after construction): inserts refresh an
//! existing entry in place or overwrite the *stalest* slot when full, and
//! stale entries are never eagerly evicted — readers simply skip anything
//! older than their trust horizon, the same epoch/age discipline the
//! fault layer uses for stale load reports. [`Ranker`] is the matching
//! query side: one reusable scratch buffer, sorted in place, with a
//! growth counter so benchmarks can assert the steady state allocates
//! nothing.

use sprite_net::HostId;
use sprite_sim::{SimDuration, SimTime};

use crate::load::{AvailabilityPolicy, HostInfo};

/// One cached observation of a peer's load state.
#[derive(Debug, Clone, Copy)]
pub struct CacheEntry {
    /// The observed state.
    pub info: HostInfo,
    /// When the origin host measured it (not when it arrived here), so a
    /// relayed entry ages from its measurement, never from its last hop.
    pub written: SimTime,
}

impl CacheEntry {
    /// The entry's age at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_elapsed_since(self.written)
    }
}

/// A bounded, age-stamped load cache with fixed storage.
#[derive(Debug, Clone)]
pub struct LoadCache {
    slots: Vec<Option<CacheEntry>>,
}

impl LoadCache {
    /// A cache with `capacity` slots (at least one). All storage is
    /// allocated here; nothing grows afterwards.
    pub fn new(capacity: usize) -> Self {
        LoadCache {
            slots: vec![None; capacity.max(1)],
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Inserts or refreshes an observation. An existing entry for the same
    /// host is replaced only by a fresher stamp (relays cannot roll time
    /// backwards). When the cache is full the stalest slot is overwritten.
    /// Returns whether the entry was stored.
    pub fn insert(&mut self, entry: CacheEntry) -> bool {
        let mut free: Option<usize> = None;
        let mut stalest: Option<(usize, SimTime)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Some(e) if e.info.host == entry.info.host => {
                    if entry.written >= e.written {
                        self.slots[i] = Some(entry);
                        return true;
                    }
                    return false;
                }
                Some(e) => {
                    if stalest.map(|(_, w)| e.written < w).unwrap_or(true) {
                        stalest = Some((i, e.written));
                    }
                }
                None => {
                    if free.is_none() {
                        free = Some(i);
                    }
                }
            }
        }
        if let Some(i) = free {
            self.slots[i] = Some(entry);
            return true;
        }
        match stalest {
            // Never replace a fresher observation with a staler one.
            Some((i, w)) if entry.written >= w => {
                self.slots[i] = Some(entry);
                true
            }
            _ => false,
        }
    }

    /// The cached entry for `host`, if any (mutable, for anticipation and
    /// release bookkeeping).
    pub fn get_mut(&mut self, host: HostId) -> Option<&mut CacheEntry> {
        self.slots
            .iter_mut()
            .flatten()
            .find(|e| e.info.host == host)
    }

    /// The cached entry for `host`, if any.
    pub fn get(&self, host: HostId) -> Option<&CacheEntry> {
        self.slots.iter().flatten().find(|e| e.info.host == host)
    }

    /// Every occupied slot, in slot order (callers needing a deterministic
    /// ranking sort through [`Ranker`], never iterate raw slots into
    /// scheduling decisions).
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.slots.iter().flatten()
    }

    /// Copies the up-to-`limit` freshest entries into `out` (freshest
    /// first, host id breaking ties), reusing `out`'s storage. This is the
    /// gossip batch builder: O(capacity · limit) with `limit` small, no
    /// allocation once `out` has warmed up.
    pub fn freshest_into(&self, limit: usize, out: &mut Vec<CacheEntry>) {
        out.clear();
        for e in self.entries() {
            // Insertion sort into the bounded batch.
            let pos = out
                .iter()
                .position(|o| (e.written, o.info.host.index()) > (o.written, e.info.host.index()))
                .unwrap_or(out.len());
            if pos < limit {
                if out.len() == limit {
                    out.pop();
                }
                out.insert(pos, *e);
            }
        }
    }
}

/// How [`Ranker::rank`] orders surviving candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankOrder {
    /// Freshest observation first (gossip: distrust old news), then
    /// longest idle, then lowest host id.
    FreshestFirst,
    /// Longest idle first (coordinator tables: Mutka/Livny \[ML87\]), then
    /// lowest host id.
    IdlestFirst,
}

/// The allocation-free ranking fast path: one reusable scratch buffer,
/// sorted in place with `sort_unstable_by` (itself allocation-free for
/// `Copy` elements), plus a growth counter so benchmarks can assert the
/// warmed-up path never reallocates.
#[derive(Debug, Default)]
pub struct Ranker {
    scratch: Vec<CacheEntry>,
    grows: u64,
}

impl Ranker {
    /// A ranker whose scratch is pre-sized for caches of `capacity`
    /// entries, so the first query does not count as a growth.
    pub fn with_capacity(capacity: usize) -> Self {
        Ranker {
            scratch: Vec::with_capacity(capacity),
            grows: 0,
        }
    }

    /// Times the scratch buffer had to reallocate. Zero after warmup is
    /// the fast-path invariant the core_ops microbenchmark gates on.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Ranks `cache`'s trustworthy candidates for `requester`: entries no
    /// older than `max_age` that `policy` calls available, `requester`
    /// itself excluded, hosts rejected by `keep` (already-assigned hosts,
    /// say) skipped. Stale entries are *skipped, not evicted* — the cache
    /// is untouched and a fresher observation can still revive the slot.
    #[allow(clippy::too_many_arguments)]
    pub fn rank(
        &mut self,
        cache: &LoadCache,
        now: SimTime,
        max_age: SimDuration,
        requester: HostId,
        policy: &AvailabilityPolicy,
        order: RankOrder,
        mut keep: impl FnMut(HostId) -> bool,
    ) -> &[CacheEntry] {
        let cap_before = self.scratch.capacity();
        self.scratch.clear();
        for e in cache.entries() {
            if e.info.host != requester
                && e.age(now) <= max_age
                && policy.is_available(&e.info)
                && keep(e.info.host)
            {
                self.scratch.push(*e);
            }
        }
        match order {
            RankOrder::FreshestFirst => self.scratch.sort_unstable_by(|a, b| {
                b.written
                    .cmp(&a.written)
                    .then(b.info.idle.cmp(&a.info.idle))
                    .then(a.info.host.cmp(&b.info.host))
            }),
            RankOrder::IdlestFirst => self.scratch.sort_unstable_by(|a, b| {
                b.info
                    .idle
                    .cmp(&a.info.idle)
                    .then(a.info.host.cmp(&b.info.host))
            }),
        }
        if self.scratch.capacity() != cap_before {
            self.grows += 1;
        }
        &self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn entry(host: u32, written_secs: u64, idle_secs: u64) -> CacheEntry {
        CacheEntry {
            info: HostInfo::idle_host(h(host), SimDuration::from_secs(idle_secs)),
            written: t(written_secs),
        }
    }

    #[test]
    fn insert_refreshes_and_rejects_rollback() {
        let mut c = LoadCache::new(4);
        assert!(c.insert(entry(1, 10, 60)));
        assert!(c.insert(entry(1, 20, 90)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(h(1)).map(|e| e.written), Some(t(20)));
        // A staler relay of the same host must not roll the entry back.
        assert!(!c.insert(entry(1, 5, 600)));
        assert_eq!(c.get(h(1)).map(|e| e.written), Some(t(20)));
    }

    #[test]
    fn full_cache_overwrites_the_stalest_slot() {
        let mut c = LoadCache::new(3);
        c.insert(entry(1, 30, 60));
        c.insert(entry(2, 10, 60)); // stalest
        c.insert(entry(3, 20, 60));
        assert!(c.insert(entry(4, 40, 60)));
        assert!(c.get(h(2)).is_none(), "stalest entry was the victim");
        assert!(c.get(h(4)).is_some());
        // An entry staler than everything cached is dropped, not stored.
        assert!(!c.insert(entry(5, 1, 60)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn freshest_into_orders_and_bounds_the_batch() {
        let mut c = LoadCache::new(8);
        for (host, w) in [(1, 10), (2, 40), (3, 30), (4, 20)] {
            c.insert(entry(host, w, 60));
        }
        let mut batch = Vec::new();
        c.freshest_into(3, &mut batch);
        let hosts: Vec<u32> = batch.iter().map(|e| e.info.host.index() as u32).collect();
        assert_eq!(hosts, vec![2, 3, 4], "freshest three, freshest first");
    }

    #[test]
    fn rank_skips_stale_without_evicting() {
        let mut c = LoadCache::new(4);
        c.insert(entry(1, 0, 60));
        c.insert(entry(2, 100, 60));
        let mut r = Ranker::with_capacity(4);
        let now = t(110);
        let max_age = SimDuration::from_secs(30);
        let ranked = r.rank(
            &c,
            now,
            max_age,
            h(9),
            &AvailabilityPolicy::default(),
            RankOrder::FreshestFirst,
            |_| true,
        );
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].info.host, h(2));
        // The stale entry is still cached — skipped, not evicted.
        assert!(c.get(h(1)).is_some());
    }

    #[test]
    fn rank_orders_and_filters() {
        let mut c = LoadCache::new(8);
        c.insert(entry(1, 50, 60));
        c.insert(entry(2, 50, 600));
        c.insert(entry(3, 50, 300));
        let mut r = Ranker::with_capacity(8);
        let now = t(55);
        let age = SimDuration::from_secs(60);
        let policy = AvailabilityPolicy::default();
        let idle: Vec<HostId> = r
            .rank(&c, now, age, h(9), &policy, RankOrder::IdlestFirst, |_| {
                true
            })
            .iter()
            .map(|e| e.info.host)
            .collect();
        assert_eq!(idle, vec![h(2), h(3), h(1)]);
        let kept: Vec<HostId> = r
            .rank(
                &c,
                now,
                age,
                h(9),
                &policy,
                RankOrder::IdlestFirst,
                |host| host != h(2),
            )
            .iter()
            .map(|e| e.info.host)
            .collect();
        assert_eq!(kept, vec![h(3), h(1)], "keep-filter drops assigned hosts");
        let no_self: Vec<HostId> = r
            .rank(&c, now, age, h(2), &policy, RankOrder::IdlestFirst, |_| {
                true
            })
            .iter()
            .map(|e| e.info.host)
            .collect();
        assert_eq!(no_self, vec![h(3), h(1)], "requester never self-selects");
    }

    #[test]
    fn warmed_ranker_never_grows() {
        let mut c = LoadCache::new(64);
        for i in 0..64 {
            c.insert(entry(i, 50, 60 + u64::from(i)));
        }
        let mut r = Ranker::with_capacity(c.capacity());
        for _ in 0..100 {
            let ranked = r.rank(
                &c,
                t(55),
                SimDuration::from_secs(60),
                h(999),
                &AvailabilityPolicy::default(),
                RankOrder::FreshestFirst,
                |_| true,
            );
            assert_eq!(ranked.len(), 64);
        }
        assert_eq!(r.grows(), 0, "pre-sized scratch must never reallocate");
    }
}
