//! Idle-host detection and host selection for the Sprite cluster.
//!
//! Load sharing needs an answer to "where should this process go?". This
//! crate provides the load metric ([`LoadAverage`]), the availability rule
//! ([`AvailabilityPolicy`]) and the four selection architectures the thesis
//! compares in Chapter 6 — [`CentralServer`] (Sprite's `migd`),
//! [`SharedFileBoard`] (the original design), [`Probabilistic`]
//! (MOSIX-style gossip) and [`MulticastQuery`] (Theimer/Lantz-style
//! stateless queries) — behind one [`HostSelector`] trait so experiment E10
//! can race them on identical workloads.
//!
//! Two decentralized architectures scale the answer past the thesis's
//! clusters: [`ShardedCoordinator`] hashes hosts across `c` coordinator
//! daemons, and [`GossipDissemination`] batches load vectors to DetRng-
//! chosen peers so selection becomes a local, allocation-free lookup over
//! a bounded age-stamped [`LoadCache`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod gossip;
mod load;
mod selectors;
mod sharded;

pub use cache::{CacheEntry, LoadCache, RankOrder, Ranker};
pub use gossip::{GossipDissemination, GOSSIP_CACHE_SLOTS};
pub use load::{AvailabilityPolicy, HostInfo, LoadAverage};
pub use selectors::{
    CentralServer, HostSelector, MulticastQuery, Probabilistic, SelectorStats, SharedFileBoard,
};
pub use sharded::ShardedCoordinator;
