//! Idle-host detection and host selection for the Sprite cluster.
//!
//! Load sharing needs an answer to "where should this process go?". This
//! crate provides the load metric ([`LoadAverage`]), the availability rule
//! ([`AvailabilityPolicy`]) and the four selection architectures the thesis
//! compares in Chapter 6 — [`CentralServer`] (Sprite's `migd`),
//! [`SharedFileBoard`] (the original design), [`Probabilistic`]
//! (MOSIX-style gossip) and [`MulticastQuery`] (Theimer/Lantz-style
//! stateless queries) — behind one [`HostSelector`] trait so experiment E10
//! can race them on identical workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod load;
mod selectors;

pub use load::{AvailabilityPolicy, HostInfo, LoadAverage};
pub use selectors::{
    CentralServer, HostSelector, MulticastQuery, Probabilistic, SelectorStats, SharedFileBoard,
};
