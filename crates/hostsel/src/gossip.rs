//! Decentralized gossip load dissemination (the MOSIX direction, grown
//! up): batched pushes, bounded caches, allocation-free local selection.
//!
//! [`Probabilistic`](crate::Probabilistic) models the 1985 MOSIX scheme
//! literally — one single-entry datagram per peer per report, an
//! unbounded `BTreeMap` per host. Both choices sink at cluster scale:
//! O(hosts) update traffic per interval and O(hosts²) cache memory.
//! [`GossipDissemination`] is the production shape of the same idea:
//!
//! * **batched**: one `hostsel-gossip` message carries the sender's
//!   freshest `f` cache entries ([`GOSSIP_ENTRY_BYTES`] each behind a
//!   [`CONTROL_BYTES`] header), so second-hand news rides along and load
//!   traffic is O(k·f) per host-interval instead of O(hosts) queries;
//! * **transition-triggered with a refresh floor**: a host pushes when its
//!   availability flips (the same suppression the central server uses)
//!   and otherwise at most every `refresh_every` report ticks, keeping
//!   total bytes within a small multiple of the centralized design;
//! * **bounded**: each host's view is a fixed-slot [`LoadCache`]; stale
//!   entries are skipped by age at query time, never eagerly evicted;
//! * **local**: selection ranks the requester's own cache through the
//!   reusable [`Ranker`] — no RPC, no per-query allocation, no hashing.
//!
//! Fanout targets come from the seeded [`DetRng`], so every run is
//! byte-identical for a given seed regardless of `--jobs`/`--shards`.

use sprite_net::{HostId, RpcOp, Transport, CONTROL_BYTES, GOSSIP_ENTRY_BYTES};
use sprite_sim::{DetRng, SimDuration, SimTime};

use crate::cache::{CacheEntry, LoadCache, RankOrder, Ranker};
use crate::load::{AvailabilityPolicy, HostInfo};
use crate::selectors::{truth_available, HostSelector, SelectorStats};

/// Default bound on each host's load cache: enough for good placement at
/// any cluster size without O(hosts²) memory.
pub const GOSSIP_CACHE_SLOTS: usize = 64;

/// Decentralized gossip dissemination with local selection.
#[derive(Debug)]
pub struct GossipDissemination {
    policy: AvailabilityPolicy,
    hosts: usize,
    fanout: usize,
    batch: usize,
    /// Gossip at least every this many report ticks even without an
    /// availability transition (1 = every report).
    refresh_every: u32,
    /// Entries older than this are distrusted at selection time.
    max_age: SimDuration,
    rng: DetRng,
    /// caches[h] = what host h believes about its peers (self included).
    caches: Vec<LoadCache>,
    last_gossiped_available: Vec<Option<bool>>,
    reports_since_gossip: Vec<u32>,
    batch_scratch: Vec<CacheEntry>,
    ranker: Ranker,
    stats: SelectorStats,
}

impl GossipDissemination {
    /// Creates the gossip fabric for `hosts` hosts: each push goes to
    /// `fanout` DetRng-chosen peers and carries the sender's freshest
    /// `batch` entries. Defaults: gossip on every report
    /// (`refresh_every` 1), trust entries up to 15 minutes old, cache
    /// [`GOSSIP_CACHE_SLOTS`] entries per host.
    pub fn new(
        hosts: usize,
        fanout: usize,
        batch: usize,
        policy: AvailabilityPolicy,
        seed: u64,
    ) -> Self {
        let slots = GOSSIP_CACHE_SLOTS.min(hosts.max(1));
        GossipDissemination {
            policy,
            hosts,
            fanout: fanout.max(1),
            batch: batch.max(1),
            refresh_every: 1,
            max_age: SimDuration::from_secs(15 * 60),
            rng: DetRng::seed_from(seed),
            caches: vec![LoadCache::new(slots); hosts],
            last_gossiped_available: vec![None; hosts],
            reports_since_gossip: vec![0; hosts],
            batch_scratch: Vec::with_capacity(batch.max(1)),
            ranker: Ranker::with_capacity(slots),
            stats: SelectorStats::default(),
        }
    }

    /// Gossip only every `ticks` reports when availability is unchanged
    /// (transitions always push immediately). The knob that trades
    /// staleness against wire bytes.
    pub fn set_refresh_every(&mut self, ticks: u32) {
        self.refresh_every = ticks.max(1);
    }

    /// How old a cache entry may be and still be trusted at selection.
    pub fn set_max_age(&mut self, max_age: SimDuration) {
        self.max_age = max_age;
    }

    /// Rebuilds every host's cache with `slots` slots (drops cached
    /// state; intended for construction-time tuning and benchmarks).
    pub fn set_cache_capacity(&mut self, slots: usize) {
        let slots = slots.max(1);
        self.caches = vec![LoadCache::new(slots); self.hosts];
        self.ranker = Ranker::with_capacity(slots);
    }

    /// Injects one observation directly into `owner`'s cache — warmup for
    /// drivers and benchmarks (bypasses the wire on purpose).
    pub fn prime(&mut self, owner: HostId, info: HostInfo, written: SimTime) {
        self.caches[owner.index()].insert(CacheEntry { info, written });
    }

    /// Times the ranking scratch had to reallocate (0 after warmup).
    pub fn ranker_grows(&self) -> u64 {
        self.ranker.grows()
    }

    /// Entries currently cached by `owner`.
    pub fn cached_entries(&self, owner: HostId) -> usize {
        self.caches[owner.index()].len()
    }
}

impl HostSelector for GossipDissemination {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn report(&mut self, net: &mut Transport, now: SimTime, info: HostInfo) -> SimTime {
        let h = info.host.index();
        self.caches[h].insert(CacheEntry { info, written: now });
        let avail = self.policy.is_available(&info);
        let changed = self.last_gossiped_available[h]
            .map(|prev| prev != avail)
            .unwrap_or(true);
        self.reports_since_gossip[h] += 1;
        if !changed && self.reports_since_gossip[h] < self.refresh_every {
            // Suppressed: the local cache refreshed above at no wire cost.
            return now;
        }
        self.reports_since_gossip[h] = 0;
        self.last_gossiped_available[h] = Some(avail);
        // One batch serves every peer this round: the sender's freshest
        // entries, its own (just refreshed) state guaranteed aboard.
        self.caches[h].freshest_into(self.batch, &mut self.batch_scratch);
        let bytes = CONTROL_BYTES + self.batch_scratch.len() as u64 * GOSSIP_ENTRY_BYTES;
        let mut t = now;
        for _ in 0..self.fanout {
            let peer = HostId::new(self.rng.uniform_u64(self.hosts as u64) as u32);
            if peer == info.host {
                continue;
            }
            self.stats.messages += 1;
            match net.send_datagram(RpcOp::HostselGossip, t, info.host, peer, bytes) {
                Ok(d) => {
                    t = d.done;
                    let pi = peer.index();
                    for e in &self.batch_scratch {
                        if e.info.host != peer {
                            self.caches[pi].insert(*e);
                        }
                    }
                }
                // The push vanished: the peer keeps older entries, which
                // age out of trust if no later round gets through.
                Err(e) => t = e.at(),
            }
        }
        t
    }

    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime) {
        let _ = net; // selection is purely local
        self.stats.requests += 1;
        // A bounded in-memory scan, not a round trip: charge one table
        // scan like the probabilistic selector.
        let t = now + SimDuration::from_micros(200);
        // Rank idlest-first among entries young enough to trust: staleness
        // is bounded by `max_age`, and within that window the longest-idle
        // host is the best bet, as for the server designs [ML87].
        let ranked = self.ranker.rank(
            &self.caches[requester.index()],
            now,
            self.max_age,
            requester,
            &self.policy,
            RankOrder::IdlestFirst,
            |_| true,
        );
        let mut chosen: Option<CacheEntry> = None;
        for e in ranked {
            if truth_available(truth, &self.policy, e.info.host) {
                chosen = Some(*e);
                break;
            }
            self.stats.conflicts += 1;
        }
        let picked = match chosen {
            Some(e) => {
                self.stats.granted += 1;
                self.stats.info_age.record_duration(e.age(now));
                // Anticipate load locally so this requester will not dump
                // its next process on the same host [BSW89].
                if let Some(c) = self.caches[requester.index()].get_mut(e.info.host) {
                    c.info.load += 1.0;
                }
                Some(e.info.host)
            }
            None => {
                self.stats.denied += 1;
                None
            }
        };
        self.stats
            .select_latency
            .record_duration(t.elapsed_since(now));
        (picked, t)
    }

    fn release(
        &mut self,
        _net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime {
        if let Some(c) = self.caches[requester.index()].get_mut(host) {
            c.info.load = (c.info.load - 1.0).max(0.0);
        }
        now
    }

    fn stats(&self) -> &SelectorStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_net::CostModel;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn net(hosts: usize) -> Transport {
        Transport::new(CostModel::sun3(), hosts)
    }

    fn idle_world(n: u32) -> Vec<HostInfo> {
        (0..n)
            .map(|i| HostInfo::idle_host(h(i), SimDuration::from_secs(60 + u64::from(i))))
            .collect()
    }

    #[test]
    fn gossip_traffic_is_batched_and_bounded() {
        let world = idle_world(50);
        let mut s = GossipDissemination::new(50, 2, 8, AvailabilityPolicy::default(), 7);
        let mut n = net(50);
        let mut t = SimTime::ZERO;
        for info in &world {
            t = s.report(&mut n, t, *info);
        }
        let row = n.rpc_table().get(RpcOp::HostselGossip);
        assert!(row.calls > 0);
        assert!(
            row.calls <= 50 * 2,
            "at most k messages per host-report, got {}",
            row.calls
        );
        // Every message is a header plus at most f entries.
        let max_bytes = CONTROL_BYTES + 8 * GOSSIP_ENTRY_BYTES;
        assert!(
            row.bytes <= row.calls * max_bytes,
            "O(k*f) bytes per report"
        );
        assert!(row.bytes >= row.calls * (CONTROL_BYTES + GOSSIP_ENTRY_BYTES));
    }

    #[test]
    fn suppressed_reports_send_nothing_until_refresh_floor() {
        let world = idle_world(10);
        let mut s = GossipDissemination::new(10, 2, 4, AvailabilityPolicy::default(), 7);
        s.set_refresh_every(3);
        let mut n = net(10);
        let feed = |s: &mut GossipDissemination, n: &mut Transport| {
            let mut t = SimTime::ZERO;
            for info in &world {
                t = s.report(n, t, *info);
            }
        };
        feed(&mut s, &mut n); // first report: everyone transitions
        let first = s.stats().messages;
        assert!(first > 0);
        feed(&mut s, &mut n); // unchanged, below refresh floor
        feed(&mut s, &mut n);
        assert_eq!(s.stats().messages, first, "suppressed rounds stay silent");
        feed(&mut s, &mut n); // third unchanged round hits the floor
        assert!(s.stats().messages > first, "refresh floor forces a push");
    }

    #[test]
    fn transition_pushes_immediately_despite_refresh_floor() {
        let mut world = idle_world(6);
        let mut s = GossipDissemination::new(6, 2, 4, AvailabilityPolicy::default(), 7);
        s.set_refresh_every(1000);
        let mut n = net(6);
        let mut t = SimTime::ZERO;
        for info in &world {
            t = s.report(&mut n, t, *info);
        }
        let after_first = s.stats().messages;
        // Host 3's owner comes back: availability flips, push fires at once.
        world[3].console_active = true;
        let _ = s.report(&mut n, t, world[3]);
        assert!(s.stats().messages > after_first);
    }

    #[test]
    fn selection_is_local_and_allocation_free_after_warmup() {
        let world = idle_world(32);
        let mut s = GossipDissemination::new(32, 3, 8, AvailabilityPolicy::default(), 11);
        let mut n = net(32);
        let mut t = SimTime::ZERO;
        for _ in 0..4 {
            for info in &world {
                t = s.report(&mut n, t, *info);
            }
        }
        let wire_before = n.stats().messages;
        let probes_before = sprite_sim::take_hash_probes();
        let mut granted = 0;
        for _ in 0..10 {
            let (pick, t2) = s.select(&mut n, t, h(1), &world);
            t = t2;
            granted += usize::from(pick.is_some());
        }
        assert!(granted > 0);
        assert_eq!(
            n.stats().messages,
            wire_before,
            "select never touches the wire"
        );
        assert_eq!(
            sprite_sim::take_hash_probes() - probes_before,
            0,
            "the ranking fast path must not hash"
        );
        assert_eq!(s.ranker_grows(), 0, "pre-sized scratch must not reallocate");
    }

    #[test]
    fn staleness_is_recorded_per_grant() {
        let mut s = GossipDissemination::new(4, 2, 4, AvailabilityPolicy::default(), 5);
        let written = SimTime::ZERO + SimDuration::from_secs(100);
        s.prime(
            h(1),
            HostInfo::idle_host(h(2), SimDuration::from_secs(600)),
            written,
        );
        let world = idle_world(4);
        let now = written + SimDuration::from_secs(40);
        let mut n = net(4);
        let (pick, _) = s.select(&mut n, now, h(1), &world);
        assert_eq!(pick, Some(h(2)));
        assert_eq!(s.stats().info_age.count(), 1);
        assert!((s.stats().info_age.mean() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_fanout_schedule() {
        let world = idle_world(20);
        let drive = |seed: u64| {
            let mut s = GossipDissemination::new(20, 2, 6, AvailabilityPolicy::default(), seed);
            let mut n = net(20);
            let mut t = SimTime::ZERO;
            for _ in 0..3 {
                for info in &world {
                    t = s.report(&mut n, t, *info);
                }
            }
            (s.stats().messages, n.stats().bytes, n.stats().messages)
        };
        assert_eq!(drive(99), drive(99));
        assert_ne!(drive(99), drive(100), "different seed, different schedule");
    }
}
