//! Sharded coordinators: the intermediate point between one central
//! daemon and fully decentralized gossip.
//!
//! Hosts are hashed across `c` coordinator daemons with the same
//! [`HostPartition`] round-robin the parallel simulation engine uses, so
//! the cluster layer and the engine agree about shard membership for
//! free. Each host reports availability *transitions* to its own shard's
//! coordinator (one-way, like the central design); a selection is one
//! `hostsel-shard-query` round trip to the requester's home coordinator,
//! falling through deterministically to the next shards (bounded by the
//! probe limit) when the home shard has nothing to offer. The assignment
//! table is global across coordinators — in Sprite terms the daemons
//! share state through the ordinary recovery protocol — so the
//! architecture keeps the central server's no-double-assign guarantee
//! while dividing both the queue and the table `c` ways.

use std::collections::BTreeMap;

use sprite_net::{
    HostId, HostPartition, RpcError, RpcOp, Transport, CONTROL_BYTES, LOAD_REPORT_BYTES,
};
use sprite_sim::{FcfsResource, SimDuration, SimTime};

use crate::cache::{CacheEntry, LoadCache, RankOrder, Ranker};
use crate::load::{AvailabilityPolicy, HostInfo};
use crate::selectors::{truth_available, HostSelector, SelectorStats};

/// One coordinator daemon: its host, its shard's load table, its CPU.
#[derive(Debug)]
struct Coordinator {
    host: HostId,
    table: LoadCache,
    cpu: FcfsResource,
}

/// Host selection sharded across `c` coordinator daemons.
#[derive(Debug)]
pub struct ShardedCoordinator {
    policy: AvailabilityPolicy,
    part: HostPartition,
    coords: Vec<Coordinator>,
    /// host -> (requester, owning shard); global so no coordinator can
    /// double-assign a host another shard's probe handed out.
    assigned: BTreeMap<HostId, (HostId, usize)>,
    last_reported_available: BTreeMap<HostId, bool>,
    /// Extra coordinators a miss may probe beyond the home shard.
    probe_limit: usize,
    per_request_service: SimDuration,
    max_age: SimDuration,
    ranker: Ranker,
    stats: SelectorStats,
}

impl ShardedCoordinator {
    /// Creates `coordinators` daemons over a cluster of `hosts` machines;
    /// daemon `s` runs on host `s` and owns the hosts `HostPartition`
    /// assigns to shard `s`. A miss probes every other shard in
    /// deterministic ring order by default ([`Self::set_probe_limit`]
    /// bounds it).
    pub fn new(hosts: usize, coordinators: usize, policy: AvailabilityPolicy) -> Self {
        let part = HostPartition::new(hosts.max(1) as u32, coordinators);
        let sizes = part.sizes();
        let coords = (0..part.nshards())
            .map(|s| Coordinator {
                host: HostId::new(s as u32),
                table: LoadCache::new(sizes[s]),
                cpu: FcfsResource::new(),
            })
            .collect();
        let largest = sizes.iter().copied().max().unwrap_or(1);
        ShardedCoordinator {
            policy,
            part,
            coords,
            assigned: BTreeMap::new(),
            last_reported_available: BTreeMap::new(),
            probe_limit: part.nshards().saturating_sub(1),
            per_request_service: SimDuration::from_micros(500),
            // Coordinator tables are refreshed by their shard's reports;
            // the horizon only guards against a shard going silent.
            max_age: SimDuration::from_secs(30 * 24 * 3600),
            ranker: Ranker::with_capacity(largest),
            stats: SelectorStats::default(),
        }
    }

    /// Number of coordinator daemons (after [`HostPartition`] clamping).
    pub fn coordinator_count(&self) -> usize {
        self.coords.len()
    }

    /// Caps how many *additional* coordinators a selection may probe
    /// after its home shard misses.
    pub fn set_probe_limit(&mut self, limit: usize) {
        self.probe_limit = limit;
    }

    /// Hosts currently assigned out.
    pub fn assigned_count(&self) -> usize {
        self.assigned.len()
    }

    /// One `hostsel-shard-query` round trip to shard `shard`'s daemon
    /// (local acquire when the requester hosts the daemon).
    fn query(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        from: HostId,
        shard: usize,
    ) -> Result<SimTime, RpcError> {
        self.stats.messages += 2;
        let coord = &mut self.coords[shard];
        if from == coord.host {
            Ok(coord.cpu.acquire(
                now + net.cost().context_switch * 2,
                self.per_request_service,
            ))
        } else {
            Ok(net
                .send_with_service(
                    RpcOp::HostselShardQuery,
                    now,
                    from,
                    coord.host,
                    self.per_request_service,
                    Some(&mut coord.cpu),
                )?
                .done)
        }
    }
}

impl HostSelector for ShardedCoordinator {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn report(&mut self, net: &mut Transport, now: SimTime, info: HostInfo) -> SimTime {
        let shard = self.part.shard_of(info.host);
        let avail = self.policy.is_available(&info);
        let changed = self
            .last_reported_available
            .get(&info.host)
            .map(|prev| *prev != avail)
            .unwrap_or(true);
        if !changed {
            // Transition-suppressed, like the central server: the shard's
            // table refreshes silently at no network cost.
            self.coords[shard]
                .table
                .insert(CacheEntry { info, written: now });
            return now;
        }
        let coord_host = self.coords[shard].host;
        if info.host == coord_host {
            self.last_reported_available.insert(info.host, avail);
            self.coords[shard]
                .table
                .insert(CacheEntry { info, written: now });
            return now;
        }
        self.stats.messages += 1;
        match net.send_datagram(
            RpcOp::HostselReport,
            now,
            info.host,
            coord_host,
            LOAD_REPORT_BYTES,
        ) {
            Ok(d) => {
                self.last_reported_available.insert(info.host, avail);
                self.coords[shard]
                    .table
                    .insert(CacheEntry { info, written: now });
                d.done
            }
            // The transition never reached the daemon: the shard table
            // keeps the stale entry until the next timer tick re-announces.
            Err(e) => e.at(),
        }
    }

    fn select(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        truth: &[HostInfo],
    ) -> (Option<HostId>, SimTime) {
        self.stats.requests += 1;
        let nshards = self.part.nshards();
        let home = self.part.shard_of(requester);
        let probes = (self.probe_limit + 1).min(nshards);
        let mut t = now;
        for i in 0..probes {
            let shard = (home + i) % nshards;
            match self.query(net, t, requester, shard) {
                Ok(done) => t = done,
                // This daemon is unreachable; the ring moves on.
                Err(e) => {
                    t = e.at();
                    continue;
                }
            }
            let assigned = &self.assigned;
            let ranked = self.ranker.rank(
                &self.coords[shard].table,
                now,
                self.max_age,
                requester,
                &self.policy,
                RankOrder::IdlestFirst,
                |host| !assigned.contains_key(&host),
            );
            let mut chosen: Option<CacheEntry> = None;
            for e in ranked {
                if truth_available(truth, &self.policy, e.info.host) {
                    chosen = Some(*e);
                    break;
                }
                // The shard table said available but the world moved on.
                self.stats.conflicts += 1;
            }
            if let Some(e) = chosen {
                self.assigned.insert(e.info.host, (requester, shard));
                self.stats.info_age.record_duration(e.age(now));
                // Anticipate load before the process lands [BSW89].
                if let Some(c) = self.coords[shard].table.get_mut(e.info.host) {
                    c.info.load += 1.0;
                }
                self.stats.granted += 1;
                self.stats
                    .select_latency
                    .record_duration(t.elapsed_since(now));
                return (Some(e.info.host), t);
            }
        }
        self.stats.denied += 1;
        self.stats
            .select_latency
            .record_duration(t.elapsed_since(now));
        (None, t)
    }

    fn release(
        &mut self,
        net: &mut Transport,
        now: SimTime,
        requester: HostId,
        host: HostId,
    ) -> SimTime {
        let shard = match self.assigned.remove(&host) {
            Some((_, shard)) => shard,
            None => self.part.shard_of(host),
        };
        if let Some(c) = self.coords[shard].table.get_mut(host) {
            c.info.load = (c.info.load - 1.0).max(0.0);
        }
        let coord_host = self.coords[shard].host;
        if requester == coord_host {
            return now;
        }
        // A one-way release notice, cheaper than the central round trip;
        // the assignment is already cleared locally, so a lost notice
        // costs nothing but a stale load estimate that the next report
        // transition corrects.
        self.stats.messages += 1;
        match net.send_datagram(
            RpcOp::HostselRelease,
            now,
            requester,
            coord_host,
            CONTROL_BYTES,
        ) {
            Ok(d) => d.done,
            Err(e) => e.at(),
        }
    }

    fn stats(&self) -> &SelectorStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_net::CostModel;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn net(hosts: usize) -> Transport {
        Transport::new(CostModel::sun3(), hosts)
    }

    fn idle_world(n: u32) -> Vec<HostInfo> {
        (0..n)
            .map(|i| HostInfo::idle_host(h(i), SimDuration::from_secs(60 + u64::from(i))))
            .collect()
    }

    fn feed(s: &mut ShardedCoordinator, n: &mut Transport, world: &[HostInfo]) {
        let mut t = SimTime::ZERO;
        for info in world {
            t = s.report(n, t, *info);
        }
    }

    #[test]
    fn coordinators_split_the_report_fanin() {
        let world = idle_world(40);
        let mut s = ShardedCoordinator::new(40, 4, AvailabilityPolicy::default());
        assert_eq!(s.coordinator_count(), 4);
        let mut n = net(40);
        feed(&mut s, &mut n, &world);
        // Every host reported its first transition to its own shard's
        // coordinator; daemons 0..4 self-report locally.
        assert_eq!(n.rpc_table().get(RpcOp::HostselReport).calls, 36);
        // Unchanged state is suppressed, exactly like the central server.
        let before = s.stats().messages;
        feed(&mut s, &mut n, &world);
        assert_eq!(s.stats().messages, before);
    }

    #[test]
    fn home_shard_first_then_deterministic_ring_probes() {
        // Only a host in shard 1 is available: a shard-0 requester must
        // miss at home and find it on the probe.
        let mut world = idle_world(8);
        for info in &mut world {
            if info.host.index() % 4 != 1 {
                info.console_active = true;
            }
        }
        world[5].console_active = true; // leave only host 1 available
        let mut s = ShardedCoordinator::new(8, 4, AvailabilityPolicy::default());
        let mut n = net(8);
        feed(&mut s, &mut n, &world);
        let (pick, _) = s.select(&mut n, SimTime::ZERO, h(0), &world);
        assert_eq!(pick, Some(h(1)), "found via the ring probe");
        assert_eq!(
            n.rpc_table().get(RpcOp::HostselShardQuery).calls,
            1,
            "home daemon is local to h0; one remote probe to shard 1"
        );
    }

    #[test]
    fn probe_limit_bounds_the_ring() {
        let mut world = idle_world(8);
        for info in &mut world {
            if info.host.index() % 4 != 3 {
                info.console_active = true;
            }
        }
        let mut s = ShardedCoordinator::new(8, 4, AvailabilityPolicy::default());
        s.set_probe_limit(1);
        let mut n = net(8);
        feed(&mut s, &mut n, &world);
        // Requester in shard 0 may only probe shards 0 and 1; the only
        // available hosts live in shard 3.
        let (pick, _) = s.select(&mut n, SimTime::ZERO, h(0), &world);
        assert_eq!(pick, None, "bounded probing must give up");
        s.set_probe_limit(3);
        let (pick, _) = s.select(&mut n, SimTime::ZERO, h(0), &world);
        assert!(pick.is_some());
    }

    #[test]
    fn assignment_table_is_global_across_shards() {
        let world = idle_world(6);
        let mut s = ShardedCoordinator::new(6, 3, AvailabilityPolicy::default());
        let mut n = net(6);
        feed(&mut s, &mut n, &world);
        let mut picked = sprite_sim::DetHashSet::default();
        let mut t = SimTime::ZERO;
        loop {
            let (pick, t2) = s.select(&mut n, t, h(0), &world);
            t = t2;
            match pick {
                Some(p) => assert!(picked.insert(p), "double-assigned {p}"),
                None => break,
            }
        }
        assert_eq!(picked.len(), 5, "every other host granted exactly once");
        assert_eq!(s.assigned_count(), 5);
    }

    #[test]
    fn release_returns_the_host_and_decrements_load() {
        let world = idle_world(4);
        let mut s = ShardedCoordinator::new(4, 2, AvailabilityPolicy::default());
        let mut n = net(4);
        feed(&mut s, &mut n, &world);
        let (pick, t) = s.select(&mut n, SimTime::ZERO, h(0), &world);
        let host = pick.expect("a host");
        let t = s.release(&mut n, t, h(0), host);
        assert_eq!(s.assigned_count(), 0);
        let (again, _) = s.select(&mut n, t, h(0), &world);
        assert_eq!(again, Some(host), "released host is selectable again");
    }
}
