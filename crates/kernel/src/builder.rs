//! Ergonomic cluster construction.
//!
//! Setting up an experiment takes four or five steps in a fixed order
//! (cost model, file servers, programs); [`ClusterBuilder`] rolls them into
//! one fluent expression and is what the examples and harnesses use.

use sprite_fs::{FsConfig, SpritePath};
use sprite_net::{CostModel, HostId};
use sprite_sim::SimTime;

use crate::{Cluster, KernelResult};

/// Builder for a ready-to-run [`Cluster`].
///
/// # Examples
///
/// ```
/// use sprite_kernel::ClusterBuilder;
/// use sprite_net::HostId;
///
/// # fn main() -> Result<(), sprite_kernel::KernelError> {
/// let (mut cluster, t) = ClusterBuilder::new(8)
///     .file_server(HostId::new(0), "/")
///     .program("/bin/cc", 48 * 1024)
///     .program("/bin/sim", 32 * 1024)
///     .trace(64)
///     .build()?;
/// let (pid, _t) = cluster.spawn(
///     t,
///     HostId::new(1),
///     &sprite_fs::SpritePath::new("/bin/sim"),
///     32,
///     8,
/// )?;
/// assert!(cluster.pcb(pid).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    hosts: usize,
    cost: CostModel,
    fs_config: FsConfig,
    servers: Vec<(HostId, String)>,
    programs: Vec<(String, u64)>,
    trace_capacity: Option<usize>,
}

impl ClusterBuilder {
    /// Starts a builder for a cluster of `hosts` machines with the Sun-3
    /// cost model.
    pub fn new(hosts: usize) -> Self {
        ClusterBuilder {
            hosts,
            cost: CostModel::sun3(),
            fs_config: FsConfig::default(),
            servers: Vec::new(),
            programs: Vec::new(),
            trace_capacity: None,
        }
    }

    /// Uses a different hardware generation.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Tunes the file system.
    pub fn fs_config(mut self, config: FsConfig) -> Self {
        self.fs_config = config;
        self
    }

    /// Adds a file server exporting `prefix` on `host`. At least one server
    /// is required; if none is declared, host 0 exports `/`.
    pub fn file_server(mut self, host: HostId, prefix: &str) -> Self {
        self.servers.push((host, prefix.to_owned()));
        self
    }

    /// Adds a striped file-service group: every host in `servers` exports
    /// `prefix`, and names beneath it spread across the group by path-text
    /// hashing (`sprite_fs::ShardMap`).
    pub fn sharded_file_service(mut self, servers: &[HostId], prefix: &str) -> Self {
        for host in servers {
            self.servers.push((*host, prefix.to_owned()));
        }
        self
    }

    /// Installs an executable of `text_bytes` at `path` during build.
    pub fn program(mut self, path: &str, text_bytes: u64) -> Self {
        self.programs.push((path.to_owned(), text_bytes));
        self
    }

    /// Enables the narrative trace with the given capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Builds the cluster. Returns it plus the simulated time at which the
    /// setup I/O (program installation) finished.
    ///
    /// # Errors
    ///
    /// Fails if program installation hits a file-system error (e.g. two
    /// programs at the same path).
    pub fn build(self) -> KernelResult<(Cluster, SimTime)> {
        let mut cluster = Cluster::with_fs_config(self.cost, self.hosts, self.fs_config);
        if self.servers.is_empty() {
            cluster.add_file_server(HostId::new(0), SpritePath::new("/"));
        } else {
            for (host, prefix) in &self.servers {
                cluster.add_file_server(*host, SpritePath::new(prefix.as_str()));
            }
        }
        if let Some(capacity) = self.trace_capacity {
            cluster.enable_trace(capacity);
        }
        let mut t = SimTime::ZERO;
        for (path, bytes) in &self.programs {
            t = cluster.install_program(t, SpritePath::new(path.as_str()), *bytes)?;
        }
        Ok((cluster, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelError;

    #[test]
    fn default_server_covers_the_root() {
        let (cluster, _) = ClusterBuilder::new(2).build().unwrap();
        assert!(cluster.fs.resolve(&SpritePath::new("/anything")).is_ok());
    }

    #[test]
    fn builder_installs_everything_in_order() {
        let (mut cluster, t) = ClusterBuilder::new(4)
            .file_server(HostId::new(0), "/")
            .file_server(HostId::new(3), "/swap")
            .program("/bin/a", 8 * 1024)
            .program("/bin/b", 8 * 1024)
            .trace(8)
            .build()
            .unwrap();
        assert!(t > SimTime::ZERO, "program installation consumed time");
        assert!(cluster.program(&SpritePath::new("/bin/a")).is_some());
        assert!(cluster.program(&SpritePath::new("/bin/b")).is_some());
        assert_eq!(
            cluster.fs.resolve(&SpritePath::new("/swap/x")).unwrap(),
            HostId::new(3)
        );
        assert!(cluster.trace.is_enabled());
        // Spawning works immediately.
        let r = cluster.spawn(t, HostId::new(1), &SpritePath::new("/bin/a"), 8, 4);
        assert!(r.is_ok());
    }

    #[test]
    fn sharded_file_service_runs_programs_end_to_end() {
        let shards = [HostId::new(0), HostId::new(1)];
        let (mut cluster, t) = ClusterBuilder::new(6)
            .sharded_file_service(&shards, "/")
            .program("/bin/a", 16 * 1024)
            .program("/bin/b", 16 * 1024)
            .build()
            .unwrap();
        assert_eq!(cluster.fs.fs_shards(), 2);
        // Processes spawn and run off the striped service transparently.
        let (pid, t) = cluster
            .spawn(t, HostId::new(3), &SpritePath::new("/bin/a"), 16, 4)
            .unwrap();
        assert!(cluster.pcb(pid).is_some());
        let (pid2, _t) = cluster
            .spawn(t, HostId::new(4), &SpritePath::new("/bin/b"), 16, 4)
            .unwrap();
        assert!(cluster.pcb(pid2).is_some());
        // Non-member hosts paid their one-time prefix-table fetch.
        assert!(cluster.fs.stats().shard_redirects >= 1);
    }

    #[test]
    fn duplicate_program_paths_error() {
        let result = ClusterBuilder::new(2)
            .program("/bin/x", 1024)
            .program("/bin/x", 1024)
            .build();
        assert!(matches!(result, Err(KernelError::Fs(_))));
    }
}
