//! The cluster process table: a generational slab arena for PCBs.
//!
//! PCBs live in slots of one contiguous `Vec`; a freed slot goes on a free
//! list and is reused by the next insert *at a bumped generation*.
//! Table-minted [`ProcessId`]s embed their `(slot, generation)` handle, so
//! a lookup is one bounds check plus one generation compare — and a handle
//! that outlives its process fails that compare instead of resolving
//! whatever process reused the slot (no ABA). PIDs built with
//! [`ProcessId::new`] carry no handle and resolve through a sorted order
//! index, which doubles as the table's iteration order: everything that
//! charges per-process costs walks processes in PID order, part of the
//! simulation's determinism contract.

use std::cell::Cell;

use sprite_net::HostId;

use crate::proc::Pcb;
use crate::ProcessId;

/// Occupancy and staleness counters for a slab table (the data-plane
/// counters report prints these).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlabStats {
    /// Entries currently live.
    pub live: usize,
    /// Peak simultaneous live entries.
    pub high_water: usize,
    /// Slots ever allocated (live + free-listed).
    pub capacity: usize,
    /// Lookups rejected because the handle's generation was stale.
    pub stale_lookups: u64,
}

#[derive(Debug)]
struct ProcSlot {
    generation: u32,
    pcb: Option<Pcb>,
}

/// Generational slab of process control blocks with a PID-order index.
#[derive(Debug, Default)]
pub(crate) struct ProcTable {
    slots: Vec<ProcSlot>,
    free: Vec<u32>,
    /// Live PIDs sorted by `(home, seq)` — the iteration order, and the
    /// resolution path for handle-less PIDs.
    order: Vec<ProcessId>,
    high_water: usize,
    stale_lookups: Cell<u64>,
}

impl ProcTable {
    pub(crate) fn new() -> Self {
        ProcTable::default()
    }

    /// Allocates a slot for a new process `(home, seq)` and builds its PCB
    /// via `build`, which receives the handle-carrying PID the process will
    /// be known by. Returns that PID.
    pub(crate) fn insert(
        &mut self,
        home: HostId,
        seq: u32,
        build: impl FnOnce(ProcessId) -> Pcb,
    ) -> ProcessId {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(ProcSlot {
                generation: 0,
                pcb: None,
            });
            u32::try_from(self.slots.len() - 1).expect("process table full")
        });
        let generation = self.slots[slot as usize].generation;
        let pid = ProcessId::with_handle(home, seq, slot, generation);
        debug_assert!(self.slots[slot as usize].pcb.is_none(), "slot in use");
        self.slots[slot as usize].pcb = Some(build(pid));
        match self.order.binary_search(&pid) {
            Ok(_) => unreachable!("duplicate pid {pid}"),
            Err(at) => self.order.insert(at, pid),
        }
        self.high_water = self.high_water.max(self.order.len());
        pid
    }

    /// Resolves `pid` to its slot if the process is live. A stale handle
    /// (generation mismatch) is counted and rejected — it must *not* fall
    /// back to identity resolution, or a recycled slot would ABA.
    fn live_slot(&self, pid: ProcessId) -> Option<u32> {
        match pid.slot() {
            Some(slot) => {
                let s = self.slots.get(slot as usize)?;
                if s.generation != pid.generation() || s.pcb.is_none() {
                    self.stale_lookups.set(self.stale_lookups.get() + 1);
                    return None;
                }
                Some(slot)
            }
            None => {
                let at = self.order.binary_search(&pid).ok()?;
                self.order[at].slot()
            }
        }
    }

    pub(crate) fn get(&self, pid: ProcessId) -> Option<&Pcb> {
        let slot = self.live_slot(pid)?;
        self.slots[slot as usize].pcb.as_ref()
    }

    pub(crate) fn get_mut(&mut self, pid: ProcessId) -> Option<&mut Pcb> {
        let slot = self.live_slot(pid)?;
        self.slots[slot as usize].pcb.as_mut()
    }

    pub(crate) fn contains(&self, pid: ProcessId) -> bool {
        self.live_slot(pid).is_some()
    }

    /// Removes a process, retiring its slot: the generation bumps so every
    /// outstanding handle to this process goes stale, then the slot joins
    /// the free list for reuse.
    pub(crate) fn remove(&mut self, pid: ProcessId) -> Option<Pcb> {
        let slot = self.live_slot(pid)?;
        let s = &mut self.slots[slot as usize];
        let pcb = s.pcb.take().expect("live slot holds a pcb");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        let at = self
            .order
            .binary_search(&pcb.pid)
            .expect("live pid is indexed");
        self.order.remove(at);
        Some(pcb)
    }

    /// Live PCBs in PID order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Pcb> {
        self.order.iter().map(move |pid| {
            let slot = pid.slot().expect("indexed pid carries a handle");
            self.slots[slot as usize]
                .pcb
                .as_ref()
                .expect("indexed pid is live")
        })
    }

    pub(crate) fn stats(&self) -> SlabStats {
        SlabStats {
            live: self.order.len(),
            high_water: self.high_water,
            capacity: self.slots.len(),
            stale_lookups: self.stale_lookups.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_sim::SimTime;

    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    fn table_with(entries: &[(u32, u32)]) -> (ProcTable, Vec<ProcessId>) {
        let mut t = ProcTable::new();
        let pids = entries
            .iter()
            .map(|&(home, seq)| {
                t.insert(h(home), seq, |pid| {
                    Pcb::new(pid, None, pid.home(), SimTime::ZERO)
                })
            })
            .collect();
        (t, pids)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let (mut t, pids) = table_with(&[(1, 1), (2, 1)]);
        assert_eq!(t.stats().live, 2);
        assert_eq!(t.get(pids[0]).unwrap().pid, pids[0]);
        let removed = t.remove(pids[0]).unwrap();
        assert_eq!(removed.pid, pids[0]);
        assert!(t.get(pids[0]).is_none());
        assert_eq!(t.stats().live, 1);
    }

    #[test]
    fn iteration_is_pid_order_not_insertion_order() {
        let (t, _) = table_with(&[(3, 1), (1, 2), (1, 1), (2, 9)]);
        let seen: Vec<String> = t.iter().map(|p| p.pid.to_string()).collect();
        assert_eq!(seen, vec!["pid1.1", "pid1.2", "pid2.9", "pid3.1"]);
    }

    #[test]
    fn handleless_pids_resolve_by_identity() {
        let (t, pids) = table_with(&[(1, 7)]);
        let plain = ProcessId::new(h(1), 7);
        assert_eq!(t.get(plain).unwrap().pid, pids[0]);
        assert!(t.contains(plain));
        assert!(t.get(ProcessId::new(h(1), 8)).is_none());
    }

    #[test]
    fn stale_handle_does_not_resolve_recycled_slot() {
        let (mut t, pids) = table_with(&[(1, 1)]);
        let stale = pids[0];
        t.remove(stale).unwrap();
        // The next insert reuses the freed slot at a bumped generation.
        let fresh = t.insert(h(1), 2, |pid| {
            Pcb::new(pid, None, pid.home(), SimTime::ZERO)
        });
        assert_eq!(t.stats().capacity, 1, "slot was reused");
        // The stale handle must fail, not alias the new occupant.
        assert!(t.get(stale).is_none(), "ABA: stale handle resolved");
        assert!(!t.contains(stale));
        assert_eq!(t.get(fresh).unwrap().pid, fresh);
        assert!(t.stats().stale_lookups >= 2);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let (mut t, pids) = table_with(&[(1, 1), (1, 2), (1, 3)]);
        t.remove(pids[0]).unwrap();
        t.remove(pids[1]).unwrap();
        let s = t.stats();
        assert_eq!((s.live, s.high_water), (1, 3));
    }

    /// Killing a scattered process group while the file server is
    /// partitioned away must not leave a live slot holding a stale
    /// forwarding entry. Before `exit` became fail-stop local, a member
    /// whose stream close could not reach its server aborted `exit`
    /// midway: the slot stayed `Active` and resident with `forwarded`
    /// still set even though the kill had already been delivered — exactly
    /// the dangling-entry aliasing this table exists to rule out.
    #[test]
    fn kill_pgrp_leaves_no_stale_forwarded_entry_when_the_server_is_unreachable() {
        use crate::cluster::Cluster;
        use crate::proc::{ProcState, Signal};
        use sprite_fs::{OpenMode, SpritePath};
        use sprite_net::{CostModel, PartitionPolicy};
        use sprite_sim::SimDuration;

        let mut c = Cluster::new(CostModel::sun3(), 3);
        c.add_file_server(h(0), SpritePath::new("/"));
        let t = c
            .install_program(SimTime::ZERO, SpritePath::new("/bin/sh"), 8 * 1024)
            .unwrap();
        let (leader, t) = c.spawn(t, h(1), &SpritePath::new("/bin/sh"), 4, 2).unwrap();
        let (member, t) = c.fork(t, leader).unwrap();
        c.freeze(member).unwrap();
        c.relocate(member, h(2)).unwrap();
        c.thaw(member).unwrap();
        c.fs.create(&mut c.net, t, h(2), SpritePath::new("/scratch"))
            .unwrap();
        let (_fd, t) = c
            .open_fd(t, member, SpritePath::new("/scratch"), OpenMode::ReadWrite)
            .unwrap();
        assert_eq!(c.pcb(member).unwrap().forwarded, Some(h(2)));
        // Cut the file server off just before the kill: signal hops
        // between hosts 1 and 2 still deliver, but the member's stream
        // close cannot reach its server.
        c.net.set_policy(Box::new(PartitionPolicy::new(
            vec![h(0)],
            t,
            t + SimDuration::from_secs(3600),
        )));
        let pgrp = c.pcb(leader).unwrap().pgrp;
        c.kill_pgrp(t, h(1), h(1), pgrp, Signal::Kill).expect(
            "kill_pgrp is fail-stop local: the group dies even when closes cannot reach the server",
        );
        for p in c.processes() {
            assert_ne!(p.state, ProcState::Active, "{} survived the kill", p.pid);
            assert_eq!(p.forwarded, None, "{} left a stale forwarded entry", p.pid);
        }
        assert!(
            c.host(h(2)).resident().is_empty(),
            "dead member still resident on its host"
        );
        assert_eq!(c.locate(member), None, "stale handle must not resolve");
    }
}
