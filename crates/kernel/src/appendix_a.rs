//! Appendix A: the full 4.3BSD kernel-call compatibility table.
//!
//! "This appendix lists how each system call is handled in Sprite to ensure
//! transparent process migration. Because Sprite attempts to be compatible
//! with 4.3BSD UNIX ... I list the system calls available in 4.3BSD UNIX"
//! (Appendix A). The coarse [`KernelCall`](crate::KernelCall) enum drives
//! the cost model; this module records the complete per-call catalogue so a
//! reader (or test) can audit the transparency story call by call, exactly
//! as the thesis's appendix allows.
//!
//! Dispositions follow the thesis's rules:
//! * state the migration mechanism transfers (address space, descriptors,
//!   signal masks, rusage) ⇒ **local**;
//! * state rooted at the home machine (time, process families, host
//!   identity as seen by the user's session) ⇒ **forward home**;
//! * everything that is really a file-system operation ⇒ **file system**,
//!   handled wherever the process runs under the FS's own protocols;
//! * the migration call itself always goes home.

use crate::calls::Disposition;

/// One row of the Appendix-A table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallEntry {
    /// 4.3BSD call name.
    pub name: &'static str,
    /// How Sprite services it for a migrated process.
    pub disposition: Disposition,
    /// What state the disposition relies on.
    pub rationale: &'static str,
}

/// The catalogue. Grouped as the appendix groups them; order is stable.
pub const APPENDIX_A: &[SyscallEntry] = &[
    // --- process state transferred with the process => local ---
    SyscallEntry {
        name: "getpid",
        disposition: Disposition::Local,
        rationale: "PID cached in transferred PCB",
    },
    SyscallEntry {
        name: "getppid",
        disposition: Disposition::Local,
        rationale: "parent PID travels in the PCB",
    },
    SyscallEntry {
        name: "getuid",
        disposition: Disposition::Local,
        rationale: "credentials transferred",
    },
    SyscallEntry {
        name: "geteuid",
        disposition: Disposition::Local,
        rationale: "credentials transferred",
    },
    SyscallEntry {
        name: "getgid",
        disposition: Disposition::Local,
        rationale: "credentials transferred",
    },
    SyscallEntry {
        name: "getegid",
        disposition: Disposition::Local,
        rationale: "credentials transferred",
    },
    SyscallEntry {
        name: "getgroups",
        disposition: Disposition::Local,
        rationale: "credentials transferred",
    },
    SyscallEntry {
        name: "getrusage",
        disposition: Disposition::Local,
        rationale: "accounting accumulates in the PCB",
    },
    SyscallEntry {
        name: "getrlimit",
        disposition: Disposition::Local,
        rationale: "limits transferred",
    },
    SyscallEntry {
        name: "setrlimit",
        disposition: Disposition::Local,
        rationale: "limits transferred",
    },
    SyscallEntry {
        name: "umask",
        disposition: Disposition::Local,
        rationale: "creation mask transferred",
    },
    SyscallEntry {
        name: "brk",
        disposition: Disposition::Local,
        rationale: "heap is the transferred address space",
    },
    SyscallEntry {
        name: "sbrk",
        disposition: Disposition::Local,
        rationale: "heap is the transferred address space",
    },
    SyscallEntry {
        name: "sigblock",
        disposition: Disposition::Local,
        rationale: "signal mask transferred",
    },
    SyscallEntry {
        name: "sigsetmask",
        disposition: Disposition::Local,
        rationale: "signal mask transferred",
    },
    SyscallEntry {
        name: "sigpause",
        disposition: Disposition::Local,
        rationale: "signal mask transferred",
    },
    SyscallEntry {
        name: "sigvec",
        disposition: Disposition::Local,
        rationale: "handler table transferred",
    },
    SyscallEntry {
        name: "sigstack",
        disposition: Disposition::Local,
        rationale: "alternate stack is address-space state",
    },
    SyscallEntry {
        name: "fork",
        disposition: Disposition::Local,
        rationale:
            "child created where the parent runs; home kernel notified of the family addition",
    },
    SyscallEntry {
        name: "vfork",
        disposition: Disposition::Local,
        rationale: "as fork",
    },
    SyscallEntry {
        name: "execve",
        disposition: Disposition::Local,
        rationale: "new image demand-pages from the shared FS; preferred migration point",
    },
    SyscallEntry {
        name: "exit",
        disposition: Disposition::Local,
        rationale: "cleanup local; zombie status reported home",
    },
    // --- family / session / time state rooted at home => forward ---
    SyscallEntry {
        name: "gettimeofday",
        disposition: Disposition::ForwardHome,
        rationale: "clocks must appear consistent with the home session",
    },
    SyscallEntry {
        name: "settimeofday",
        disposition: Disposition::ForwardHome,
        rationale: "affects the home machine's clock",
    },
    SyscallEntry {
        name: "getitimer",
        disposition: Disposition::ForwardHome,
        rationale: "interval timers tick against home time",
    },
    SyscallEntry {
        name: "setitimer",
        disposition: Disposition::ForwardHome,
        rationale: "interval timers tick against home time",
    },
    SyscallEntry {
        name: "getpgrp",
        disposition: Disposition::ForwardHome,
        rationale: "process families rooted at home",
    },
    SyscallEntry {
        name: "setpgrp",
        disposition: Disposition::ForwardHome,
        rationale: "process families rooted at home",
    },
    SyscallEntry {
        name: "killpg",
        disposition: Disposition::ForwardHome,
        rationale: "group membership known at home",
    },
    SyscallEntry {
        name: "kill",
        disposition: Disposition::ForwardHome,
        rationale: "home kernel tracks target locations",
    },
    SyscallEntry {
        name: "wait",
        disposition: Disposition::ForwardHome,
        rationale: "children recorded in the home family table",
    },
    SyscallEntry {
        name: "wait3",
        disposition: Disposition::ForwardHome,
        rationale: "children recorded in the home family table",
    },
    SyscallEntry {
        name: "getpriority",
        disposition: Disposition::ForwardHome,
        rationale: "scheduling priority coordinated at home",
    },
    SyscallEntry {
        name: "setpriority",
        disposition: Disposition::ForwardHome,
        rationale: "scheduling priority coordinated at home",
    },
    SyscallEntry {
        name: "gethostname",
        disposition: Disposition::ForwardHome,
        rationale: "the process must keep seeing its home's name",
    },
    SyscallEntry {
        name: "gethostid",
        disposition: Disposition::ForwardHome,
        rationale: "the process must keep seeing its home's identity",
    },
    SyscallEntry {
        name: "mig_migrate",
        disposition: Disposition::ForwardHome,
        rationale: "migration is managed relative to the home machine",
    },
    // --- file-system calls => the FS's own transparency rules ---
    SyscallEntry {
        name: "open",
        disposition: Disposition::FileSystem,
        rationale: "name lookup at the server, wherever the caller is",
    },
    SyscallEntry {
        name: "creat",
        disposition: Disposition::FileSystem,
        rationale: "as open",
    },
    SyscallEntry {
        name: "close",
        disposition: Disposition::FileSystem,
        rationale: "stream release at the I/O server",
    },
    SyscallEntry {
        name: "read",
        disposition: Disposition::FileSystem,
        rationale: "caching protocol position-independent",
    },
    SyscallEntry {
        name: "write",
        disposition: Disposition::FileSystem,
        rationale: "caching protocol position-independent",
    },
    SyscallEntry {
        name: "lseek",
        disposition: Disposition::FileSystem,
        rationale: "offset lives in the (possibly shadow) stream",
    },
    SyscallEntry {
        name: "dup",
        disposition: Disposition::FileSystem,
        rationale: "descriptor tables travel; stream refcounts at the server",
    },
    SyscallEntry {
        name: "dup2",
        disposition: Disposition::FileSystem,
        rationale: "as dup",
    },
    SyscallEntry {
        name: "pipe",
        disposition: Disposition::FileSystem,
        rationale: "pipes are pseudo-device streams",
    },
    SyscallEntry {
        name: "fcntl",
        disposition: Disposition::FileSystem,
        rationale: "stream flags at the I/O server",
    },
    SyscallEntry {
        name: "select",
        disposition: Disposition::FileSystem,
        rationale: "readiness via the I/O servers",
    },
    SyscallEntry {
        name: "stat",
        disposition: Disposition::FileSystem,
        rationale: "attributes at the name server",
    },
    SyscallEntry {
        name: "lstat",
        disposition: Disposition::FileSystem,
        rationale: "attributes at the name server",
    },
    SyscallEntry {
        name: "fstat",
        disposition: Disposition::FileSystem,
        rationale: "attributes via the open stream",
    },
    SyscallEntry {
        name: "link",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "unlink",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "rename",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "mkdir",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "rmdir",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "chdir",
        disposition: Disposition::FileSystem,
        rationale: "working directory is a stream to a directory",
    },
    SyscallEntry {
        name: "chmod",
        disposition: Disposition::FileSystem,
        rationale: "attributes at the server",
    },
    SyscallEntry {
        name: "chown",
        disposition: Disposition::FileSystem,
        rationale: "attributes at the server",
    },
    SyscallEntry {
        name: "truncate",
        disposition: Disposition::FileSystem,
        rationale: "data operation at the server",
    },
    SyscallEntry {
        name: "ftruncate",
        disposition: Disposition::FileSystem,
        rationale: "data operation via the stream",
    },
    SyscallEntry {
        name: "fsync",
        disposition: Disposition::FileSystem,
        rationale: "flush of the caller's cached blocks",
    },
    SyscallEntry {
        name: "sync",
        disposition: Disposition::FileSystem,
        rationale: "flush of the caller's cached blocks",
    },
    SyscallEntry {
        name: "access",
        disposition: Disposition::FileSystem,
        rationale: "permission check at the server",
    },
    SyscallEntry {
        name: "readlink",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "symlink",
        disposition: Disposition::FileSystem,
        rationale: "namespace operation at the server",
    },
    SyscallEntry {
        name: "mount",
        disposition: Disposition::FileSystem,
        rationale: "domain table maintained by servers",
    },
    SyscallEntry {
        name: "socket",
        disposition: Disposition::FileSystem,
        rationale: "Internet sockets are pseudo-devices to the IP server [Che87]",
    },
    SyscallEntry {
        name: "connect",
        disposition: Disposition::FileSystem,
        rationale: "via the IP server pseudo-device",
    },
    SyscallEntry {
        name: "send",
        disposition: Disposition::FileSystem,
        rationale: "via the IP server pseudo-device",
    },
    SyscallEntry {
        name: "recv",
        disposition: Disposition::FileSystem,
        rationale: "via the IP server pseudo-device",
    },
];

/// Looks up a call by name.
pub fn lookup(name: &str) -> Option<&'static SyscallEntry> {
    APPENDIX_A.iter().find(|e| e.name == name)
}

/// Counts entries per disposition: (local, forward-home, file-system).
pub fn census() -> (usize, usize, usize) {
    let mut local = 0;
    let mut home = 0;
    let mut fsys = 0;
    for e in APPENDIX_A {
        match e.disposition {
            Disposition::Local => local += 1,
            Disposition::ForwardHome => home += 1,
            Disposition::FileSystem => fsys += 1,
        }
    }
    (local, home, fsys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_deduplicated_and_substantial() {
        let names: sprite_sim::DetHashSet<_> = APPENDIX_A.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), APPENDIX_A.len(), "duplicate call names");
        assert!(APPENDIX_A.len() >= 60, "appendix should be near-complete");
    }

    #[test]
    fn most_calls_do_not_forward_home() {
        // The thesis's whole point: forwarding is the exception. Fewer than
        // a quarter of the catalogue may forward.
        let (local, home, fsys) = census();
        assert!(
            home * 4 < local + home + fsys,
            "{home} forwarded of {}",
            APPENDIX_A.len()
        );
        assert!(local > 0 && fsys > 0);
    }

    #[test]
    fn key_rows_match_the_thesis_rules() {
        assert_eq!(lookup("getpid").unwrap().disposition, Disposition::Local);
        assert_eq!(
            lookup("gettimeofday").unwrap().disposition,
            Disposition::ForwardHome
        );
        assert_eq!(
            lookup("mig_migrate").unwrap().disposition,
            Disposition::ForwardHome
        );
        assert_eq!(lookup("open").unwrap().disposition, Disposition::FileSystem);
        assert_eq!(lookup("execve").unwrap().disposition, Disposition::Local);
        assert!(lookup("no_such_call").is_none());
    }

    #[test]
    fn every_rationale_is_non_empty() {
        for e in APPENDIX_A {
            assert!(!e.rationale.is_empty(), "{} lacks a rationale", e.name);
        }
    }
}
